"""Synthetic stand-ins for the paper's two internet testbeds.

The paper deploys 16 AWS nodes in major cities (Fig. 8) and 15 Vultr nodes
(Fig. 15), without publishing per-city capacity numbers.  What the results
depend on — and what these profiles preserve — is:

* heterogeneous per-node bandwidth (some cities are much better connected
  than others: the paper highlights Ohio as "good" and Mumbai as "limited");
* inter-city one-way propagation delays of roughly 100 ms (S6.3 uses 100 ms
  as "the typical latency between distant major cities");
* temporal fluctuation of each node's available bandwidth (congestion,
  latency jitter, congestion-control behaviour), modelled as a Gauss-Markov
  process around each city's mean capacity;
* the Vultr testbed being a cheaper provider with lower and noisier
  capacity than AWS.

Absolute MB/s numbers therefore differ from the paper's, but the orderings
and ratios the experiments measure (DL vs HB-Link vs HB, fast vs slow
cities) are produced by the same mechanisms.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.sim.bandwidth import BandwidthTrace, ConstantBandwidth
from repro.sim.network import NetworkConfig
from repro.workload.traces import MB, GaussMarkovProcess


@dataclass(frozen=True)
class CityProfile:
    """Mean capacity and variability of one testbed site.

    Attributes:
        name: city name (matches the paper's figures where possible).
        mean_bandwidth: mean ingress/egress capacity in bytes per second.
        sigma_fraction: standard deviation of the Gauss-Markov fluctuation,
            as a fraction of the mean.
        delay_to_hub: one-way propagation delay in seconds from this city to
            a notional internet "hub"; the delay between two cities is the
            sum of their hub delays (a simple but well-behaved metric that
            yields ~50-200 ms pairwise delays like the public ping tables
            the paper cites).
    """

    name: str
    mean_bandwidth: float
    sigma_fraction: float
    delay_to_hub: float


#: The 16-city geo-distributed testbed of Fig. 8 (AWS, unthrottled NICs but
#: real internet paths).  Ohio is the "good" site and Mumbai the "limited"
#: site called out in S6.2.
AWS_CITIES: tuple[CityProfile, ...] = (
    CityProfile("Ohio", 25 * MB, 0.20, 0.020),
    CityProfile("N. Virginia", 24 * MB, 0.20, 0.022),
    CityProfile("Oregon", 22 * MB, 0.22, 0.035),
    CityProfile("N. California", 21 * MB, 0.22, 0.035),
    CityProfile("Montreal", 23 * MB, 0.20, 0.025),
    CityProfile("Frankfurt", 20 * MB, 0.25, 0.045),
    CityProfile("Ireland", 21 * MB, 0.22, 0.040),
    CityProfile("London", 20 * MB, 0.25, 0.040),
    CityProfile("Paris", 19 * MB, 0.25, 0.042),
    CityProfile("Stockholm", 18 * MB, 0.25, 0.050),
    CityProfile("Tokyo", 16 * MB, 0.30, 0.070),
    CityProfile("Seoul", 15 * MB, 0.30, 0.072),
    CityProfile("Singapore", 13 * MB, 0.35, 0.080),
    CityProfile("Sydney", 12 * MB, 0.35, 0.090),
    CityProfile("Mumbai", 9 * MB, 0.40, 0.085),
    CityProfile("Sao Paulo", 11 * MB, 0.35, 0.075),
)

#: The 15-site Vultr testbed of Fig. 15: a low-cost provider with 1 Gbps
#: NICs, lower effective capacity and more variability than AWS.
VULTR_CITIES: tuple[CityProfile, ...] = (
    CityProfile("New Jersey", 14 * MB, 0.30, 0.022),
    CityProfile("Chicago", 13 * MB, 0.30, 0.025),
    CityProfile("Dallas", 12 * MB, 0.30, 0.030),
    CityProfile("Seattle", 12 * MB, 0.32, 0.035),
    CityProfile("Silicon Valley", 13 * MB, 0.30, 0.035),
    CityProfile("Los Angeles", 12 * MB, 0.32, 0.036),
    CityProfile("Atlanta", 12 * MB, 0.30, 0.024),
    CityProfile("Miami", 11 * MB, 0.32, 0.028),
    CityProfile("Toronto", 12 * MB, 0.30, 0.024),
    CityProfile("Amsterdam", 11 * MB, 0.35, 0.044),
    CityProfile("Paris", 10 * MB, 0.35, 0.042),
    CityProfile("Frankfurt", 10 * MB, 0.35, 0.045),
    CityProfile("Singapore", 7 * MB, 0.45, 0.080),
    CityProfile("Tokyo", 8 * MB, 0.40, 0.070),
    CityProfile("Sydney", 6 * MB, 0.45, 0.090),
)


#: Registry of named testbeds, used by the scenario engine so a declarative
#: spec can say ``topology: {kind: cities, testbed: aws}``.  Extend with
#: :func:`register_testbed`.
TESTBEDS: dict[str, tuple[CityProfile, ...]] = {}


def register_testbed(name: str, cities: tuple[CityProfile, ...]) -> str:
    """Register a named city testbed for scenario specs; returns ``name``.

    Re-registering the same name with a different profile tuple is an error
    (a spec naming the testbed would silently change meaning); registering
    the identical tuple is a no-op so callers may register idempotently.
    """
    if not cities:
        raise ValueError("a testbed needs at least one city")
    existing = TESTBEDS.get(name)
    if existing is not None and existing != tuple(cities):
        raise ValueError(f"testbed {name!r} is already registered with a different profile")
    TESTBEDS[name] = tuple(cities)
    return name


def resolve_testbed(name: str) -> tuple[CityProfile, ...]:
    """Look up a registered testbed by name."""
    try:
        return TESTBEDS[name]
    except KeyError:
        raise KeyError(
            f"unknown testbed {name!r}; registered: {sorted(TESTBEDS)}"
        ) from None


def testbed_name(cities: tuple[CityProfile, ...]) -> str:
    """The registered name for ``cities``, registering an ad-hoc one if needed.

    Lets APIs that accept raw city tuples (``run_geo_throughput``) express
    their runs as declarative scenario specs.  The ad-hoc name is derived
    from a content hash, so the same city tuple maps to the same name in
    every process and run — but the *registration* only exists where this
    function ran; a spec naming an ad-hoc testbed loaded elsewhere (a later
    run, a spawn-start worker) must re-register the tuple first.  For
    scenarios meant to live in files, register the testbed under a stable
    name at import time instead.
    """
    key = tuple(cities)
    for name, registered in TESTBEDS.items():
        if registered == key:
            return name
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:8]
    return register_testbed(f"adhoc-{len(key)}x-{digest}", key)


register_testbed("aws", AWS_CITIES)
register_testbed("vultr", VULTR_CITIES)


def city_delay_matrix(cities: tuple[CityProfile, ...]) -> list[list[float]]:
    """Pairwise one-way propagation delays between cities (seconds)."""
    n = len(cities)
    matrix = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i != j:
                matrix[i][j] = cities[i].delay_to_hub + cities[j].delay_to_hub
    return matrix


#: How much larger a city's upload capacity is than its (binding) download
#: capacity.  The paper's geo nodes sit on fat datacenter uplinks and are
#: constrained by what each site can *pull* across the internet, so the
#: profile's ``mean_bandwidth`` models the download side and the serving side
#: gets proportional headroom (see DESIGN.md, substitution table).
DEFAULT_EGRESS_HEADROOM = 2.0


def city_traces(
    cities: tuple[CityProfile, ...],
    duration: float,
    seed: int = 0,
    fluctuate: bool = True,
    scale: float = 1.0,
) -> list[BandwidthTrace]:
    """Per-city bandwidth traces (Gauss-Markov around each city's mean).

    ``scale`` multiplies every city's mean (used to derive the egress traces
    from the same profiles with serving headroom).
    """
    traces: list[BandwidthTrace] = []
    for index, city in enumerate(cities):
        mean = city.mean_bandwidth * scale
        if not fluctuate or city.sigma_fraction == 0:
            traces.append(ConstantBandwidth(mean))
            continue
        process = GaussMarkovProcess(
            mean=mean,
            sigma=mean * city.sigma_fraction,
            alpha=0.98,
            floor=0.25 * mean,
            seed=seed * 100_000 + index,
        )
        traces.append(process.trace(duration))
    return traces


def city_network_config(
    cities: tuple[CityProfile, ...],
    duration: float,
    seed: int = 0,
    fluctuate: bool = True,
    egress_headroom: float = DEFAULT_EGRESS_HEADROOM,
) -> NetworkConfig:
    """Build the simulator's :class:`NetworkConfig` for one of the testbeds."""
    ingress = city_traces(cities, duration, seed=seed + 1, fluctuate=fluctuate)
    egress = city_traces(
        cities, duration, seed=seed, fluctuate=fluctuate, scale=egress_headroom
    )
    return NetworkConfig(
        num_nodes=len(cities),
        propagation_delay=city_delay_matrix(cities),
        egress_traces=egress,
        ingress_traces=ingress,
    )
