"""Client transaction generators.

The paper generates load with "a thread on each node that generates
transactions in a Poisson arrival process" (S6.1).  The throughput
experiments additionally need an "infinitely-backlogged system" (S6.2),
modelled here by a saturating generator that keeps each node's mempool
topped up so block formation is never starved.
"""

from __future__ import annotations

import random

from repro.core.block import Transaction
from repro.core.node_base import BFTNodeBase
from repro.sim.events import Simulator

#: Default transaction size in bytes.  The HoneyBadger evaluation (which the
#: paper follows) uses ~250-byte transactions.
DEFAULT_TX_SIZE = 250


class PoissonTransactionGenerator:
    """Feeds one node transactions following a Poisson arrival process.

    Args:
        sim: the discrete-event simulator driving virtual time.
        node: the node whose mempool receives the transactions.
        rate_bytes_per_second: offered load in payload bytes per second.
        tx_size: size of each transaction in bytes.
        seed: RNG seed (generators with different seeds are independent).
        stop_at: stop generating at this virtual time (None = never).
    """

    def __init__(
        self,
        sim: Simulator,
        node: BFTNodeBase,
        rate_bytes_per_second: float,
        tx_size: int = DEFAULT_TX_SIZE,
        seed: int | None = None,
        stop_at: float | None = None,
    ):
        if rate_bytes_per_second <= 0:
            raise ValueError("offered load must be positive")
        if tx_size <= 0:
            raise ValueError("transaction size must be positive")
        self._sim = sim
        self._node = node
        self._tx_size = tx_size
        self._mean_interarrival = tx_size / rate_bytes_per_second
        self._rng = random.Random(seed)
        self._stop_at = stop_at
        self._sequence = 0
        self.generated = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(1.0 / self._mean_interarrival)
        self._sim.schedule(delay, self._arrive)

    def _arrive(self) -> None:
        now = self._sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        self._sequence += 1
        tx = Transaction(
            tx_id=self._sequence * self._node.params.n + self._node.node_id,
            origin=self._node.node_id,
            created_at=now,
            size=self._tx_size,
        )
        self._node.submit_transaction(tx)
        self.generated += 1
        self.generated_bytes += self._tx_size
        self._schedule_next()


class SaturatingTransactionGenerator:
    """Keeps a node's mempool backlogged so it always has a full block to propose.

    Used for the "infinitely-backlogged" throughput measurements (S6.2): at a
    fixed refill interval the generator tops the mempool up to a target
    number of pending bytes.  Transactions are stamped with their submission
    time, so latency numbers from a saturating run are meaningless by design
    (the paper likewise only reports throughput for these runs).
    """

    def __init__(
        self,
        sim: Simulator,
        node: BFTNodeBase,
        target_pending_bytes: int = 8_000_000,
        tx_size: int = DEFAULT_TX_SIZE,
        refill_interval: float = 0.05,
    ):
        if target_pending_bytes <= 0:
            raise ValueError("target_pending_bytes must be positive")
        if tx_size <= 0:
            raise ValueError("transaction size must be positive")
        if refill_interval <= 0:
            raise ValueError("refill_interval must be positive")
        self._sim = sim
        self._node = node
        self._target = target_pending_bytes
        self._tx_size = tx_size
        self._interval = refill_interval
        self._sequence = 0
        self.generated = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Fill the mempool immediately and keep it topped up."""
        self._refill()

    def _refill(self) -> None:
        now = self._sim.now
        missing = self._target - self._node.mempool.pending_bytes
        while missing > 0:
            self._sequence += 1
            tx = Transaction(
                tx_id=self._sequence * self._node.params.n + self._node.node_id,
                origin=self._node.node_id,
                created_at=now,
                size=self._tx_size,
            )
            self._node.submit_transaction(tx)
            self.generated += 1
            self.generated_bytes += self._tx_size
            missing -= self._tx_size
        self._sim.schedule(self._interval, self._refill)
