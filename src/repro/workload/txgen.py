"""Client transaction generators.

The paper generates load with "a thread on each node that generates
transactions in a Poisson arrival process" (S6.1).  The throughput
experiments additionally need an "infinitely-backlogged system" (S6.2),
modelled here by a saturating generator that keeps each node's mempool
topped up so block formation is never starved.
"""

from __future__ import annotations

import math
import random
from typing import Callable

import numpy as np

from repro.common.snapshot import SnapshotState
from repro.core.block import Transaction
from repro.core.node_base import BFTNodeBase
from repro.core.txbatch import TxBatch
from repro.sim.events import Simulator

#: Default transaction size in bytes.  The HoneyBadger evaluation (which the
#: paper follows) uses ~250-byte transactions.
DEFAULT_TX_SIZE = 250


class PoissonTransactionGenerator(SnapshotState):
    """Feeds one node transactions following a Poisson arrival process.

    Args:
        sim: the discrete-event simulator driving virtual time.
        node: the node whose mempool receives the transactions.
        rate_bytes_per_second: offered load in payload bytes per second.
        tx_size: size of each transaction in bytes.
        seed: RNG seed (generators with different seeds are independent).
        stop_at: stop generating at this virtual time (None = never).
    """

    _SNAPSHOT_FIELDS = ("_sim", "_node", "_tx_size", "_mean_interarrival", "_rng", "_stop_at", "_sequence", "generated", "generated_bytes")

    def __init__(
        self,
        sim: Simulator,
        node: BFTNodeBase,
        rate_bytes_per_second: float,
        tx_size: int = DEFAULT_TX_SIZE,
        seed: int | None = None,
        stop_at: float | None = None,
    ):
        if rate_bytes_per_second <= 0:
            raise ValueError("offered load must be positive")
        if tx_size <= 0:
            raise ValueError("transaction size must be positive")
        self._sim = sim
        self._node = node
        self._tx_size = tx_size
        self._mean_interarrival = tx_size / rate_bytes_per_second
        self._rng = random.Random(seed)
        self._stop_at = stop_at
        self._sequence = 0
        self.generated = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(1.0 / self._mean_interarrival)
        self._sim.schedule(delay, self._arrive)

    def _arrive(self) -> None:
        now = self._sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        self._sequence += 1
        tx = Transaction(
            tx_id=self._sequence * self._node.params.n + self._node.node_id,
            origin=self._node.node_id,
            created_at=now,
            size=self._tx_size,
        )
        self._node.submit_transaction(tx)
        self.generated += 1
        self.generated_bytes += self._tx_size
        self._schedule_next()


class BurstyRateProfile(SnapshotState):
    """An on/off load profile with mean ``mean_rate`` bytes per second.

    The client population is quiet most of the time and then bursts: for
    ``duty * period`` seconds out of every ``period`` the offered load is
    ``mean_rate / duty`` and zero otherwise, so the long-run average equals
    ``mean_rate``.  This is the classic packet-train / flash-crowd shape that
    a constant-rate Poisson sweep never exercises.

    A plain class rather than a closure so a generator holding one can be
    checkpointed (closures don't pickle).
    """

    __slots__ = ("period", "on_rate", "on_for")
    _SNAPSHOT_FIELDS = ("period", "on_rate", "on_for")

    def __init__(self, mean_rate: float, period: float = 20.0, duty: float = 0.25):
        if mean_rate <= 0:
            raise ValueError("mean_rate must be positive")
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 < duty <= 1:
            raise ValueError("duty must be in (0, 1]")
        self.period = period
        self.on_rate = mean_rate / duty
        self.on_for = duty * period

    def __call__(self, t: float) -> float:
        return self.on_rate if t % self.period < self.on_for else 0.0


class DiurnalRateProfile(SnapshotState):
    """A sinusoidal day/night load profile with mean ``mean_rate`` bytes/s.

    The offered load swings between ``mean * (1 - amplitude)`` and
    ``mean * (1 + amplitude)`` over each ``period`` (one simulated "day"),
    starting at the trough so short runs see the ramp-up.  Picklable for the
    same reason as :class:`BurstyRateProfile`.
    """

    __slots__ = ("mean_rate", "period", "amplitude")
    _SNAPSHOT_FIELDS = ("mean_rate", "period", "amplitude")

    def __init__(self, mean_rate: float, period: float = 60.0, amplitude: float = 0.8):
        if mean_rate <= 0:
            raise ValueError("mean_rate must be positive")
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        self.mean_rate = mean_rate
        self.period = period
        self.amplitude = amplitude

    def __call__(self, t: float) -> float:
        return self.mean_rate * (
            1.0 - self.amplitude * math.cos(2.0 * math.pi * t / self.period)
        )


def bursty_rate_profile(
    mean_rate: float, period: float = 20.0, duty: float = 0.25
) -> Callable[[float], float]:
    """Build a :class:`BurstyRateProfile` (kept as the stable factory API)."""
    return BurstyRateProfile(mean_rate, period=period, duty=duty)


def diurnal_rate_profile(
    mean_rate: float, period: float = 60.0, amplitude: float = 0.8
) -> Callable[[float], float]:
    """Build a :class:`DiurnalRateProfile` (kept as the stable factory API)."""
    return DiurnalRateProfile(mean_rate, period=period, amplitude=amplitude)


class ModulatedPoissonTransactionGenerator(SnapshotState):
    """A Poisson arrival process whose rate follows a time-varying profile.

    ``rate_at`` gives the instantaneous offered load in bytes per second.
    The exponential clock is sampled against the rate at the current virtual
    time, but never further than ``max_step`` seconds ahead: a draw that
    lands beyond the horizon is discarded and re-drawn there, which by
    memorylessness simulates the non-homogeneous process exactly wherever
    the rate is constant across a step, and bounds the error from a rate
    breakpoint (including on/off edges of the bursty profile) to one
    ``max_step`` window.  Zero-rate stretches advance on the same horizon.
    """

    _SNAPSHOT_FIELDS = ("_sim", "_node", "_rate_at", "_tx_size", "_rng", "_stop_at", "_max_step", "_sequence", "generated", "generated_bytes")

    def __init__(
        self,
        sim: Simulator,
        node: BFTNodeBase,
        rate_at: Callable[[float], float],
        tx_size: int = DEFAULT_TX_SIZE,
        seed: int | None = None,
        stop_at: float | None = None,
        max_step: float = 0.25,
    ):
        if tx_size <= 0:
            raise ValueError("transaction size must be positive")
        if max_step <= 0:
            raise ValueError("max_step must be positive")
        self._sim = sim
        self._node = node
        self._rate_at = rate_at
        self._tx_size = tx_size
        self._rng = random.Random(seed)
        self._stop_at = stop_at
        self._max_step = max_step
        self._sequence = 0
        self.generated = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        rate = self._rate_at(self._sim.now)
        if rate <= 0:
            self._sim.schedule(self._max_step, self._schedule_next)
            return
        delay = self._rng.expovariate(rate / self._tx_size)
        if delay > self._max_step:
            # Past the sampling horizon: re-draw there at the then-current
            # rate (memorylessness makes the discard statistically free).
            self._sim.schedule(self._max_step, self._schedule_next)
            return
        self._sim.schedule(delay, self._arrive)

    def _arrive(self) -> None:
        now = self._sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        self._sequence += 1
        tx = Transaction(
            tx_id=self._sequence * self._node.params.n + self._node.node_id,
            origin=self._node.node_id,
            created_at=now,
            size=self._tx_size,
        )
        self._node.submit_transaction(tx)
        self.generated += 1
        self.generated_bytes += self._tx_size
        self._schedule_next()


class SaturatingTransactionGenerator(SnapshotState):
    """Keeps a node's mempool backlogged so it always has a full block to propose.

    Used for the "infinitely-backlogged" throughput measurements (S6.2): at a
    fixed refill interval the generator tops the mempool up to a target
    number of pending bytes.  Transactions are stamped with their submission
    time, so latency numbers from a saturating run are meaningless by design
    (the paper likewise only reports throughput for these runs).

    ``stop_at`` stops refilling at that virtual time (``None`` = never), the
    same drain-phase knob the Poisson generators offer.
    """

    _SNAPSHOT_FIELDS = ("_sim", "_node", "_target", "_tx_size", "_interval", "_stop_at", "_sequence", "generated", "generated_bytes")

    def __init__(
        self,
        sim: Simulator,
        node: BFTNodeBase,
        target_pending_bytes: int = 8_000_000,
        tx_size: int = DEFAULT_TX_SIZE,
        refill_interval: float = 0.05,
        stop_at: float | None = None,
    ):
        if target_pending_bytes <= 0:
            raise ValueError("target_pending_bytes must be positive")
        if tx_size <= 0:
            raise ValueError("transaction size must be positive")
        if refill_interval <= 0:
            raise ValueError("refill_interval must be positive")
        self._sim = sim
        self._node = node
        self._target = target_pending_bytes
        self._tx_size = tx_size
        self._interval = refill_interval
        self._stop_at = stop_at
        self._sequence = 0
        self.generated = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Fill the mempool immediately and keep it topped up."""
        self._refill()

    def _refill(self) -> None:
        now = self._sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        missing = self._target - self._node.mempool.pending_bytes
        while missing > 0:
            self._sequence += 1
            tx = Transaction(
                tx_id=self._sequence * self._node.params.n + self._node.node_id,
                origin=self._node.node_id,
                created_at=now,
                size=self._tx_size,
            )
            self._node.submit_transaction(tx)
            self.generated += 1
            self.generated_bytes += self._tx_size
            missing -= self._tx_size
        self._sim.schedule(self._interval, self._refill)


class ColumnarPoissonTransactionGenerator(SnapshotState):
    """Batched Poisson arrivals: one vectorised draw per scheduling window.

    Statistically the same homogeneous Poisson process as
    :class:`PoissonTransactionGenerator`, generated window-by-window via the
    order-statistics property: the number of arrivals in a window of length
    ``W`` is Poisson(``rate * W``) and, given the count, the arrival times
    are independent uniforms over the window, sorted.  One numpy draw per
    window replaces one simulator event per transaction.

    The batch for a window is submitted (as one :class:`TxBatch`) when the
    window *closes*, so no transaction is ever available to block formation
    before its stamped arrival time; the price is that availability lags
    arrival by at most ``window`` seconds.  Latency measurements still use
    the exact per-transaction arrival stamps.
    """

    _SNAPSHOT_FIELDS = ("_sim", "_node", "_tx_size", "_rate_tx", "_rng", "_stop_at", "_window", "_sequence", "generated", "generated_bytes")

    def __init__(
        self,
        sim: Simulator,
        node: BFTNodeBase,
        rate_bytes_per_second: float,
        tx_size: int = DEFAULT_TX_SIZE,
        seed: int | None = None,
        stop_at: float | None = None,
        window: float = 0.25,
    ):
        if rate_bytes_per_second <= 0:
            raise ValueError("offered load must be positive")
        if tx_size <= 0:
            raise ValueError("transaction size must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        self._sim = sim
        self._node = node
        self._tx_size = tx_size
        self._rate_tx = rate_bytes_per_second / tx_size
        self._rng = np.random.default_rng(seed)
        self._stop_at = stop_at
        self._window = window
        self._sequence = 0
        self.generated = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Open the first scheduling window."""
        self._sim.schedule(self._window, self._close_window)

    def _close_window(self) -> None:
        now = self._sim.now
        start = now - self._window
        if self._stop_at is not None and start >= self._stop_at:
            return
        end = now if self._stop_at is None else min(now, self._stop_at)
        span = end - start
        count = int(self._rng.poisson(self._rate_tx * span))
        if count:
            arrivals = start + span * self._rng.random(count)
            arrivals.sort()
            n = self._node.params.n
            first = self._sequence + 1
            tx_ids = (np.arange(first, first + count, dtype=np.uint64)) * np.uint64(
                n
            ) + np.uint64(self._node.node_id)
            self._sequence += count
            batch = TxBatch.uniform(self._node.node_id, tx_ids, arrivals, self._tx_size)
            self._node.submit_batch(batch)
            self.generated += count
            self.generated_bytes += count * self._tx_size
        self._sim.schedule(self._window, self._close_window)


class ColumnarSaturatingTransactionGenerator(SnapshotState):
    """Batched version of :class:`SaturatingTransactionGenerator`.

    Same refill policy — top the mempool up to ``target_pending_bytes``
    every ``refill_interval`` — but each top-up is one :class:`TxBatch`
    built from vectorised id/size columns, so an infinitely-backlogged
    million-transaction run allocates arrays, not objects.
    """

    _SNAPSHOT_FIELDS = ("_sim", "_node", "_target", "_tx_size", "_interval", "_stop_at", "_sequence", "generated", "generated_bytes")

    def __init__(
        self,
        sim: Simulator,
        node: BFTNodeBase,
        target_pending_bytes: int = 8_000_000,
        tx_size: int = DEFAULT_TX_SIZE,
        refill_interval: float = 0.05,
        stop_at: float | None = None,
    ):
        if target_pending_bytes <= 0:
            raise ValueError("target_pending_bytes must be positive")
        if tx_size <= 0:
            raise ValueError("transaction size must be positive")
        if refill_interval <= 0:
            raise ValueError("refill_interval must be positive")
        self._sim = sim
        self._node = node
        self._target = target_pending_bytes
        self._tx_size = tx_size
        self._interval = refill_interval
        self._stop_at = stop_at
        self._sequence = 0
        self.generated = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Fill the mempool immediately and keep it topped up."""
        self._refill()

    def _refill(self) -> None:
        now = self._sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return
        missing = self._target - self._node.mempool.pending_bytes
        if missing > 0:
            count = -(-missing // self._tx_size)  # ceil division
            n = self._node.params.n
            first = self._sequence + 1
            tx_ids = (np.arange(first, first + count, dtype=np.uint64)) * np.uint64(
                n
            ) + np.uint64(self._node.node_id)
            self._sequence += count
            created = np.full(count, now, dtype=np.float64)
            batch = TxBatch.uniform(self._node.node_id, tx_ids, created, self._tx_size)
            self._node.submit_batch(batch)
            self.generated += count
            self.generated_bytes += count * self._tx_size
        self._sim.schedule(self._interval, self._refill)
