"""Workload generation: client transactions and bandwidth traces.

This package replaces the paper's load generators and Mahimahi traces
(S6.1, S6.3):

* :mod:`repro.workload.txgen` — Poisson transaction arrival processes (one
  thread per node in the paper) and a saturating generator used for the
  infinitely-backlogged throughput measurements.
* :mod:`repro.workload.traces` — time-varying bandwidth traces: constants,
  the spatial-variation profile of Fig. 11a, and the Gauss-Markov temporal
  variation process of Fig. 11b / Fig. 16.
* :mod:`repro.workload.cities` — per-city bandwidth/latency profiles that
  stand in for the AWS 16-city and Vultr 15-city testbeds of Fig. 8/15.
"""

from repro.workload.cities import (
    AWS_CITIES,
    TESTBEDS,
    VULTR_CITIES,
    CityProfile,
    city_network_config,
    register_testbed,
    resolve_testbed,
)
from repro.workload.traces import (
    GaussMarkovProcess,
    constant_traces,
    flapping_trace,
    flapping_traces,
    gauss_markov_traces,
    spatial_variation_rates,
    straggler_rates,
)
from repro.workload.txgen import (
    ColumnarPoissonTransactionGenerator,
    ColumnarSaturatingTransactionGenerator,
    ModulatedPoissonTransactionGenerator,
    PoissonTransactionGenerator,
    SaturatingTransactionGenerator,
    bursty_rate_profile,
    diurnal_rate_profile,
)

__all__ = [
    "AWS_CITIES",
    "CityProfile",
    "ColumnarPoissonTransactionGenerator",
    "ColumnarSaturatingTransactionGenerator",
    "GaussMarkovProcess",
    "ModulatedPoissonTransactionGenerator",
    "PoissonTransactionGenerator",
    "SaturatingTransactionGenerator",
    "TESTBEDS",
    "VULTR_CITIES",
    "bursty_rate_profile",
    "city_network_config",
    "constant_traces",
    "diurnal_rate_profile",
    "flapping_trace",
    "flapping_traces",
    "gauss_markov_traces",
    "register_testbed",
    "resolve_testbed",
    "spatial_variation_rates",
    "straggler_rates",
]
