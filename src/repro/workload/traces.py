"""Bandwidth trace generation for the controlled experiments (S6.3).

The paper's controlled experiments throttle each node's ingress and egress
independently:

* **Spatial variation** (Fig. 11a): node ``i`` is capped at a constant
  ``10 + 0.5 * i`` MB/s.
* **Temporal variation** (Fig. 11b, Fig. 16): each node's bandwidth follows
  an independent Gauss-Markov process with mean ``b = 10`` MB/s, standard
  deviation ``sigma = 5`` MB/s and correlation ``alpha = 0.98`` between
  consecutive 1-second samples.

Both are expressed as :class:`repro.sim.bandwidth.PiecewiseConstantBandwidth`
traces consumed by the simulator's pipes.
"""

from __future__ import annotations

import random

from repro.sim.bandwidth import ConstantBandwidth, PiecewiseConstantBandwidth

MB = 1_000_000


class GaussMarkovProcess:
    """The temporal bandwidth variation model of S6.3.

    Successive samples follow ``x[t+1] = alpha * x[t] + (1 - alpha) * mean +
    sqrt(1 - alpha^2) * sigma * noise`` with standard normal ``noise``, which
    keeps the marginal distribution at mean ``mean`` and standard deviation
    ``sigma`` for any correlation ``alpha``.  Samples are clamped below at
    ``floor`` so the link never has zero (or negative) capacity.
    """

    def __init__(
        self,
        mean: float,
        sigma: float,
        alpha: float = 0.98,
        floor: float = 0.5 * MB,
        seed: int | None = None,
    ):
        if mean <= 0:
            raise ValueError("mean bandwidth must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0 <= alpha < 1:
            raise ValueError("alpha must be in [0, 1)")
        if floor <= 0:
            raise ValueError("floor must be positive")
        self.mean = mean
        self.sigma = sigma
        self.alpha = alpha
        self.floor = floor
        self._rng = random.Random(seed)

    def sample_path(self, duration: float, step: float = 1.0) -> list[tuple[float, float]]:
        """Sample a trace of ``(time, rate)`` breakpoints covering ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if step <= 0:
            raise ValueError("step must be positive")
        innovation_scale = self.sigma * (1.0 - self.alpha**2) ** 0.5
        value = self._rng.gauss(self.mean, self.sigma)
        points: list[tuple[float, float]] = []
        t = 0.0
        while t < duration:
            points.append((t, max(self.floor, value)))
            value = (
                self.alpha * value
                + (1.0 - self.alpha) * self.mean
                + innovation_scale * self._rng.gauss(0.0, 1.0)
            )
            t += step
        return points

    def trace(self, duration: float, step: float = 1.0) -> PiecewiseConstantBandwidth:
        """A piecewise-constant bandwidth trace sampled from the process."""
        return PiecewiseConstantBandwidth(self.sample_path(duration, step))


def constant_traces(num_nodes: int, rate: float) -> list[ConstantBandwidth]:
    """Identical constant-rate traces for every node (the fixed-bandwidth baseline)."""
    return [ConstantBandwidth(rate) for _ in range(num_nodes)]


def spatial_variation_rates(
    num_nodes: int, base: float = 10 * MB, step: float = 0.5 * MB
) -> list[float]:
    """The per-node constant rates of the spatial-variation experiment (Fig. 11a).

    Node ``i`` gets ``base + step * i`` bytes per second; the paper uses
    ``10 + 0.5 i`` MB/s for 16 nodes.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    return [base + step * i for i in range(num_nodes)]


def gauss_markov_traces(
    num_nodes: int,
    duration: float,
    mean: float = 10 * MB,
    sigma: float = 5 * MB,
    alpha: float = 0.98,
    step: float = 1.0,
    seed: int = 0,
) -> list[PiecewiseConstantBandwidth]:
    """Independent Gauss-Markov traces for every node (Fig. 11b).

    Every node's trace is sampled from the same distribution but with an
    independent, deterministic per-node seed so experiments are reproducible.
    """
    traces = []
    for node in range(num_nodes):
        process = GaussMarkovProcess(
            mean=mean, sigma=sigma, alpha=alpha, seed=seed * 10_000 + node
        )
        traces.append(process.trace(duration, step))
    return traces
