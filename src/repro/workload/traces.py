"""Bandwidth trace generation for the controlled experiments (S6.3).

The paper's controlled experiments throttle each node's ingress and egress
independently:

* **Spatial variation** (Fig. 11a): node ``i`` is capped at a constant
  ``10 + 0.5 * i`` MB/s.
* **Temporal variation** (Fig. 11b, Fig. 16): each node's bandwidth follows
  an independent Gauss-Markov process with mean ``b = 10`` MB/s, standard
  deviation ``sigma = 5`` MB/s and correlation ``alpha = 0.98`` between
  consecutive 1-second samples.

Both are expressed as :class:`repro.sim.bandwidth.PiecewiseConstantBandwidth`
traces consumed by the simulator's pipes.
"""

from __future__ import annotations

import random

from repro.sim.bandwidth import BandwidthTrace, ConstantBandwidth, PiecewiseConstantBandwidth

MB = 1_000_000


class GaussMarkovProcess:
    """The temporal bandwidth variation model of S6.3.

    Successive samples follow ``x[t+1] = alpha * x[t] + (1 - alpha) * mean +
    sqrt(1 - alpha^2) * sigma * noise`` with standard normal ``noise``, which
    keeps the marginal distribution at mean ``mean`` and standard deviation
    ``sigma`` for any correlation ``alpha``.  Samples are clamped below at
    ``floor`` so the link never has zero (or negative) capacity.
    """

    def __init__(
        self,
        mean: float,
        sigma: float,
        alpha: float = 0.98,
        floor: float = 0.5 * MB,
        seed: int | None = None,
    ):
        if mean <= 0:
            raise ValueError("mean bandwidth must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0 <= alpha < 1:
            raise ValueError("alpha must be in [0, 1)")
        if floor <= 0:
            raise ValueError("floor must be positive")
        self.mean = mean
        self.sigma = sigma
        self.alpha = alpha
        self.floor = floor
        self._rng = random.Random(seed)

    def sample_path(self, duration: float, step: float = 1.0) -> list[tuple[float, float]]:
        """Sample a trace of ``(time, rate)`` breakpoints covering ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if step <= 0:
            raise ValueError("step must be positive")
        innovation_scale = self.sigma * (1.0 - self.alpha**2) ** 0.5
        value = self._rng.gauss(self.mean, self.sigma)
        points: list[tuple[float, float]] = []
        t = 0.0
        while t < duration:
            points.append((t, max(self.floor, value)))
            value = (
                self.alpha * value
                + (1.0 - self.alpha) * self.mean
                + innovation_scale * self._rng.gauss(0.0, 1.0)
            )
            t += step
        return points

    def trace(self, duration: float, step: float = 1.0) -> PiecewiseConstantBandwidth:
        """A piecewise-constant bandwidth trace sampled from the process."""
        return PiecewiseConstantBandwidth(self.sample_path(duration, step))


def constant_traces(num_nodes: int, rate: float) -> list[ConstantBandwidth]:
    """Identical constant-rate traces for every node (the fixed-bandwidth baseline)."""
    return [ConstantBandwidth(rate) for _ in range(num_nodes)]


def spatial_variation_rates(
    num_nodes: int, base: float = 10 * MB, step: float = 0.5 * MB
) -> list[float]:
    """The per-node constant rates of the spatial-variation experiment (Fig. 11a).

    Node ``i`` gets ``base + step * i`` bytes per second; the paper uses
    ``10 + 0.5 i`` MB/s for 16 nodes.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    return [base + step * i for i in range(num_nodes)]


def straggler_rates(
    num_nodes: int,
    num_stragglers: int,
    fast: float = 10 * MB,
    slow: float = 1 * MB,
) -> list[float]:
    """Per-node constant rates for a heterogeneous cluster with stragglers.

    The first ``num_nodes - num_stragglers`` nodes run at ``fast`` bytes per
    second and the last ``num_stragglers`` nodes at ``slow``.  This is the
    heavy-tailed counterpart of :func:`spatial_variation_rates`: instead of a
    gentle linear ramp, a few nodes are an order of magnitude behind, the
    regime where lockstep protocols collapse to the stragglers' rate.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if not 0 <= num_stragglers <= num_nodes:
        raise ValueError("num_stragglers must be between 0 and num_nodes")
    if slow <= 0 or fast <= 0:
        raise ValueError("rates must be positive")
    return [fast] * (num_nodes - num_stragglers) + [slow] * num_stragglers


def flapping_trace(
    duration: float,
    healthy: float,
    degraded: float,
    period: float = 12.0,
    degraded_for: float = 4.0,
    phase: float = 0.0,
) -> PiecewiseConstantBandwidth:
    """A link that flaps between a healthy and a heavily degraded rate.

    Each ``period`` seconds the link spends ``degraded_for`` seconds at
    ``degraded`` bytes/s and the rest at ``healthy``.  ``phase`` shifts the
    cycle so a population of flapping links can be staggered such that at any
    moment some link is degraded (the "bandwidth churn" regime of Fig. 1:
    more than ``f`` nodes have been slow *recently*, so no lockstep protocol
    can simply leave the slow set behind).
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if healthy <= 0 or degraded <= 0:
        raise ValueError("rates must be positive")
    if not 0 < degraded_for < period:
        raise ValueError("need 0 < degraded_for < period")
    breakpoints: list[tuple[float, float]] = []

    def rate_at(t: float) -> float:
        return degraded if (t - phase) % period < degraded_for else healthy

    # Emit exact cycle boundaries instead of sampling: the trace is piecewise
    # constant with breakpoints at phase + k*period and phase + k*period +
    # degraded_for for every cycle k overlapping [0, duration].
    boundaries = {0.0}
    k_start = int((0.0 - phase) // period) - 1
    t = phase + k_start * period
    while t < duration + period:
        for edge in (t, t + degraded_for):
            if 0.0 < edge < duration + period:
                boundaries.add(edge)
        t += period
    previous_rate: float | None = None
    for edge in sorted(boundaries):
        rate = rate_at(edge)
        if rate != previous_rate:
            breakpoints.append((edge, rate))
            previous_rate = rate
    return PiecewiseConstantBandwidth(breakpoints)


def flapping_traces(
    num_nodes: int,
    num_flaky: int,
    duration: float,
    healthy: float = 4 * MB,
    degraded: float = 0.3 * MB,
    period: float = 12.0,
    degraded_for: float = 4.0,
) -> list[BandwidthTrace]:
    """Traces for a cluster where the last ``num_flaky`` nodes take turns flapping.

    The flaky nodes' degraded windows are staggered evenly across the period
    so the set of currently-degraded nodes rotates — the scenario the paper
    opens with (Fig. 1), generalised to any cluster size.
    """
    if not 0 <= num_flaky <= num_nodes:
        raise ValueError("num_flaky must be between 0 and num_nodes")
    steady: list[BandwidthTrace] = [
        ConstantBandwidth(healthy) for _ in range(num_nodes - num_flaky)
    ]
    stagger = period / num_flaky if num_flaky else 0.0
    flaky: list[BandwidthTrace] = [
        flapping_trace(
            duration,
            healthy,
            degraded,
            period=period,
            degraded_for=degraded_for,
            phase=index * stagger,
        )
        for index in range(num_flaky)
    ]
    return steady + flaky


def gauss_markov_traces(
    num_nodes: int,
    duration: float,
    mean: float = 10 * MB,
    sigma: float = 5 * MB,
    alpha: float = 0.98,
    step: float = 1.0,
    seed: int = 0,
) -> list[PiecewiseConstantBandwidth]:
    """Independent Gauss-Markov traces for every node (Fig. 11b).

    Every node's trace is sampled from the same distribution but with an
    independent, deterministic per-node seed so experiments are reproducible.
    """
    traces = []
    for node in range(num_nodes):
        process = GaussMarkovProcess(
            mean=mean, sigma=sigma, alpha=alpha, seed=seed * 10_000 + node
        )
        traces.append(process.trace(duration, step))
    return traces
