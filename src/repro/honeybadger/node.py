"""HoneyBadger and HoneyBadger-Link nodes.

HoneyBadger (Miller et al., CCS 2016) has the same epoch skeleton as
DispersedLedger — N broadcasts feeding N binary agreements — but uses the
VID construction as a *reliable broadcast*: retrieval is invoked immediately
after dispersal, a node only votes for a block after downloading it, and the
next epoch begins only after the current epoch's committed blocks have all
been downloaded and delivered.  That coupling is exactly what makes its
throughput track the ``(f+1)``-th slowest node (S1, Fig. 1a of the paper).

``HoneyBadgerNode`` runs without inter-node linking, so up to ``f`` correct
blocks are dropped per epoch and re-proposed later.  ``HoneyBadgerLinkNode``
enables the linking rule (the paper's HB-Link baseline), which removes the
dropped-block bandwidth waste but keeps the lockstep epoch structure.
"""

from __future__ import annotations

from functools import partial

from repro.common.ids import VIDInstanceId
from repro.core.config import NodeConfig
from repro.core.epoch import EpochState
from repro.core.node_base import BFTNodeBase
from repro.vid.avid_m import RetrievalResult


def _with_linking(config: NodeConfig | None, linking: bool) -> NodeConfig:
    """Return ``config`` with its ``linking`` flag forced to ``linking``."""
    if config is None:
        return NodeConfig(linking=linking)
    if config.linking == linking:
        return config
    return NodeConfig(
        data_plane=config.data_plane,
        nagle_delay=config.nagle_delay,
        nagle_size=config.nagle_size,
        max_block_size=config.max_block_size,
        linking=linking,
        coupled=config.coupled,
        coupled_lag=config.coupled_lag,
        max_parallel_retrievals=config.max_parallel_retrievals,
        propose_empty_when_idle=config.propose_empty_when_idle,
        retrieval_uses_priority=config.retrieval_uses_priority,
    )


class HoneyBadgerNode(BFTNodeBase):
    """One HoneyBadger node (no inter-node linking)."""

    #: Whether this baseline applies the inter-node linking rule.
    LINKING = False

    def __init__(self, *args, **kwargs):
        kwargs["config"] = _with_linking(kwargs.get("config"), self.LINKING)
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------

    def _on_vid_complete(self, instance: VIDInstanceId) -> None:
        # Reliable-broadcast semantics: download the block first, vote after.
        epoch, slot = instance.epoch, instance.proposer
        state = self._epoch_state(epoch)
        if slot in state.retrieved:
            self._input_ba(epoch, slot, 1)
            return
        self._get_vid(instance).retrieve(partial(self._block_fetched, epoch, slot))

    def _block_fetched(self, epoch: int, slot: int, result: RetrievalResult) -> None:
        state = self._epoch_state(epoch)
        block = self._block_from_payload(result.payload) if result.ok else None
        if slot not in state.retrieved:
            state.retrieved[slot] = block
        self._input_ba(epoch, slot, 1)
        self._try_deliver()

    def _on_epoch_agreement_done(self, epoch: int, state: EpochState) -> None:
        # The committed set may contain blocks this node has not downloaded
        # yet (it voted 0 on them but they were committed anyway); fetch them
        # before the epoch can be delivered.  The next epoch does NOT start
        # here — HoneyBadger is lockstep and waits for delivery.
        state.retrieval_started = True
        for slot in state.committed or ():
            if slot not in state.retrieved:
                self._retrieve_slot(epoch, slot)
        self._try_deliver()

    def _on_epoch_delivered(self, epoch: int, state: EpochState) -> None:
        # Lockstep: only now may the next epoch's broadcast begin.
        self._schedule_epoch_start(epoch + 1)


class HoneyBadgerLinkNode(HoneyBadgerNode):
    """HoneyBadger with DispersedLedger's inter-node linking (HB-Link, S6)."""

    LINKING = True
