"""HoneyBadger baselines.

The paper evaluates DispersedLedger against HoneyBadger (Miller et al., CCS
2016) and against "HoneyBadger with inter-node linking" (HB-Link), an
optimised baseline the authors build by grafting DispersedLedger's linking
rule onto HoneyBadger (S6).  Both are implemented here on the same
substrates as DispersedLedger so that every difference measured by the
experiments comes from the protocol structure and not the implementation:

* HoneyBadger downloads a block *before* voting for it, and an epoch only
  ends once its committed blocks are downloaded and delivered — so the whole
  cluster advances in lockstep at the pace of the ``(f+1)``-th slowest node;
* without linking, up to ``f`` correct blocks are dropped every epoch and
  their transactions are re-proposed later (wasting the bandwidth spent
  broadcasting them);
* HB-Link removes the dropped-block waste but keeps the lockstep coupling.
"""

from repro.honeybadger.node import HoneyBadgerLinkNode, HoneyBadgerNode

__all__ = ["HoneyBadgerLinkNode", "HoneyBadgerNode"]
