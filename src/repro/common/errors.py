"""Exception hierarchy for the DispersedLedger reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid protocol or experiment configuration was supplied."""


class TraceError(ConfigurationError):
    """A measured-bandwidth trace file is malformed or cannot be used."""


class SnapshotError(ConfigurationError):
    """A simulation checkpoint is malformed, mismatched, or cannot be taken."""


class ProtocolError(ReproError):
    """A protocol automaton received input that violates its contract."""


class DispersalError(ProtocolError):
    """A VID dispersal could not be carried out."""


class RetrievalError(ProtocolError):
    """A VID retrieval could not be carried out."""


class DecodingError(ReproError):
    """An erasure-coded payload could not be decoded."""
