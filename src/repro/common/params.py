"""Protocol parameters shared by every subprotocol.

The paper's security model (S2.4) fixes a set of ``N`` servers of which at
most ``f`` are Byzantine, with ``N >= 3f + 1``.  Every subprotocol (AVID-M,
binary agreement, DispersedLedger, HoneyBadger) derives its thresholds from
these two numbers, so they live in a single immutable value object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ProtocolParams:
    """The ``(N, f)`` parameters of the Byzantine fault tolerance setting.

    Attributes:
        n: total number of servers (``N`` in the paper).
        f: maximum number of Byzantine servers tolerated.
    """

    n: int
    f: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.f < 0:
            raise ConfigurationError(f"f must be non-negative, got {self.f}")
        if self.n < 3 * self.f + 1:
            raise ConfigurationError(
                f"need n >= 3f + 1 for Byzantine tolerance, got n={self.n}, f={self.f}"
            )

    @classmethod
    def for_n(cls, n: int) -> "ProtocolParams":
        """Build parameters for ``n`` servers with the maximum tolerable ``f``."""
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        return cls(n=n, f=(n - 1) // 3)

    @property
    def quorum(self) -> int:
        """Size of a super-majority quorum (``N - f``)."""
        return self.n - self.f

    @property
    def small_quorum(self) -> int:
        """Number of votes that guarantees at least one correct vote (``f + 1``)."""
        return self.f + 1

    @property
    def data_shards(self) -> int:
        """Number of data shards of the ``(N - 2f, N)`` erasure code."""
        return self.n - 2 * self.f

    @property
    def total_shards(self) -> int:
        """Total number of erasure-code shards (one per server)."""
        return self.n

    @property
    def ready_threshold(self) -> int:
        """Number of ``Ready`` messages required to complete a dispersal (``2f + 1``)."""
        return 2 * self.f + 1

    @property
    def ready_amplify_threshold(self) -> int:
        """Number of ``Ready`` messages that triggers echoing ``Ready`` (``f + 1``)."""
        return self.f + 1

    def node_indices(self) -> range:
        """All node indices, ``0..N-1``."""
        return range(self.n)
