"""Typed identifiers for protocol instances.

DispersedLedger runs ``N`` VID instances and ``N`` BA instances per epoch
(S4.2 of the paper).  Messages for every instance are tagged with the
instance id so that concurrently running instances never interfere.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class VIDInstanceId:
    """Identifies one VID instance: the proposer's slot for one epoch."""

    epoch: int
    proposer: int

    def __str__(self) -> str:
        return f"VID(e={self.epoch}, p={self.proposer})"


@dataclass(frozen=True, order=True)
class BAInstanceId:
    """Identifies one binary-agreement instance for one epoch and slot."""

    epoch: int
    slot: int

    def __str__(self) -> str:
        return f"BA(e={self.epoch}, s={self.slot})"
