"""Typed identifiers for protocol instances.

DispersedLedger runs ``N`` VID instances and ``N`` BA instances per epoch
(S4.2 of the paper).  Messages for every instance are tagged with the
instance id so that concurrently running instances never interfere.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class VIDInstanceId:
    """Identifies one VID instance: the proposer's slot for one epoch."""

    epoch: int
    proposer: int

    def __post_init__(self) -> None:
        # Instance ids key the per-node automaton dicts, so they are hashed
        # on every message delivery; cache the hash once.
        object.__setattr__(self, "_hash", hash((self.epoch, self.proposer)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"VID(e={self.epoch}, p={self.proposer})"


@dataclass(frozen=True, order=True)
class BAInstanceId:
    """Identifies one binary-agreement instance for one epoch and slot."""

    epoch: int
    slot: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.epoch, self.slot)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"BA(e={self.epoch}, s={self.slot})"
