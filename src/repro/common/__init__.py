"""Shared primitives used across the DispersedLedger reproduction.

This package holds protocol parameters, typed identifiers for protocol
instances, and the exception hierarchy.  Nothing here depends on the
simulator or on any particular protocol, so every other subpackage may
import it freely.
"""

from repro.common.errors import (
    ConfigurationError,
    DecodingError,
    DispersalError,
    ProtocolError,
    ReproError,
    RetrievalError,
)
from repro.common.ids import BAInstanceId, VIDInstanceId
from repro.common.params import ProtocolParams

__all__ = [
    "BAInstanceId",
    "ConfigurationError",
    "DecodingError",
    "DispersalError",
    "ProtocolError",
    "ProtocolParams",
    "ReproError",
    "RetrievalError",
    "VIDInstanceId",
]
