"""The :class:`SnapshotState` mixin (dependency-free layer).

Lives under ``repro.common`` so that every layer — ``sim``, ``core``,
``vid``, ``ba``, ``trace``, ``workload`` — can declare explicit snapshot
fields without importing ``repro.sim.snapshot`` (which itself imports the
event loop).  See :mod:`repro.sim.snapshot` for the checkpoint format built
on top of this.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import SnapshotError


def _declared_slots(cls: type) -> set[str]:
    slots: set[str] = set()
    for klass in cls.__mro__:
        declared = klass.__dict__.get("__slots__", ())
        if isinstance(declared, str):
            declared = (declared,)
        slots.update(declared)
    slots.discard("__dict__")
    slots.discard("__weakref__")
    return slots


class SnapshotState:
    """Mixin: explicit ``snapshot_state()/restore_state()`` from a field list.

    A subclass declares ``_SNAPSHOT_FIELDS`` — the complete tuple of instance
    attributes that make up its durable state.  ``snapshot_state`` fails
    loudly (:class:`SnapshotError`) if the live object carries an attribute
    (or declares a slot) that is not listed, so adding a field without
    updating the snapshot format is caught the first time a checkpoint is
    attempted, not on a corrupt restore months later.  Fields that are
    declared but absent (lazily-set attributes) are simply omitted and stay
    absent after restore.

    The pair doubles as ``__getstate__``/``__setstate__``, so a single deep
    pickle of the experiment graph — which preserves shared references and
    cycles via memoisation — routes every participating class through its
    reviewed field list.
    """

    __slots__ = ()

    #: Complete list of instance attributes comprising this class's state.
    _SNAPSHOT_FIELDS: tuple[str, ...] = ()

    def snapshot_state(self) -> dict[str, Any]:
        """Return this object's durable state as a ``field -> value`` dict."""
        cls = type(self)
        fields = cls._SNAPSHOT_FIELDS
        instance_dict = getattr(self, "__dict__", None)
        if instance_dict is not None:
            unknown = [name for name in instance_dict if name not in fields]
            if unknown:
                raise SnapshotError(
                    f"{cls.__name__} has undeclared attributes {sorted(unknown)}; "
                    f"update {cls.__name__}._SNAPSHOT_FIELDS so the checkpoint "
                    "format stays complete"
                )
        undeclared_slots = [name for name in _declared_slots(cls) if name not in fields]
        if undeclared_slots:
            raise SnapshotError(
                f"{cls.__name__} has undeclared slots {sorted(undeclared_slots)}; "
                f"update {cls.__name__}._SNAPSHOT_FIELDS so the checkpoint "
                "format stays complete"
            )
        state: dict[str, Any] = {}
        missing = object()
        for name in fields:
            value = getattr(self, name, missing)
            if value is not missing:
                state[name] = value
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        """Apply a ``snapshot_state`` dict onto this (possibly blank) object."""
        cls = type(self)
        fields = cls._SNAPSHOT_FIELDS
        unknown = [name for name in state if name not in fields]
        if unknown:
            raise SnapshotError(
                f"checkpoint carries fields {sorted(unknown)} unknown to "
                f"{cls.__name__}; the checkpoint was written by an "
                "incompatible version"
            )
        for name, value in state.items():
            setattr(self, name, value)

    __getstate__ = snapshot_state
    __setstate__ = restore_state
