"""Configuration of a DispersedLedger / HoneyBadger node.

The defaults follow the paper's implementation section (S5): Nagle-style
block proposal rate control with a 100 ms delay threshold and a 150 KB size
threshold, dispersal traffic strictly prioritised over retrieval traffic,
and retrieval traffic ordered by epoch number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: Data-plane selector: move real erasure-coded bytes.
REAL_PLANE = "real"
#: Data-plane selector: account for bytes without moving them (experiments).
VIRTUAL_PLANE = "virtual"


@dataclass(frozen=True)
class NodeConfig:
    """Tunable behaviour of one BFT node.

    Attributes:
        data_plane: ``"real"`` to erasure-code actual block bytes (used by the
            unit tests and the examples), ``"virtual"`` to account for message
            sizes without moving payload bytes (used by throughput
            experiments, where simulating multi-megabyte blocks must be cheap).
        nagle_delay: seconds that must elapse since the last proposal before a
            new block may be proposed on the time trigger (S5: 100 ms).
        nagle_size: pending transaction bytes that trigger an immediate
            proposal (S5: 150 KB).
        max_block_size: cap on the transaction bytes packed into one block.
        linking: enable the inter-node linking rule of S4.3 so that every
            correct dispersed block is eventually delivered.
        coupled: the DL-Coupled variant of S4.5 — propose an *empty* block
            (no transactions) whenever retrieval lags more than
            ``coupled_lag`` epochs behind the dispersal frontier.
        coupled_lag: the ``P`` parameter of S4.5 (``P = 1`` matches
            HoneyBadger's behaviour).
        max_parallel_retrievals: how many epochs a node retrieves concurrently
            (S4.5 allows retrieving from multiple epochs in parallel while
            always delivering in serial order).
        propose_empty_when_idle: if the mempool is empty when the node is
            ready for a new epoch, propose an empty block instead of waiting.
            Keeps the epoch pipeline advancing under light load.
        retrieval_uses_priority: mark retrieval traffic with the low-priority
            class (True for DispersedLedger; HoneyBadger has no separate
            retrieval phase competing with dispersal so the flag is moot).
        mempool: ``"object"`` for the per-``Transaction`` deque mempool,
            ``"columnar"`` for the struct-of-arrays mempool that queues
            :class:`~repro.core.txbatch.TxBatch` runs and slices block
            contents as index ranges (the million-transaction workloads).
            Any key registered in :data:`repro.core.mempool.MEMPOOLS` works.
        retrieve_blocks: the "low-bandwidth mode" sketched in S1 of the paper:
            when False, the node participates fully in dispersal and agreement
            (storing its chunks and voting, thereby contributing to the
            network's security) but never downloads full blocks, proposes only
            empty blocks, and consequently delivers nothing locally.  Only
            meaningful for DispersedLedger nodes — HoneyBadger's lockstep
            epochs cannot advance without retrieving.
    """

    data_plane: str = VIRTUAL_PLANE
    nagle_delay: float = 0.1
    nagle_size: int = 150_000
    max_block_size: int = 2_000_000
    linking: bool = True
    coupled: bool = False
    coupled_lag: int = 1
    max_parallel_retrievals: int = 4
    propose_empty_when_idle: bool = True
    retrieval_uses_priority: bool = True
    retrieve_blocks: bool = True
    mempool: str = "object"

    def __post_init__(self) -> None:
        if self.data_plane not in (REAL_PLANE, VIRTUAL_PLANE):
            raise ConfigurationError(
                f"data_plane must be '{REAL_PLANE}' or '{VIRTUAL_PLANE}', "
                f"got {self.data_plane!r}"
            )
        # Validated against the MEMPOOLS registry lazily (at node construction)
        # to avoid a config -> mempool -> block import cycle; reject the
        # obviously malformed here.
        if not self.mempool or not isinstance(self.mempool, str):
            raise ConfigurationError("mempool must be a non-empty registry key")
        if self.nagle_delay < 0:
            raise ConfigurationError("nagle_delay must be non-negative")
        if self.nagle_size < 0:
            raise ConfigurationError("nagle_size must be non-negative")
        if self.max_block_size <= 0:
            raise ConfigurationError("max_block_size must be positive")
        if self.coupled_lag < 1:
            raise ConfigurationError("coupled_lag must be at least 1")
        if self.max_parallel_retrievals < 1:
            raise ConfigurationError("max_parallel_retrievals must be at least 1")
