"""The transaction input queue with Nagle-style proposal rate control.

Clients submit transactions to their node's mempool (Fig. 5 of the paper).
At the beginning of every epoch the node takes transactions from the head of
the queue to form a block.  The implementation throttles proposals the way
the paper's prototype does (S5): a new block is proposed only when either a
minimum delay has passed since the last proposal or a minimum amount of
data has accumulated.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Union

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.snapshot import SnapshotState
from repro.core.block import Transaction
from repro.core.txbatch import TxBatch


class Mempool(SnapshotState):
    """FIFO queue of pending transactions with byte accounting."""

    _SNAPSHOT_FIELDS = (
        "nagle_delay",
        "nagle_size",
        "_queue",
        "_pending_bytes",
        "_last_proposal_time",
        "total_submitted",
        "total_proposed",
    )

    def __init__(self, nagle_delay: float = 0.1, nagle_size: int = 150_000):
        self.nagle_delay = nagle_delay
        self.nagle_size = nagle_size
        self._queue: deque[Transaction] = deque()
        self._pending_bytes = 0
        self._last_proposal_time = float("-inf")
        self.total_submitted = 0
        self.total_proposed = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, tx: Transaction) -> None:
        """Append one transaction to the tail of the queue."""
        self._queue.append(tx)
        self._pending_bytes += tx.size
        self.total_submitted += 1

    def submit_many(self, txs: Iterable[Transaction]) -> None:
        """Append a batch of transactions."""
        for tx in txs:
            self.submit(tx)

    def requeue_front(self, txs: Iterable[Transaction]) -> None:
        """Put transactions back at the *head* of the queue.

        HoneyBadger re-proposes the transactions of a dropped block in the
        next epoch (S4.2); putting them at the front preserves their
        submission order relative to newer transactions.
        """
        for tx in reversed(list(txs)):
            self._queue.appendleft(tx)
            self._pending_bytes += tx.size

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of transactions waiting to be proposed."""
        return len(self._queue)

    @property
    def pending_bytes(self) -> int:
        """Total payload bytes waiting to be proposed."""
        return self._pending_bytes

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def last_proposal_time(self) -> float:
        """Virtual time of the most recent :meth:`take_batch` call."""
        return self._last_proposal_time

    # ------------------------------------------------------------------
    # Proposal rate control (Nagle's algorithm, S5)
    # ------------------------------------------------------------------

    def ready_to_propose(self, now: float) -> bool:
        """True when the Nagle rule allows proposing a new block at ``now``.

        A node proposes when (i) ``nagle_delay`` has passed since the last
        proposal, or (ii) at least ``nagle_size`` bytes have accumulated.
        """
        if self._pending_bytes >= self.nagle_size:
            return True
        return now - self._last_proposal_time >= self.nagle_delay

    def time_until_ready(self, now: float) -> float:
        """Seconds until the time trigger of the Nagle rule fires (0 if ready)."""
        if self.ready_to_propose(now):
            return 0.0
        return max(0.0, self._last_proposal_time + self.nagle_delay - now)

    def take_batch(self, max_bytes: int, now: float) -> list[Transaction]:
        """Remove and return up to ``max_bytes`` of transactions from the head.

        Always removes at least one transaction if the queue is non-empty,
        even when that transaction alone exceeds ``max_bytes`` (a single
        oversized transaction must not wedge the queue).
        """
        batch: list[Transaction] = []
        batch_bytes = 0
        while self._queue:
            tx = self._queue[0]
            if batch and batch_bytes + tx.size > max_bytes:
                break
            self._queue.popleft()
            self._pending_bytes -= tx.size
            batch.append(tx)
            batch_bytes += tx.size
            if batch_bytes >= max_bytes:
                break
        self._last_proposal_time = now
        self.total_proposed += len(batch)
        return batch

    def mark_proposal(self, now: float) -> None:
        """Record a proposal that took no transactions (an empty block)."""
        self._last_proposal_time = now


class ColumnarMempool(SnapshotState):
    """A struct-of-arrays mempool: a FIFO of :class:`TxBatch` runs.

    Drop-in behavioural twin of :class:`Mempool` — same Nagle rule, same
    ``take_batch`` cut semantics (greedy byte budget, always at least one
    transaction, stop once the budget is reached) — but the queue holds
    columnar batches and a head offset instead of one deque entry per
    transaction.  ``take_batch`` returns a :class:`TxBatch` whose columns
    are zero-copy views into the queued batches, so draining a million
    pending transactions into blocks costs a handful of ``searchsorted``
    calls rather than a million ``popleft``s.
    """

    _SNAPSHOT_FIELDS = (
        "nagle_delay",
        "nagle_size",
        "_queue",
        "_head_offset",
        "_head_offset_bytes",
        "_pending_count",
        "_pending_bytes",
        "_last_proposal_time",
        "total_submitted",
        "total_proposed",
    )

    def __init__(self, nagle_delay: float = 0.1, nagle_size: int = 150_000):
        self.nagle_delay = nagle_delay
        self.nagle_size = nagle_size
        self._queue: deque[TxBatch] = deque()
        self._head_offset = 0  # txs already drained from the head batch
        self._head_offset_bytes = 0  # their bytes
        self._pending_count = 0
        self._pending_bytes = 0
        self._last_proposal_time = float("-inf")
        self.total_submitted = 0
        self.total_proposed = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit_batch(self, batch: TxBatch) -> None:
        """Append a columnar batch to the tail of the queue (the fast path)."""
        if not len(batch):
            return
        self._queue.append(batch)
        self._pending_count += batch.count
        self._pending_bytes += batch.total_bytes
        self.total_submitted += batch.count

    def submit(self, tx: Transaction) -> None:
        """Append one object transaction (compatibility with the object API)."""
        self.submit_batch(TxBatch.from_transactions([tx]))

    def submit_many(self, txs: Iterable[Transaction]) -> None:
        """Append object transactions, columnarising one batch per origin run."""
        run: list[Transaction] = []
        for tx in txs:
            if run and tx.origin != run[0].origin:
                self.submit_batch(TxBatch.from_transactions(run))
                run = []
            run.append(tx)
        if run:
            self.submit_batch(TxBatch.from_transactions(run))

    def requeue_front(self, txs: Union[TxBatch, Iterable[Transaction]]) -> None:
        """Put a dropped block's transactions back at the *head* of the queue."""
        batch = txs if isinstance(txs, TxBatch) else TxBatch.from_transactions(list(txs))
        if not len(batch):
            return
        # Seal the partially-drained head first so order stays intact.
        self._consolidate_head()
        self._queue.appendleft(batch)
        self._pending_count += batch.count
        self._pending_bytes += batch.total_bytes

    def _consolidate_head(self) -> None:
        """Replace a partially-drained head batch with its undrained tail."""
        if self._head_offset and self._queue:
            head = self._queue.popleft()
            self._queue.appendleft(head.slice(self._head_offset, len(head)))
        self._head_offset = 0
        self._head_offset_bytes = 0

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of transactions waiting to be proposed."""
        return self._pending_count

    @property
    def pending_bytes(self) -> int:
        """Total payload bytes waiting to be proposed."""
        return self._pending_bytes

    @property
    def is_empty(self) -> bool:
        return self._pending_count == 0

    @property
    def last_proposal_time(self) -> float:
        """Virtual time of the most recent :meth:`take_batch` call."""
        return self._last_proposal_time

    # ------------------------------------------------------------------
    # Proposal rate control (Nagle's algorithm, S5)
    # ------------------------------------------------------------------

    def ready_to_propose(self, now: float) -> bool:
        """Same Nagle rule as :meth:`Mempool.ready_to_propose`."""
        if self._pending_bytes >= self.nagle_size:
            return True
        return now - self._last_proposal_time >= self.nagle_delay

    def time_until_ready(self, now: float) -> float:
        """Seconds until the time trigger of the Nagle rule fires (0 if ready)."""
        if self.ready_to_propose(now):
            return 0.0
        return max(0.0, self._last_proposal_time + self.nagle_delay - now)

    def take_batch(self, max_bytes: int, now: float) -> TxBatch:
        """Remove up to ``max_bytes`` of transactions from the head as one batch.

        Cut semantics match :meth:`Mempool.take_batch` exactly: transactions
        are taken greedily in FIFO order, the first transaction is always
        taken even if oversized, and the drain stops once the accumulated
        bytes reach ``max_bytes``.  The cut point inside each queued batch is
        found with a ``searchsorted`` on its cached size prefix-sums.
        """
        taken: list[TxBatch] = []
        taken_bytes = 0
        while self._queue:
            head = self._queue[0]
            cumsum = head.size_cumsum()
            base = self._head_offset_bytes
            # Longest prefix of the undrained head whose cumulative bytes
            # (plus what this call already took) stays within the budget.
            cut = int(
                np.searchsorted(cumsum, (max_bytes - taken_bytes) + base, side="right")
            )
            if cut <= self._head_offset:
                if not taken:
                    # Min-1 rule: a single oversized transaction must not
                    # wedge the queue.
                    cut = self._head_offset + 1
                else:
                    break
            piece = head.slice(self._head_offset, cut)
            taken.append(piece)
            taken_bytes += piece.total_bytes
            if cut >= len(head):
                self._queue.popleft()
                self._head_offset = 0
                self._head_offset_bytes = 0
            else:
                self._head_offset = cut
                self._head_offset_bytes = int(cumsum[cut - 1])
            self._pending_count -= piece.count
            self._pending_bytes -= piece.total_bytes
            if taken_bytes >= max_bytes:
                break
        self._last_proposal_time = now
        batch = TxBatch.concat(taken) if taken else TxBatch.empty(0)
        self.total_proposed += batch.count
        return batch

    def mark_proposal(self, now: float) -> None:
        """Record a proposal that took no transactions (an empty block)."""
        self._last_proposal_time = now


#: Registry of mempool implementations, keyed by ``NodeConfig.mempool``.
MEMPOOLS: dict[str, Callable[..., "Mempool | ColumnarMempool"]] = {
    "object": Mempool,
    "columnar": ColumnarMempool,
}


def create_mempool(
    kind: str, nagle_delay: float = 0.1, nagle_size: int = 150_000
) -> "Mempool | ColumnarMempool":
    """Build a mempool of the registered ``kind`` (``"object"``/``"columnar"``)."""
    try:
        factory = MEMPOOLS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown mempool kind {kind!r}; registered: {sorted(MEMPOOLS)}"
        ) from None
    return factory(nagle_delay=nagle_delay, nagle_size=nagle_size)
