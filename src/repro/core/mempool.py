"""The transaction input queue with Nagle-style proposal rate control.

Clients submit transactions to their node's mempool (Fig. 5 of the paper).
At the beginning of every epoch the node takes transactions from the head of
the queue to form a block.  The implementation throttles proposals the way
the paper's prototype does (S5): a new block is proposed only when either a
minimum delay has passed since the last proposal or a minimum amount of
data has accumulated.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.block import Transaction


class Mempool:
    """FIFO queue of pending transactions with byte accounting."""

    def __init__(self, nagle_delay: float = 0.1, nagle_size: int = 150_000):
        self.nagle_delay = nagle_delay
        self.nagle_size = nagle_size
        self._queue: deque[Transaction] = deque()
        self._pending_bytes = 0
        self._last_proposal_time = float("-inf")
        self.total_submitted = 0
        self.total_proposed = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, tx: Transaction) -> None:
        """Append one transaction to the tail of the queue."""
        self._queue.append(tx)
        self._pending_bytes += tx.size
        self.total_submitted += 1

    def submit_many(self, txs: Iterable[Transaction]) -> None:
        """Append a batch of transactions."""
        for tx in txs:
            self.submit(tx)

    def requeue_front(self, txs: Iterable[Transaction]) -> None:
        """Put transactions back at the *head* of the queue.

        HoneyBadger re-proposes the transactions of a dropped block in the
        next epoch (S4.2); putting them at the front preserves their
        submission order relative to newer transactions.
        """
        for tx in reversed(list(txs)):
            self._queue.appendleft(tx)
            self._pending_bytes += tx.size

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of transactions waiting to be proposed."""
        return len(self._queue)

    @property
    def pending_bytes(self) -> int:
        """Total payload bytes waiting to be proposed."""
        return self._pending_bytes

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def last_proposal_time(self) -> float:
        """Virtual time of the most recent :meth:`take_batch` call."""
        return self._last_proposal_time

    # ------------------------------------------------------------------
    # Proposal rate control (Nagle's algorithm, S5)
    # ------------------------------------------------------------------

    def ready_to_propose(self, now: float) -> bool:
        """True when the Nagle rule allows proposing a new block at ``now``.

        A node proposes when (i) ``nagle_delay`` has passed since the last
        proposal, or (ii) at least ``nagle_size`` bytes have accumulated.
        """
        if self._pending_bytes >= self.nagle_size:
            return True
        return now - self._last_proposal_time >= self.nagle_delay

    def time_until_ready(self, now: float) -> float:
        """Seconds until the time trigger of the Nagle rule fires (0 if ready)."""
        if self.ready_to_propose(now):
            return 0.0
        return max(0.0, self._last_proposal_time + self.nagle_delay - now)

    def take_batch(self, max_bytes: int, now: float) -> list[Transaction]:
        """Remove and return up to ``max_bytes`` of transactions from the head.

        Always removes at least one transaction if the queue is non-empty,
        even when that transaction alone exceeds ``max_bytes`` (a single
        oversized transaction must not wedge the queue).
        """
        batch: list[Transaction] = []
        batch_bytes = 0
        while self._queue:
            tx = self._queue[0]
            if batch and batch_bytes + tx.size > max_bytes:
                break
            self._queue.popleft()
            self._pending_bytes -= tx.size
            batch.append(tx)
            batch_bytes += tx.size
            if batch_bytes >= max_bytes:
                break
        self._last_proposal_time = now
        self.total_proposed += len(batch)
        return batch

    def mark_proposal(self, now: float) -> None:
        """Record a proposal that took no transactions (an empty block)."""
        self._last_proposal_time = now
