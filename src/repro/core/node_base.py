"""Machinery shared by DispersedLedger and the HoneyBadger baselines.

Both protocol families are built from the same pieces (Fig. 5 / S5 of the
paper): per-epoch bundles of N AVID-M instances and N binary-agreement
instances, a mempool with Nagle-style proposal rate control, the ``V``
observation arrays that feed inter-node linking, and an in-order delivery
pipeline that appends blocks to a totally ordered ledger.

What differs between the protocols is *when* blocks are downloaded relative
to voting, and when the next epoch may begin:

* **DispersedLedger** (:class:`repro.core.node.DispersedLedgerNode`) votes as
  soon as a dispersal completes, starts the next epoch as soon as agreement
  finishes, and retrieves committed blocks lazily and asynchronously.
* **HoneyBadger** (:class:`repro.honeybadger.node.HoneyBadgerNode`) downloads
  a block before voting for it and only starts the next epoch after the
  current epoch's blocks are all downloaded and delivered (lockstep).

Subclasses override the three hooks ``_on_vid_complete``,
``_on_epoch_agreement_done`` and ``_on_epoch_delivered`` to express those
differences; everything else lives here.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable

from repro.ba.coin import CommonCoin
from repro.ba.mmr import BinaryAgreement
from repro.ba.messages import BA_MESSAGE_TYPES
from repro.common.ids import BAInstanceId, VIDInstanceId
from repro.common.params import ProtocolParams
from repro.common.snapshot import SnapshotState
from repro.core.block import Block, Transaction
from repro.core.config import REAL_PLANE, NodeConfig
from repro.core.epoch import EpochState
from repro.core.ledger import DeliveredBlock, Ledger
from repro.core.linking import (
    INFINITE_OBSERVATION,
    compute_linking_targets,
    linked_slots,
)
from repro.core.mempool import ColumnarMempool, create_mempool
from repro.core.txbatch import TxBatch
from repro.sim.context import NodeContext
from repro.sim.messages import Message
from repro.vid.avid_m import AvidMInstance, RetrievalResult
from repro.vid.codec import RealCodec, VirtualCodec
from repro.vid.messages import VID_MESSAGE_TYPES, ReturnChunkMsg

#: First epoch number.  The paper indexes epochs from 1 (Fig. 17 initialises
#: the observation arrays with 0 meaning "no epoch completed yet").
FIRST_EPOCH = 1

#: Exact-type routing table for :meth:`BFTNodeBase.on_message`.
_ROUTE_VID = 0
_ROUTE_BA = 1
_MESSAGE_ROUTES: dict[type, int] = {
    **{cls: _ROUTE_VID for cls in VID_MESSAGE_TYPES},
    **{cls: _ROUTE_BA for cls in BA_MESSAGE_TYPES},
}


class BFTNodeBase(SnapshotState):
    """Shared implementation of one BFT node (DispersedLedger or HoneyBadger).

    Args:
        node_id: this node's index in ``0..N-1``.
        params: the ``(N, f)`` protocol parameters.
        ctx: the node's network/timer handle.
        config: behavioural knobs (data plane, Nagle thresholds, linking...).
        coin: common coin shared by every binary-agreement instance.
        max_epochs: stop proposing new blocks after this many epochs (used by
            tests and bounded experiments); ``None`` means run forever.
        on_deliver: optional callback invoked as ``on_deliver(node_id, entry)``
            for every block appended to the ledger.
        on_propose: optional callback invoked as ``on_propose(node_id, block,
            now)`` whenever this node disperses a new block.
    """

    #: ``_automata`` maps instance ids to bound ``handle`` methods of the
    #: VID/BA automata; those pickle as (instance, name) references so the
    #: restored dispatch table points at the restored automata.  Node-class
    #: adversary subclasses that add state extend this tuple.
    _SNAPSHOT_FIELDS = (
        "node_id",
        "params",
        "ctx",
        "config",
        "coin",
        "max_epochs",
        "on_deliver",
        "on_propose",
        "codec",
        "mempool",
        "ledger",
        "current_epoch",
        "delivered_epoch",
        "_next_tx_id",
        "_epochs",
        "_vid_instances",
        "_ba_instances",
        "_automata",
        "_completed_vids",
        "_v_prefix",
        "_epoch_start_pending",
        "_epoch_timer",
        "started",
        "span_probe",
    )

    def __init__(
        self,
        node_id: int,
        params: ProtocolParams,
        ctx: NodeContext,
        config: NodeConfig | None = None,
        coin: CommonCoin | None = None,
        max_epochs: int | None = None,
        on_deliver: Callable[[int, DeliveredBlock], None] | None = None,
        on_propose: Callable[[int, Block, float], None] | None = None,
    ):
        self.node_id = node_id
        self.params = params
        self.ctx = ctx
        self.config = config or NodeConfig()
        self.coin = coin or CommonCoin()
        self.max_epochs = max_epochs
        self.on_deliver = on_deliver
        self.on_propose = on_propose

        if self.config.data_plane == REAL_PLANE:
            self.codec: Any = RealCodec(params)
        else:
            self.codec = VirtualCodec(params)

        self.mempool = create_mempool(
            self.config.mempool,
            nagle_delay=self.config.nagle_delay,
            nagle_size=self.config.nagle_size,
        )
        self.ledger = Ledger()

        #: Dispersal frontier: the highest epoch whose dispersal this node has
        #: started (0 before the first epoch).
        self.current_epoch = 0
        #: Delivery frontier: the highest epoch that is fully delivered.
        self.delivered_epoch = 0
        #: Transaction id counter for locally submitted transactions.
        self._next_tx_id = 0

        self._epochs: dict[int, EpochState] = {}
        self._vid_instances: dict[VIDInstanceId, AvidMInstance] = {}
        self._ba_instances: dict[BAInstanceId, BinaryAgreement] = {}
        #: Union of the two dicts above, keyed by instance id (the id types
        #: never compare equal across protocols), mapping to the automaton's
        #: *bound* ``handle`` method.  ``on_message`` resolves and dispatches
        #: with one dict probe and one call on this map.
        self._automata: dict[Any, Callable[[int, Message], None]] = {}

        # Observation state for inter-node linking (S4.3): which VID instances
        # of each proposer have completed, and the contiguous prefix thereof.
        self._completed_vids: list[set[int]] = [set() for _ in range(params.n)]
        self._v_prefix: list[int] = [0] * params.n

        self._epoch_start_pending = False
        #: The armed Nagle timer, as ``(epoch, cancellable handle or None)``.
        self._epoch_timer: tuple[int, Any] | None = None
        self.started = False
        #: Optional :class:`repro.trace.spans.SpanRecorder`, installed by its
        #: ``attach``; copied onto VID/BA automata as they are created.
        self.span_probe = None

    # ------------------------------------------------------------------
    # Process interface
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the first epoch."""
        if self.started:
            return
        self.started = True
        self._schedule_epoch_start(FIRST_EPOCH)

    def on_message(self, src: int, msg: Message) -> None:
        """Route one incoming protocol message to the owning instance."""
        # Exact-type dispatch first: two tuple-isinstance checks per message
        # dominate the routing cost at large N, and protocol messages are
        # concrete dataclasses.  Subclassed messages fall through to the
        # isinstance path below.
        # Fast path: the target automaton already exists — one dict probe on
        # the combined map (instance id types are disjoint across protocols,
        # so a VID id can never resolve to a BA automaton or vice versa).
        # EAFP: every protocol message carries ``instance`` and misses only
        # happen on the first message of an instance, so the exception path
        # is orders of magnitude rarer than the hit path it speeds up.
        try:
            handle = self._automata[msg.instance]
        except (AttributeError, KeyError):
            pass
        else:
            handle(src, msg)
            return
        kind = _MESSAGE_ROUTES.get(type(msg))
        if kind == _ROUTE_VID:
            self._get_vid(msg.instance).handle(src, msg)
        elif kind == _ROUTE_BA:
            self._get_ba(msg.instance).handle(src, msg)
        elif isinstance(msg, VID_MESSAGE_TYPES):
            self._get_vid(msg.instance).handle(src, msg)
        elif isinstance(msg, BA_MESSAGE_TYPES):
            self._get_ba(msg.instance).handle(src, msg)

    #: Scope advertised to the network: :meth:`declines_transfer` can only
    #: ever return True for these message types, so the delivery hot paths
    #: skip the Python call for everything else.  A subclass overriding
    #: ``declines_transfer`` must restate its own scope (the network ignores
    #: an inherited ``DECLINE_TYPES`` in that case and always consults the
    #: hook).
    DECLINE_TYPES = (ReturnChunkMsg,)

    def declines_transfer(self, msg: Message) -> bool:
        """Receiver-side cancellation hook for the bandwidth-accurate network.

        Retrieval chunks for a block this node has already decoded are
        declined so they are not charged against its download bandwidth —
        the receiver-driven half of the "stop sending more chunks once the
        block is decodable" optimisation (S6.3).
        """
        if isinstance(msg, ReturnChunkMsg):
            vid = self._vid_instances.get(msg.instance)
            return vid is not None and vid.retrieval_complete
        return False

    # ------------------------------------------------------------------
    # Client-facing API
    # ------------------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> None:
        """Accept a client transaction into this node's input queue."""
        self.mempool.submit(tx)

    def submit_batch(self, batch: TxBatch) -> None:
        """Accept a columnar batch of client transactions.

        On a columnar mempool this is the zero-copy fast path; on the object
        mempool the batch is materialised into :class:`Transaction` objects,
        so either mempool kind accepts either submission style.
        """
        if isinstance(self.mempool, ColumnarMempool):
            self.mempool.submit_batch(batch)
        else:
            self.mempool.submit_many(batch.as_transactions())

    def submit_payload(self, data: bytes, now: float | None = None) -> Transaction:
        """Convenience wrapper: wrap raw bytes into a transaction and submit it."""
        timestamp = self.ctx.now if now is None else now
        tx = Transaction(
            tx_id=self._make_tx_id(),
            origin=self.node_id,
            created_at=timestamp,
            size=len(data),
            data=data,
        )
        self.submit_transaction(tx)
        return tx

    def _make_tx_id(self) -> int:
        # Globally unique without coordination: interleave node id in the low bits.
        tx_id = self._next_tx_id * self.params.n + self.node_id
        self._next_tx_id += 1
        return tx_id

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------

    def _get_vid(self, instance: VIDInstanceId) -> AvidMInstance:
        vid = self._vid_instances.get(instance)
        if vid is None:
            vid = AvidMInstance(
                params=self.params,
                instance=instance,
                ctx=self.ctx,
                codec=self.codec,
                on_complete=self._handle_vid_complete,
                allowed_disperser=instance.proposer,
                retrieval_rank=float(instance.epoch),
            )
            vid.probe = self.span_probe
            self._vid_instances[instance] = vid
            self._automata[instance] = vid.handle
        return vid

    def _get_ba(self, instance: BAInstanceId) -> BinaryAgreement:
        ba = self._ba_instances.get(instance)
        if ba is None:
            ba = BinaryAgreement(
                params=self.params,
                instance=instance,
                ctx=self.ctx,
                coin=self.coin,
                on_output=self._handle_ba_output,
            )
            ba.probe = self.span_probe
            self._ba_instances[instance] = ba
            self._automata[instance] = ba.handle
        return ba

    def _epoch_state(self, epoch: int) -> EpochState:
        state = self._epochs.get(epoch)
        if state is None:
            state = EpochState(epoch=epoch)
            self._epochs[epoch] = state
        return state

    def epoch_state(self, epoch: int) -> EpochState | None:
        """Read-only access to an epoch's bookkeeping (used by tests/metrics)."""
        return self._epochs.get(epoch)

    # ------------------------------------------------------------------
    # Block proposal (Nagle rate control, S5)
    # ------------------------------------------------------------------

    def _schedule_epoch_start(self, epoch: int) -> None:
        """Start dispersal for ``epoch`` as soon as the Nagle rule allows it."""
        if self.max_epochs is not None and epoch > self.max_epochs:
            return
        state = self._epoch_state(epoch)
        if state.dispersal_started:
            return
        now = self.ctx.now
        if self.mempool.ready_to_propose(now):
            self._begin_dispersal(epoch)
            return
        if self._epoch_start_pending:
            return
        self._epoch_start_pending = True
        delay = self.mempool.time_until_ready(now)
        fire = partial(self._epoch_timer_fired, epoch)
        self._epoch_timer = (epoch, self.ctx.set_timer(delay, fire))

    def _epoch_timer_fired(self, epoch: int) -> None:
        """The armed Nagle timer elapsed: re-check whether ``epoch`` may start."""
        self._epoch_timer = None
        self._epoch_start_pending = False
        self._schedule_epoch_start(epoch)

    def _begin_dispersal(self, epoch: int) -> None:
        """Form this epoch's block and disperse it through our VID slot."""
        state = self._epoch_state(epoch)
        if state.dispersal_started:
            return
        state.dispersal_started = True
        timer = self._epoch_timer
        if timer is not None and timer[0] == epoch:
            # A Nagle timer armed for this epoch can only re-check state that
            # is now settled; cancel it so the dead entry leaves the queue.
            if timer[1] is not None:
                timer[1].cancel()
            self._epoch_timer = None
            self._epoch_start_pending = False
        self.current_epoch = max(self.current_epoch, epoch)
        block = self._make_block(epoch)
        state.own_block = block
        state.proposed_at = self.ctx.now
        if self.span_probe is not None:
            self.span_probe.on_dispersal_start(self.node_id, epoch, self.ctx.now)
        self._disperse_block(epoch, block)
        if self.on_propose is not None:
            self.on_propose(self.node_id, block, self.ctx.now)

    def _disperse_block(self, epoch: int, block: Block) -> None:
        """Hand this epoch's block to our VID slot.

        Byzantine node classes override just this step (e.g. the equivocating
        disperser sends inconsistent chunks instead) while inheriting the
        Nagle bookkeeping of :meth:`_begin_dispersal` unchanged.
        """
        vid = self._get_vid(VIDInstanceId(epoch=epoch, proposer=self.node_id))
        vid.disperse(self._payload_for(block))

    def _make_block(self, epoch: int) -> Block:
        """Assemble the block to propose for ``epoch``."""
        now = self.ctx.now
        v_array = tuple(self._v_prefix) if self.config.linking else ()
        if not self._may_include_transactions(epoch):
            # DL-Coupled (S4.5): participate with an empty block while lagging.
            self.mempool.mark_proposal(now)
            return Block(proposer=self.node_id, epoch=epoch, v_array=v_array)
        taken = self.mempool.take_batch(self.config.max_block_size, now)
        if isinstance(taken, TxBatch):
            batch = taken if len(taken) else None
            return Block(
                proposer=self.node_id, epoch=epoch, v_array=v_array, tx_batch=batch
            )
        return Block(
            proposer=self.node_id,
            epoch=epoch,
            transactions=tuple(taken),
            v_array=v_array,
        )

    def _may_include_transactions(self, epoch: int) -> bool:
        """Whether this epoch's block may carry client transactions."""
        if not self.config.retrieve_blocks:
            # Low-bandwidth mode (S1): the node cannot validate state, so it
            # only ever contributes empty blocks to the agreement.
            return False
        if not self.config.coupled:
            return True
        # DL-Coupled: only propose transactions when retrieval/delivery is at
        # most ``coupled_lag`` epochs behind the epoch being proposed.
        return epoch - self.delivered_epoch <= self.config.coupled_lag

    # ------------------------------------------------------------------
    # Payload plumbing (virtual vs real data plane)
    # ------------------------------------------------------------------

    def _payload_for(self, block: Block) -> Any:
        if self.config.data_plane == REAL_PLANE:
            return block.serialize()
        return block

    def _block_from_payload(self, payload: Any) -> Block | None:
        """Turn a retrieval result back into a block (None if ill-formatted)."""
        if isinstance(payload, Block):
            return payload
        if isinstance(payload, (bytes, bytearray)):
            try:
                return Block.deserialize(bytes(payload))
            except ValueError:
                return None
        return None

    # ------------------------------------------------------------------
    # VID completion and the observation arrays
    # ------------------------------------------------------------------

    def _handle_vid_complete(self, instance: VIDInstanceId) -> None:
        proposer = instance.proposer
        self._completed_vids[proposer].add(instance.epoch)
        prefix = self._v_prefix[proposer]
        while prefix + 1 in self._completed_vids[proposer]:
            prefix += 1
        self._v_prefix[proposer] = prefix
        if self.span_probe is not None and proposer == self.node_id:
            self.span_probe.on_dispersal_complete(
                self.node_id, instance.epoch, self.ctx.now
            )
        self._on_vid_complete(instance)

    def observation_array(self) -> tuple[int, ...]:
        """This node's current ``V`` array (largest completed epoch prefix per node)."""
        return tuple(self._v_prefix)

    # ------------------------------------------------------------------
    # Binary agreement plumbing
    # ------------------------------------------------------------------

    def _input_ba(self, epoch: int, slot: int, value: int) -> None:
        ba = self._get_ba(BAInstanceId(epoch=epoch, slot=slot))
        if not ba.has_input:
            ba.input(value)

    def _handle_ba_output(self, instance: BAInstanceId, value: int) -> None:
        state = self._epoch_state(instance.epoch)
        state.ba_outputs[instance.slot] = value
        if (
            value == 1
            and not state.zero_votes_cast
            and state.num_positive_outputs >= self.params.quorum
        ):
            # N - f instances output 1: give up on the rest (Fig. 6 phase 1).
            state.zero_votes_cast = True
            for slot in self.params.node_indices():
                self._input_ba(instance.epoch, slot, 0)
        if len(state.ba_outputs) == self.params.n and state.committed is None:
            state.committed = tuple(
                sorted(slot for slot, out in state.ba_outputs.items() if out == 1)
            )
            self._on_epoch_agreement_done(instance.epoch, state)

    # ------------------------------------------------------------------
    # Retrieval of committed blocks
    # ------------------------------------------------------------------

    def _start_committed_retrieval(self, epoch: int) -> None:
        """Invoke ``Retrieve`` on every BA-committed block of ``epoch``."""
        state = self._epoch_state(epoch)
        if state.retrieval_started or state.committed is None:
            return
        state.retrieval_started = True
        if not state.committed:
            self._after_retrieval_progress(epoch)
            return
        for slot in state.committed:
            self._retrieve_slot(epoch, slot)

    def _retrieve_slot(self, epoch: int, slot: int) -> None:
        state = self._epoch_state(epoch)
        if slot in state.retrieved:
            self._after_retrieval_progress(epoch)
            return
        if self.span_probe is not None:
            self.span_probe.on_retrieval_start(self.node_id, epoch, slot, self.ctx.now)
        instance = VIDInstanceId(epoch=epoch, proposer=slot)
        self._get_vid(instance).retrieve(partial(self._slot_retrieved, epoch, slot))

    def _slot_retrieved(self, epoch: int, slot: int, result: RetrievalResult) -> None:
        if self.span_probe is not None:
            self.span_probe.on_retrieval_done(self.node_id, epoch, slot, self.ctx.now)
        block = self._block_from_payload(result.payload) if result.ok else None
        self._epoch_state(epoch).retrieved[slot] = block
        self._after_retrieval_progress(epoch)

    def _after_retrieval_progress(self, epoch: int) -> None:
        """Hook called whenever a committed-block retrieval for ``epoch`` finishes."""
        self._try_deliver()

    # ------------------------------------------------------------------
    # Inter-node linking retrieval
    # ------------------------------------------------------------------

    def _start_linking(self, epoch: int) -> None:
        """Compute the linking targets for ``epoch`` and retrieve the linked blocks."""
        state = self._epoch_state(epoch)
        if state.linking_started:
            return
        state.linking_started = True
        if not self.config.linking or not state.committed:
            state.linked_slots = ()
            return
        observations: dict[int, list[float]] = {}
        for slot in state.committed:
            block = state.retrieved.get(slot)
            if block is None or len(block.v_array) != self.params.n:
                observations[slot] = [INFINITE_OBSERVATION] * self.params.n
            else:
                observations[slot] = list(block.v_array)
        targets = compute_linking_targets(self.params, observations)
        committed_slots = [(epoch, slot) for slot in state.committed]
        pending = linked_slots(targets, self.ledger.sequence(), committed_slots)
        state.linked_slots = tuple(pending)
        for linked_epoch, proposer in pending:
            self._retrieve_linked_slot(epoch, linked_epoch, proposer)

    def _retrieve_linked_slot(self, epoch: int, linked_epoch: int, proposer: int) -> None:
        key = (linked_epoch, proposer)
        instance = VIDInstanceId(epoch=linked_epoch, proposer=proposer)
        self._get_vid(instance).retrieve(partial(self._linked_slot_retrieved, epoch, key))

    def _linked_slot_retrieved(
        self, epoch: int, key: tuple[int, int], result: RetrievalResult
    ) -> None:
        block = self._block_from_payload(result.payload) if result.ok else None
        self._epoch_state(epoch).linked_retrieved[key] = block
        self._try_deliver()

    # ------------------------------------------------------------------
    # In-order delivery pipeline
    # ------------------------------------------------------------------

    @property
    def agreed_epoch(self) -> int:
        """Largest epoch ``e`` such that agreement finished for every epoch ``<= e``.

        Low-bandwidth (non-retrieving) nodes track the log of commitments
        through this frontier even though they never deliver blocks locally.
        """
        epoch = 0
        while True:
            state = self._epochs.get(epoch + 1)
            if state is None or not state.agreement_done:
                return epoch
            epoch += 1

    def _try_deliver(self) -> None:
        """Deliver every epoch that is ready, strictly in epoch order."""
        if not self.config.retrieve_blocks:
            return
        while True:
            epoch = self.delivered_epoch + 1
            state = self._epochs.get(epoch)
            if state is None or not state.agreement_done or not state.retrieval_done:
                return
            if not state.ba_blocks_delivered:
                self._deliver_ba_blocks(epoch, state)
                self._start_linking(epoch)
            if not state.linking_done:
                return
            self._deliver_linked_blocks(epoch, state)
            state.fully_delivered = True
            self.delivered_epoch = epoch
            if self.span_probe is not None:
                self.span_probe.on_commit(self.node_id, epoch, self.ctx.now)
            self._on_epoch_delivered(epoch, state)

    def _deliver_ba_blocks(self, epoch: int, state: EpochState) -> None:
        """Deliver this epoch's BA-committed blocks, sorted by proposer index."""
        assert state.committed is not None
        for slot in state.committed:
            block = state.retrieved.get(slot)
            self._deliver_block(epoch, slot, block, via_linking=False, in_epoch=epoch)
        state.ba_blocks_delivered = True
        if (
            not self.config.linking
            and state.own_block is not None
            and self.node_id not in state.committed
            and not state.own_block.is_empty
        ):
            # Without inter-node linking (plain HoneyBadger), a dropped block's
            # transactions go back to the head of the queue to be re-proposed
            # in the next epoch (S4.2).
            own = state.own_block
            if own.tx_batch is not None:
                self.mempool.requeue_front(own.tx_batch)
            else:
                self.mempool.requeue_front(own.transactions)

    def _deliver_linked_blocks(self, epoch: int, state: EpochState) -> None:
        for linked_epoch, proposer in state.linked_slots:
            if self.ledger.has_delivered(linked_epoch, proposer):
                continue
            block = state.linked_retrieved.get((linked_epoch, proposer))
            self._deliver_block(
                linked_epoch, proposer, block, via_linking=True, in_epoch=epoch
            )

    def _deliver_block(
        self,
        epoch: int,
        proposer: int,
        block: Block | None,
        via_linking: bool,
        in_epoch: int,
    ) -> None:
        if self.ledger.has_delivered(epoch, proposer):
            return
        if block is None:
            # BAD_UPLOADER or ill-formatted: all correct nodes agree on this
            # outcome (VID Correctness), so recording an empty placeholder
            # keeps the ledgers identical across nodes.
            block = Block(proposer=proposer, epoch=epoch, label="BAD_UPLOADER")
        entry = DeliveredBlock(
            epoch=epoch,
            proposer=proposer,
            block=block,
            delivered_at=self.ctx.now,
            via_linking=via_linking,
            delivered_in_epoch=in_epoch,
        )
        self.ledger.append(entry)
        if self.on_deliver is not None:
            self.on_deliver(self.node_id, entry)

    # ------------------------------------------------------------------
    # Hooks for protocol-specific behaviour
    # ------------------------------------------------------------------

    def _on_vid_complete(self, instance: VIDInstanceId) -> None:
        """Called whenever any VID instance completes at this node."""
        raise NotImplementedError

    def _on_epoch_agreement_done(self, epoch: int, state: EpochState) -> None:
        """Called once all N BA instances of ``epoch`` have produced output."""
        raise NotImplementedError

    def _on_epoch_delivered(self, epoch: int, state: EpochState) -> None:
        """Called once ``epoch`` (BA blocks plus linked blocks) is delivered."""
        raise NotImplementedError
