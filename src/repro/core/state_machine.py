"""A replicated state machine driven by the delivered transaction log.

BFT state machine replication (S2.1) delivers a consistent, totally ordered
log of transactions to every correct node; each node applies the log to its
local state machine replica.  This module provides a small key-value store
whose operations are encoded in transaction payloads, used by the examples
and by the end-to-end tests to check that replicas converge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.block import Transaction


def encode_operation(op: str, key: str, value: str | int | None = None) -> bytes:
    """Serialise one key-value operation into a transaction payload.

    Supported operations: ``"set"``, ``"delete"``, and ``"add"`` (numeric
    increment).  Unknown operations are ignored by the state machine, which
    models the paper's "spam"/invalid transactions (S4.5): they occupy
    bandwidth but do not corrupt the replicated state.
    """
    return json.dumps({"op": op, "key": key, "value": value}).encode()


def decode_operation(payload: bytes) -> dict | None:
    """Parse a transaction payload; returns None for malformed payloads."""
    try:
        decoded = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(decoded, dict) or "op" not in decoded or "key" not in decoded:
        return None
    return decoded


@dataclass
class KeyValueStateMachine:
    """A deterministic key-value store replica."""

    state: dict[str, str | int] = field(default_factory=dict)
    applied_count: int = 0
    rejected_count: int = 0

    def apply(self, tx: Transaction) -> bool:
        """Apply one transaction; returns True if it changed (or validly read) state."""
        operation = decode_operation(tx.data) if tx.data else None
        if operation is None:
            self.rejected_count += 1
            return False
        op = operation["op"]
        key = operation["key"]
        value = operation.get("value")
        if op == "set":
            self.state[key] = value
        elif op == "delete":
            self.state.pop(key, None)
        elif op == "add":
            if not isinstance(value, (int, float)):
                self.rejected_count += 1
                return False
            current = self.state.get(key, 0)
            if not isinstance(current, (int, float)):
                self.rejected_count += 1
                return False
            self.state[key] = current + value
        else:
            self.rejected_count += 1
            return False
        self.applied_count += 1
        return True

    def apply_block(self, transactions: tuple[Transaction, ...]) -> int:
        """Apply every transaction of a delivered block; returns the applied count."""
        applied = 0
        for tx in transactions:
            if self.apply(tx):
                applied += 1
        return applied

    def snapshot(self) -> dict[str, str | int]:
        """A copy of the current state (replicas of correct nodes must agree)."""
        return dict(self.state)
