"""Per-epoch bookkeeping (the paper's ``DLEpoch`` automaton, S5).

One :class:`EpochState` tracks everything a node knows about one epoch:
which binary-agreement instances have produced output, the committed set
``S``, which committed blocks have been retrieved, and which additional
blocks inter-node linking selected.  The node classes in
:mod:`repro.core.node_base` drive these states; keeping them in one plain
data object makes the protocol logic easy to inspect and test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.snapshot import SnapshotState
from repro.core.block import Block


@dataclass
class EpochState(SnapshotState):
    """Everything one node tracks about one epoch."""

    _SNAPSHOT_FIELDS = (
        "epoch",
        "own_block",
        "proposed_at",
        "dispersal_started",
        "ba_outputs",
        "zero_votes_cast",
        "committed",
        "retrieval_started",
        "retrieved",
        "ba_blocks_delivered",
        "linked_slots",
        "linked_retrieved",
        "linking_started",
        "fully_delivered",
    )

    epoch: int

    #: The block this node proposed for the epoch (None before proposing, or
    #: if the node is not proposing — e.g. a crashed/silent node).
    own_block: Block | None = None
    #: Virtual time at which this node began dispersing its own block.
    proposed_at: float | None = None
    #: True once this node has started its dispersal for the epoch.
    dispersal_started: bool = False

    #: Binary agreement outputs observed so far, keyed by proposer slot.
    ba_outputs: dict[int, int] = field(default_factory=dict)
    #: True once Input(0) has been sent to all BAs without an input (after
    #: N - f instances produced Output(1)).
    zero_votes_cast: bool = False
    #: The committed set ``S`` — populated once every BA instance has output.
    committed: tuple[int, ...] | None = None

    #: True once retrieval of the BA-committed blocks has been kicked off.
    retrieval_started: bool = False
    #: Retrieved committed blocks, keyed by proposer slot.  ``None`` records a
    #: slot whose retrieval returned BAD_UPLOADER or an ill-formatted block.
    retrieved: dict[int, Block | None] = field(default_factory=dict)

    #: True once the BA-committed blocks of this epoch have been delivered.
    ba_blocks_delivered: bool = False
    #: Slots selected by inter-node linking, in delivery order.
    linked_slots: tuple[tuple[int, int], ...] = ()
    #: Retrieved linked blocks keyed by (epoch, proposer).
    linked_retrieved: dict[tuple[int, int], Block | None] = field(default_factory=dict)
    #: True once linked-slot retrieval has been kicked off.
    linking_started: bool = False
    #: True once the whole epoch (BA blocks + linked blocks) is delivered.
    fully_delivered: bool = False

    @property
    def agreement_done(self) -> bool:
        """True once the committed set ``S`` is known (all BAs have output)."""
        return self.committed is not None

    @property
    def num_positive_outputs(self) -> int:
        """Number of BA instances that have output 1 so far."""
        return sum(1 for value in self.ba_outputs.values() if value == 1)

    @property
    def retrieval_done(self) -> bool:
        """True once every BA-committed block has been retrieved (or marked bad)."""
        if self.committed is None:
            return False
        return all(slot in self.retrieved for slot in self.committed)

    @property
    def linking_done(self) -> bool:
        """True once every linked slot has been retrieved (or marked bad)."""
        return all(slot in self.linked_retrieved for slot in self.linked_slots)
