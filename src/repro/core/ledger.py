"""The totally ordered log of delivered blocks.

Every correct node ends up with the same ledger (the Agreement and Total
Order properties of S2.1).  The ledger records, for each delivered block,
whether it was committed directly by binary agreement or later through
inter-node linking, plus the virtual time of delivery — which is what the
throughput and latency metrics are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.snapshot import SnapshotState
from repro.core.block import Block


@dataclass(frozen=True)
class DeliveredBlock:
    """One entry of the ledger."""

    epoch: int
    proposer: int
    block: Block
    delivered_at: float
    #: True when the block entered the ledger through inter-node linking
    #: rather than through its own epoch's binary agreement (S4.3).
    via_linking: bool = False
    #: Epoch during whose retrieval phase the block was delivered (equals
    #: ``epoch`` for BA-committed blocks, and a later epoch for linked ones).
    delivered_in_epoch: int = 0

    @property
    def payload_bytes(self) -> int:
        """Client transaction bytes carried by this block."""
        return self.block.payload_bytes

    @property
    def num_transactions(self) -> int:
        return self.block.num_transactions


@dataclass
class Ledger(SnapshotState):
    """Append-only log of delivered blocks for one node."""

    _SNAPSHOT_FIELDS = ("entries", "_delivered_slots")

    entries: list[DeliveredBlock] = field(default_factory=list)
    _delivered_slots: set[tuple[int, int]] = field(default_factory=set)

    def append(self, entry: DeliveredBlock) -> None:
        """Append one delivered block; duplicate (epoch, proposer) slots are rejected."""
        slot = (entry.epoch, entry.proposer)
        if slot in self._delivered_slots:
            raise ValueError(f"block for slot {slot} delivered twice")
        self._delivered_slots.add(slot)
        self.entries.append(entry)

    def has_delivered(self, epoch: int, proposer: int) -> bool:
        """True if the block proposed by ``proposer`` in ``epoch`` is in the log."""
        return (epoch, proposer) in self._delivered_slots

    @property
    def num_blocks(self) -> int:
        return len(self.entries)

    @property
    def num_transactions(self) -> int:
        return sum(entry.num_transactions for entry in self.entries)

    @property
    def total_payload_bytes(self) -> int:
        """Total client transaction bytes confirmed by this node."""
        return sum(entry.payload_bytes for entry in self.entries)

    def sequence(self) -> list[tuple[int, int]]:
        """The delivery order as a list of ``(epoch, proposer)`` slots.

        Two correct nodes must produce identical sequences (Theorem D.7);
        the integration tests compare these directly.
        """
        return [(entry.epoch, entry.proposer) for entry in self.entries]

    def digest_sequence(self) -> list[bytes]:
        """The delivery order as block digests (stronger equality check)."""
        return [entry.block.digest() for entry in self.entries]

    def transactions(self) -> list:
        """All delivered transactions in delivery order.

        Columnar blocks are materialised into :class:`Transaction` objects;
        callers that only need counts/bytes at scale should use
        :attr:`num_transactions` / :attr:`total_payload_bytes` instead.
        """
        txs = []
        for entry in self.entries:
            txs.extend(entry.block.all_transactions())
        return txs
