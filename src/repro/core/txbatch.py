"""Struct-of-arrays transaction batches: the columnar data plane's currency.

The object data plane moves one :class:`~repro.core.block.Transaction` per
client payment — fine for protocol tests, ruinous at the ROADMAP's
million-user scale, where allocating, queueing and walking millions of
Python objects dominates every profile.  A :class:`TxBatch` holds the same
information as a run of transactions from **one** origin node, but as numpy
columns (ids, creation times, sizes), so generators emit one batch per
scheduling window, the mempool slices batches as index ranges, blocks carry
a batch instead of a transaction tuple, and the metrics collector computes
latency percentiles straight from the columns.

Batches are **immutable once built** (the arrays are flagged read-only) and
compare by identity, so they can ride inside frozen dataclasses such as
:class:`~repro.core.block.Block` without breaking ``__eq__``.  Slicing is
O(1) — numpy views, no copies — which is what makes the columnar mempool's
``take_batch`` cheap.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.common.snapshot import SnapshotState

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.block import Transaction

#: Dtype matching the per-transaction digest material ``struct.pack(">QI")``
#: (tx id, size) of :meth:`repro.core.block.Block.digest`, so a columnar
#: block hashes to exactly the same bytes as its object-path twin.
_DIGEST_DTYPE = np.dtype([("tx_id", ">u8"), ("size", ">u4")])

#: Dtype matching the wire header ``struct.pack(">QIId")`` (id, origin, size,
#: created_at) used by the real data plane's block serialisation.
_HEADER_DTYPE = np.dtype([("tx_id", ">u8"), ("origin", ">u4"), ("size", ">u4"), ("created_at", ">f8")])


class TxBatch(SnapshotState):
    """A read-only columnar run of transactions from a single origin node.

    Attributes:
        origin: the node that generated every transaction in the batch.
        tx_ids: ``uint64`` column of globally unique transaction ids.
        created_at: ``float64`` column of submission (arrival) times.
        sizes: ``int64`` column of wire sizes in bytes.
    """

    __slots__ = ("origin", "tx_ids", "created_at", "sizes", "_total_bytes", "_cumsum")
    _SNAPSHOT_FIELDS = ("origin", "tx_ids", "created_at", "sizes", "_total_bytes", "_cumsum")

    def __init__(
        self,
        origin: int,
        tx_ids: np.ndarray,
        created_at: np.ndarray,
        sizes: np.ndarray,
        total_bytes: int | None = None,
    ):
        if not (len(tx_ids) == len(created_at) == len(sizes)):
            raise ValueError(
                f"column lengths differ: {len(tx_ids)}/{len(created_at)}/{len(sizes)}"
            )
        self.origin = origin
        self.tx_ids = np.ascontiguousarray(tx_ids, dtype=np.uint64)
        self.created_at = np.ascontiguousarray(created_at, dtype=np.float64)
        self.sizes = np.ascontiguousarray(sizes, dtype=np.int64)
        for column in (self.tx_ids, self.created_at, self.sizes):
            column.flags.writeable = False
        self._total_bytes = (
            int(self.sizes.sum()) if total_bytes is None else int(total_bytes)
        )
        self._cumsum: np.ndarray | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        origin: int,
        tx_ids: np.ndarray,
        created_at: np.ndarray,
        tx_size: int,
    ) -> "TxBatch":
        """A batch whose transactions all have the same wire size."""
        sizes = np.full(len(tx_ids), tx_size, dtype=np.int64)
        return cls(origin, tx_ids, created_at, sizes, total_bytes=tx_size * len(tx_ids))

    @classmethod
    def from_transactions(cls, txs: Sequence["Transaction"]) -> "TxBatch":
        """Columnarise a run of object transactions (they must share an origin)."""
        if not txs:
            return cls.empty(0)
        origins = {tx.origin for tx in txs}
        if len(origins) != 1:
            raise ValueError(f"batch must have a single origin, got {sorted(origins)}")
        return cls(
            origin=txs[0].origin,
            tx_ids=np.array([tx.tx_id for tx in txs], dtype=np.uint64),
            created_at=np.array([tx.created_at for tx in txs], dtype=np.float64),
            sizes=np.array([tx.size for tx in txs], dtype=np.int64),
        )

    @classmethod
    def empty(cls, origin: int) -> "TxBatch":
        return cls(
            origin,
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            total_bytes=0,
        )

    @classmethod
    def concat(cls, batches: Iterable["TxBatch"]) -> "TxBatch":
        """Concatenate same-origin batches into one (used by ``take_batch``)."""
        parts = [batch for batch in batches if len(batch)]
        if not parts:
            return cls.empty(0)
        if len(parts) == 1:
            return parts[0]
        origins = {batch.origin for batch in parts}
        if len(origins) != 1:
            raise ValueError(f"cannot concat batches from origins {sorted(origins)}")
        return cls(
            parts[0].origin,
            np.concatenate([batch.tx_ids for batch in parts]),
            np.concatenate([batch.created_at for batch in parts]),
            np.concatenate([batch.sizes for batch in parts]),
            total_bytes=sum(batch.total_bytes for batch in parts),
        )

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tx_ids)

    @property
    def count(self) -> int:
        """Number of transactions in the batch."""
        return len(self.tx_ids)

    @property
    def total_bytes(self) -> int:
        """Total wire bytes of every transaction in the batch."""
        return self._total_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TxBatch(origin={self.origin}, count={self.count}, bytes={self.total_bytes})"

    def size_cumsum(self) -> np.ndarray:
        """Cached inclusive prefix sums of ``sizes`` (drives byte-budget cuts)."""
        if self._cumsum is None:
            self._cumsum = np.cumsum(self.sizes)
        return self._cumsum

    # -- slicing -----------------------------------------------------------

    def slice(self, start: int, stop: int) -> "TxBatch":
        """The ``[start, stop)`` index range as a zero-copy view batch."""
        if start == 0 and stop >= len(self):
            return self
        cumsum = self.size_cumsum()
        total = int(cumsum[stop - 1] if stop > 0 else 0) - int(
            cumsum[start - 1] if start > 0 else 0
        )
        return TxBatch(
            self.origin,
            self.tx_ids[start:stop],
            self.created_at[start:stop],
            self.sizes[start:stop],
            total_bytes=total,
        )

    # -- interop with the object plane ------------------------------------

    def as_transactions(self) -> list["Transaction"]:
        """Materialise the batch as object transactions (tests, real plane)."""
        from repro.core.block import Transaction

        return [
            Transaction(
                tx_id=int(tx_id),
                origin=self.origin,
                created_at=float(created),
                size=int(size),
            )
            for tx_id, created, size in zip(self.tx_ids, self.created_at, self.sizes)
        ]

    def digest_material(self) -> bytes:
        """Per-transaction digest bytes, identical to the object path's.

        The object path packs ``">QI"`` (tx id, size) per transaction; a
        single structured-array ``tobytes`` produces the same big-endian
        layout in one vectorised pass.
        """
        material = np.empty(len(self), dtype=_DIGEST_DTYPE)
        material["tx_id"] = self.tx_ids
        material["size"] = self.sizes
        return material.tobytes()

    def serialize_headers(self) -> bytes:
        """The concatenated ``">QIId"`` wire headers of every transaction."""
        headers = np.empty(len(self), dtype=_HEADER_DTYPE)
        headers["tx_id"] = self.tx_ids
        headers["origin"] = self.origin
        headers["size"] = self.sizes
        headers["created_at"] = self.created_at
        return headers.tobytes()


def pack_digest_material(txs: Sequence["Transaction"]) -> bytes:
    """Object-path equivalent of :meth:`TxBatch.digest_material` (reference)."""
    return b"".join(struct.pack(">QI", tx.tx_id, tx.size) for tx in txs)


__all__ = ["TxBatch", "pack_digest_material"]
