"""DispersedLedger nodes (S4 of the paper).

A :class:`DispersedLedgerNode` decouples agreement from block downloads:

* it votes for a block (``Input(1)`` to the slot's binary agreement) as soon
  as it observes that the block's dispersal has *completed* — it never waits
  to download the block first;
* it starts the next epoch's dispersal immediately once the current epoch's
  agreement finishes (all N binary agreements have output);
* it retrieves committed blocks lazily and asynchronously, several epochs in
  parallel, with retrieval traffic marked low priority so it never slows the
  dispersal pipeline (S4.5).

:class:`DLCoupledNode` is the spam-resistant variant of S4.5: it behaves
identically except that it proposes an *empty* block whenever its delivery
frontier lags more than ``coupled_lag`` epochs behind its dispersal frontier,
so it only proposes transactions it was able to validate.
"""

from __future__ import annotations

from repro.common.ids import VIDInstanceId
from repro.core.config import NodeConfig
from repro.core.epoch import EpochState
from repro.core.node_base import BFTNodeBase


class DispersedLedgerNode(BFTNodeBase):
    """One DispersedLedger node (the paper's ``DL`` automaton)."""

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------

    def _on_vid_complete(self, instance: VIDInstanceId) -> None:
        # Fig. 6, phase 1: upon Complete of VID_j, Input(1) to BA_j (unless
        # we already provided an input to that instance).
        self._input_ba(instance.epoch, instance.proposer, 1)

    def _on_epoch_agreement_done(self, epoch: int, state: EpochState) -> None:
        # The dispersal phase of this epoch is over: the next epoch can start
        # right away, independent of how far block retrieval has progressed.
        if epoch >= self.current_epoch:
            self._schedule_epoch_start(epoch + 1)
        self._pump_retrievals()
        self._try_deliver()

    def _on_epoch_delivered(self, epoch: int, state: EpochState) -> None:
        # A retrieval window slot freed up; pull the next epoch into it.
        self._pump_retrievals()

    # ------------------------------------------------------------------
    # Lazy, windowed retrieval (S4.5: multiple epochs in parallel)
    # ------------------------------------------------------------------

    def _pump_retrievals(self) -> None:
        """Start committed-block retrieval for epochs inside the parallel window."""
        if not self.config.retrieve_blocks:
            # Low-bandwidth mode (S1): agree on the log of commitments only;
            # never spend download bandwidth on full blocks.
            return
        active = 0
        epoch = self.delivered_epoch + 1
        while active < self.config.max_parallel_retrievals:
            state = self._epochs.get(epoch)
            if state is None or not state.agreement_done:
                return
            if state.fully_delivered:
                epoch += 1
                continue
            if not state.retrieval_started:
                self._start_committed_retrieval(epoch)
            active += 1
            epoch += 1

    # ------------------------------------------------------------------
    # Introspection helpers used by experiments and examples
    # ------------------------------------------------------------------

    @property
    def retrieval_lag(self) -> int:
        """How many epochs the delivery frontier trails the dispersal frontier."""
        return max(0, self.current_epoch - self.delivered_epoch)


class DLCoupledNode(DispersedLedgerNode):
    """The DL-Coupled variant (S4.5): empty blocks while lagging on retrieval.

    The lag tolerance (``P`` in the paper's discussion of constantly-slow
    nodes) defaults to :data:`DEFAULT_COUPLED_LAG` epochs: a node keeps
    proposing transactions while its delivery frontier is within that many
    epochs of its dispersal frontier, and falls back to empty blocks beyond
    it.  ``P = 1`` would make the node as conservative as HoneyBadger.
    """

    #: Default retrieval-lag tolerance (epochs) before proposing empty blocks.
    DEFAULT_COUPLED_LAG = 4

    def __init__(self, *args, **kwargs):
        config: NodeConfig | None = kwargs.get("config")
        if config is None:
            config = NodeConfig(coupled=True, coupled_lag=self.DEFAULT_COUPLED_LAG)
        elif not config.coupled:
            config = NodeConfig(
                data_plane=config.data_plane,
                nagle_delay=config.nagle_delay,
                nagle_size=config.nagle_size,
                max_block_size=config.max_block_size,
                linking=config.linking,
                coupled=True,
                coupled_lag=max(config.coupled_lag, self.DEFAULT_COUPLED_LAG),
                max_parallel_retrievals=config.max_parallel_retrievals,
                propose_empty_when_idle=config.propose_empty_when_idle,
                retrieval_uses_priority=config.retrieval_uses_priority,
            )
        kwargs["config"] = config
        super().__init__(*args, **kwargs)
