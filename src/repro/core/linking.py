"""Inter-node linking (S4.3 of the paper).

An epoch's binary agreement commits at least ``N - f`` blocks, which means
up to ``f`` correct blocks can be left out even though their dispersal
completed.  Inter-node linking recovers them: every proposed block carries
the proposer's observation array ``V`` (``V[j]`` = largest epoch ``t`` such
that all of node ``j``'s VID instances up to ``t`` have completed), and the
retrieval phase combines the ``V`` arrays of the BA-committed blocks into a
per-node epoch bound ``E[j]`` — the ``(f+1)``-th largest reported value —
below which every block is guaranteed available and gets delivered.

Taking the ``(f+1)``-th largest value (rather than the maximum) is what
stops Byzantine proposers from fooling correct nodes into retrieving blocks
that were never dispersed: at least one *correct* node must have reported
completion up to ``E[j]``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.common.params import ProtocolParams

#: Observation used for blocks that failed retrieval ("BAD_UPLOADER") or are
#: ill-formatted (S4.3, footnote 5).  Using +infinity for every entry makes a
#: malicious proposer's own array irrelevant: it can only ever raise the
#: (f+1)-th largest value up to what some correct node already reported.
INFINITE_OBSERVATION = float("inf")


def completed_prefix(completed_epochs: Iterable[int]) -> int:
    """Largest epoch ``t`` such that epochs ``1..t`` are all in ``completed_epochs``.

    This is how a node computes its own observation ``V[j]`` from the set of
    node ``j``'s VID instances it has seen complete.
    """
    completed = set(completed_epochs)
    epoch = 0
    while epoch + 1 in completed:
        epoch += 1
    return epoch


def kth_largest(values: Sequence[float], k: int) -> float:
    """The ``k``-th largest element of ``values`` (1-based)."""
    if k < 1 or k > len(values):
        raise ValueError(f"k={k} out of range for {len(values)} values")
    return sorted(values, reverse=True)[k - 1]


def compute_linking_targets(
    params: ProtocolParams,
    observations: Mapping[int, Sequence[float]],
) -> list[int]:
    """Combine the committed blocks' ``V`` arrays into the bound ``E``.

    Args:
        params: the ``(N, f)`` protocol parameters.
        observations: mapping from committed proposer index ``k`` (``k`` in
            the epoch's committed set ``S``) to the ``V`` array carried by
            that proposer's block.  Arrays must have length ``N``; use
            ``[INFINITE_OBSERVATION] * N`` for bad or ill-formatted blocks.

    Returns:
        ``E`` as a list of ``N`` integers: node ``j``'s blocks for every
        epoch ``<= E[j]`` must be retrieved and delivered (if not already).

    Raises:
        ValueError: if an observation array has the wrong length or fewer
            observations than ``f + 1`` are supplied (the BA phase always
            commits at least ``N - f >= f + 1`` blocks, so this indicates a
            protocol bug rather than adversarial behaviour).
    """
    if len(observations) < params.small_quorum:
        raise ValueError(
            f"need at least f + 1 = {params.small_quorum} observations, "
            f"got {len(observations)}"
        )
    for proposer, v_array in observations.items():
        if len(v_array) != params.n:
            raise ValueError(
                f"observation from proposer {proposer} has length {len(v_array)}, "
                f"expected {params.n}"
            )
    targets: list[int] = []
    for j in range(params.n):
        column = [v_array[j] for v_array in observations.values()]
        bound = kth_largest(column, params.small_quorum)
        if bound == INFINITE_OBSERVATION:
            # Can only happen if more than f observations are infinite, i.e.
            # more than f committed blocks failed retrieval — impossible when
            # at most f nodes are Byzantine.  Guard anyway so a misconfigured
            # experiment fails loudly instead of looping forever.
            raise ValueError(
                f"linking bound for node {j} is unbounded; more than f "
                "observations were marked bad"
            )
        targets.append(int(bound))
    return targets


def linked_slots(
    targets: Sequence[int],
    already_delivered: Iterable[tuple[int, int]],
    committed_this_epoch: Iterable[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Slots ``(epoch, proposer)`` that inter-node linking must now deliver.

    Returns the slots with ``epoch <= targets[proposer]`` that are neither
    already delivered nor among this epoch's BA-committed slots, sorted by
    increasing epoch number then node index (the total order of S4.3).
    """
    skip = set(already_delivered) | set(committed_this_epoch)
    slots = []
    for proposer, target in enumerate(targets):
        for epoch in range(1, target + 1):
            slot = (epoch, proposer)
            if slot not in skip:
                slots.append(slot)
    slots.sort()
    return slots
