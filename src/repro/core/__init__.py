"""DispersedLedger: the paper's primary contribution.

The package is organised like the paper's nested IO automata (S5):

* :mod:`repro.core.block` / :mod:`repro.core.mempool` — transactions, blocks
  (including the per-block ``V`` observation arrays) and the Nagle-style
  block proposal rate control of S5.
* :mod:`repro.core.linking` — the inter-node linking rule of S4.3.
* :mod:`repro.core.epoch` — per-epoch bookkeeping (``DLEpoch``): BA outputs,
  the committed set, retrieved blocks, and linked slots.
* :mod:`repro.core.node_base` — the epoch/retrieval/delivery machinery shared
  by DispersedLedger and the HoneyBadger baselines.
* :mod:`repro.core.node` — ``DispersedLedgerNode`` (and its DL-Coupled
  variant), where agreement is decoupled from block retrieval.
* :mod:`repro.core.ledger` / :mod:`repro.core.state_machine` — the totally
  ordered log and a replicated key-value state machine built on it.
"""

from repro.core.block import Block, Transaction
from repro.core.config import NodeConfig
from repro.core.epoch import EpochState
from repro.core.ledger import DeliveredBlock, Ledger
from repro.core.linking import compute_linking_targets, linked_slots
from repro.core.mempool import MEMPOOLS, ColumnarMempool, Mempool, create_mempool
from repro.core.node import DispersedLedgerNode, DLCoupledNode
from repro.core.node_base import BFTNodeBase
from repro.core.state_machine import KeyValueStateMachine, decode_operation, encode_operation
from repro.core.txbatch import TxBatch

__all__ = [
    "BFTNodeBase",
    "Block",
    "ColumnarMempool",
    "DLCoupledNode",
    "DeliveredBlock",
    "DispersedLedgerNode",
    "EpochState",
    "KeyValueStateMachine",
    "Ledger",
    "MEMPOOLS",
    "Mempool",
    "NodeConfig",
    "Transaction",
    "TxBatch",
    "compute_linking_targets",
    "create_mempool",
    "decode_operation",
    "encode_operation",
    "linked_slots",
]
