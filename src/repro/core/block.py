"""Transactions and blocks.

A block (S4.2-4.3 of the paper) carries a batch of transactions plus the
proposing node's observation array ``V`` used by inter-node linking: entry
``V[j]`` is the largest epoch ``t`` such that all of node ``j``'s VID
instances up to epoch ``t`` have completed at the proposer.

Blocks support two data planes:

* **virtual** — the block object itself is dispersed through the
  :class:`repro.vid.codec.VirtualCodec`; only its declared ``size`` matters.
* **real** — the block is serialised to bytes (``serialize``/``deserialize``)
  and dispersed through the :class:`repro.vid.codec.RealCodec`.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.core.txbatch import TxBatch

_TX_HEADER = struct.Struct(">QIId")
_BLOCK_HEADER = struct.Struct(">IQI I".replace(" ", ""))
_V_ENTRY = struct.Struct(">q")

#: Wire overhead per transaction (id, origin, size, timestamp).
TX_OVERHEAD = _TX_HEADER.size
#: Wire overhead per block (proposer, epoch, tx count, v-array length).
BLOCK_OVERHEAD = _BLOCK_HEADER.size


@dataclass(frozen=True)
class Transaction:
    """One client transaction.

    ``size`` is the transaction's wire size in bytes; ``data`` carries real
    bytes only when the real data plane is in use (tests, examples).
    """

    tx_id: int
    origin: int
    created_at: float
    size: int
    data: bytes = b""

    def __post_init__(self) -> None:
        if self.data and len(self.data) != self.size:
            raise ValueError(
                f"transaction declares size {self.size} but carries {len(self.data)} bytes"
            )


@dataclass(frozen=True)
class Block:
    """A proposed block: transactions plus the proposer's observation array.

    The transaction payload comes in one of two interchangeable forms:
    ``transactions`` (a tuple of :class:`Transaction` objects — the object
    data plane) or ``tx_batch`` (a columnar :class:`TxBatch` — the
    struct-of-arrays data plane).  At most one is populated.  Both forms
    produce identical ``size``/``digest``/``serialize`` bytes for the same
    logical transactions, so the choice never leaks onto the wire.
    """

    proposer: int
    epoch: int
    transactions: tuple[Transaction, ...] = ()
    v_array: tuple[int, ...] = ()
    label: str = ""
    tx_batch: TxBatch | None = None

    def __post_init__(self) -> None:
        if self.transactions and self.tx_batch is not None:
            raise ValueError("a block carries either transactions or tx_batch, not both")

    @property
    def num_transactions(self) -> int:
        """Number of client transactions carried, whichever the data plane."""
        if self.tx_batch is not None:
            return self.tx_batch.count
        return len(self.transactions)

    @property
    def payload_bytes(self) -> int:
        """Bytes of client transaction payload carried by this block."""
        if self.tx_batch is not None:
            return self.tx_batch.total_bytes
        return sum(tx.size for tx in self.transactions)

    @property
    def size(self) -> int:
        """Total wire size of the block (what gets dispersed)."""
        return (
            BLOCK_OVERHEAD
            + len(self.v_array) * _V_ENTRY.size
            + TX_OVERHEAD * self.num_transactions
            + self.payload_bytes
        )

    @property
    def is_empty(self) -> bool:
        return self.num_transactions == 0

    def all_transactions(self) -> tuple[Transaction, ...]:
        """The carried transactions as objects (materialises a columnar batch)."""
        if self.tx_batch is not None:
            return tuple(self.tx_batch.as_transactions())
        return self.transactions

    def digest(self) -> bytes:
        """A stable digest identifying the block (used by the virtual codec)."""
        material = struct.pack(">IQ", self.proposer, self.epoch)
        material += struct.pack(">I", self.num_transactions)
        if self.tx_batch is not None:
            material += self.tx_batch.digest_material()
        else:
            for tx in self.transactions:
                material += struct.pack(">QI", tx.tx_id, tx.size)
        material += b"".join(struct.pack(">q", entry) for entry in self.v_array)
        return hashlib.sha256(material).digest()

    # --- real data plane -------------------------------------------------

    def serialize(self) -> bytes:
        """Encode the block to bytes for dispersal through the real codec."""
        parts = [
            _BLOCK_HEADER.pack(
                self.proposer, self.epoch, self.num_transactions, len(self.v_array)
            )
        ]
        parts.extend(_V_ENTRY.pack(entry) for entry in self.v_array)
        for tx in self.all_transactions():
            parts.append(_TX_HEADER.pack(tx.tx_id, tx.origin, tx.size, tx.created_at))
            data = tx.data if tx.data else b"\x00" * tx.size
            parts.append(data)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "Block":
        """Decode a block from bytes.

        Raises:
            ValueError: if the payload is not a well-formed block (the caller
                treats this as an ill-formatted block per S4.3).
        """
        try:
            offset = 0
            proposer, epoch, num_txs, v_len = _BLOCK_HEADER.unpack_from(payload, offset)
            offset += _BLOCK_HEADER.size
            v_array = []
            for _ in range(v_len):
                (entry,) = _V_ENTRY.unpack_from(payload, offset)
                offset += _V_ENTRY.size
                v_array.append(entry)
            transactions = []
            for _ in range(num_txs):
                tx_id, origin, size, created_at = _TX_HEADER.unpack_from(payload, offset)
                offset += _TX_HEADER.size
                data = payload[offset : offset + size]
                if len(data) != size:
                    raise ValueError("truncated transaction payload")
                offset += size
                transactions.append(
                    Transaction(
                        tx_id=tx_id,
                        origin=origin,
                        created_at=created_at,
                        size=size,
                        data=bytes(data),
                    )
                )
            if offset != len(payload):
                raise ValueError("trailing bytes after block payload")
        except struct.error as exc:
            raise ValueError(f"malformed block payload: {exc}") from exc
        return cls(
            proposer=proposer,
            epoch=epoch,
            transactions=tuple(transactions),
            v_array=tuple(v_array),
        )
