"""Measurement of throughput, latency and traffic composition.

The paper's evaluation reports three families of metrics, all of which are
computed here from the events the nodes and the simulated network expose:

* **Throughput** (Fig. 8, 11, 12, 15): confirmed transaction payload bytes
  per second at each node, plus the confirmed-bytes-over-time timelines of
  Fig. 9.
* **Latency** (Fig. 10, 14): time from a transaction entering the system to
  its delivery, reported as median and tail percentiles, either over all
  transactions or over "local" transactions only (those generated at the
  measuring node — the paper's default metric, justified in Appendix A.1).
* **Traffic composition** (Fig. 13): the fraction of a node's download
  traffic that belongs to the dispersal phase as opposed to block retrieval.
"""

from repro.metrics.collector import MetricsCollector, NodeMetrics
from repro.metrics.stats import percentile, summarise, summarise_array

__all__ = ["MetricsCollector", "NodeMetrics", "percentile", "summarise", "summarise_array"]
