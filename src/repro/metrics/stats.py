"""Small statistics helpers shared by the metrics collector and experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values`` by linear interpolation.

    Raises:
        ValueError: if ``values`` is empty or ``q`` is outside [0, 100].
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    p5: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p5": self.p5,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def summarise(values: Sequence[float]) -> Summary:
    """Mean and percentile summary of ``values`` (which must be non-empty)."""
    if not values:
        raise ValueError("cannot summarise an empty sequence")
    return Summary(
        count=len(values),
        mean=sum(values) / len(values),
        p5=percentile(values, 5),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
    )


def summarise_array(values: np.ndarray) -> Summary:
    """Vectorised :func:`summarise` for a numpy sample column.

    ``np.percentile``'s default linear interpolation is the same rule as
    :func:`percentile`, so for identical samples the two entry points agree
    to floating-point equality; this one sorts once and computes all four
    percentiles in a single pass, which is what the columnar metrics path
    needs at millions of samples.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarise an empty sequence")
    p5, p50, p95, p99 = np.percentile(values, [5, 50, 95, 99])
    return Summary(
        count=int(values.size),
        mean=float(values.mean()),
        p5=float(p5),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
    )
