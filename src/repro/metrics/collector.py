"""Per-node measurement of deliveries, throughput and confirmation latency."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.snapshot import SnapshotState
from repro.core.block import Block
from repro.core.ledger import DeliveredBlock
from repro.metrics.stats import Summary, summarise, summarise_array


@dataclass
class NodeMetrics(SnapshotState):
    """Raw measurement series for one node."""

    _SNAPSHOT_FIELDS = (
        "node_id",
        "timeline",
        "latencies_all",
        "latencies_local",
        "latency_chunks",
        "blocks_proposed",
        "bytes_proposed",
        "blocks_delivered",
        "blocks_linked",
        "confirmed_bytes",
        "confirmed_transactions",
        "proposed_block_sizes",
    )

    node_id: int
    #: ``(virtual time, cumulative confirmed payload bytes)`` samples, one per
    #: delivered block — the series plotted in Fig. 9.
    timeline: list[tuple[float, int]] = field(default_factory=list)
    #: Confirmation latency samples over *all* delivered transactions.
    latencies_all: list[float] = field(default_factory=list)
    #: Confirmation latency samples over locally generated transactions only
    #: (the paper's default latency metric, Appendix A.1).
    latencies_local: list[float] = field(default_factory=list)
    #: Columnar latency samples: one ``(origin, latency column)`` chunk per
    #: delivered batch block, kept as numpy arrays so million-transaction
    #: runs never materialise per-sample Python floats.
    latency_chunks: list[tuple[int, np.ndarray]] = field(default_factory=list)
    #: Number of blocks this node proposed.
    blocks_proposed: int = 0
    #: Total transaction payload bytes this node proposed.
    bytes_proposed: int = 0
    #: Number of blocks delivered (including empty and placeholder blocks).
    blocks_delivered: int = 0
    #: Number of blocks delivered through inter-node linking.
    blocks_linked: int = 0
    #: Cumulative confirmed transaction payload bytes.
    confirmed_bytes: int = 0
    #: Cumulative confirmed transaction count.
    confirmed_transactions: int = 0
    #: Per-proposed-block total sizes (used to report batch sizes like S6.2).
    proposed_block_sizes: list[int] = field(default_factory=list)

    def throughput(self, duration: float, warmup: float = 0.0) -> float:
        """Confirmed payload bytes per second between ``warmup`` and ``duration``.

        Excluding a warmup window removes the start-up transient (the first
        epochs deliver nothing while dispersal and agreement ramp up), which
        matters for the short simulated runs used by the benchmarks.
        """
        if duration <= warmup:
            raise ValueError("duration must exceed warmup")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        confirmed_at_warmup = 0
        for time, cumulative in self.timeline:
            if time > warmup:
                break
            confirmed_at_warmup = cumulative
        return (self.confirmed_bytes - confirmed_at_warmup) / (duration - warmup)

    def latency_summary(self, local_only: bool = True) -> Summary | None:
        """Latency percentiles, or None if no samples were collected.

        Pure object-path runs (no columnar chunks) go through the original
        scalar :func:`summarise` so their summaries stay byte-identical to
        the pinned goldens; runs with columnar deliveries concatenate the
        chunks and use the vectorised path.
        """
        samples = self.latencies_local if local_only else self.latencies_all
        if not self.latency_chunks:
            if not samples:
                return None
            return summarise(samples)
        chunks = [
            column
            for origin, column in self.latency_chunks
            if not local_only or origin == self.node_id
        ]
        parts = [np.asarray(samples, dtype=np.float64)] if samples else []
        parts.extend(chunks)
        if not parts:
            return None
        merged = np.concatenate(parts) if len(parts) > 1 else parts[0]
        if merged.size == 0:
            return None
        return summarise_array(merged)


class MetricsCollector(SnapshotState):
    """Collects delivery and proposal events from every node of one run."""

    _SNAPSHOT_FIELDS = ("num_nodes", "per_node")

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.per_node = [NodeMetrics(node_id=i) for i in range(num_nodes)]

    # The two callbacks below match the ``on_deliver`` / ``on_propose`` hooks
    # of :class:`repro.core.node_base.BFTNodeBase`.

    def record_proposal(self, node_id: int, block: Block, now: float) -> None:
        """Record that ``node_id`` proposed ``block`` at virtual time ``now``."""
        metrics = self.per_node[node_id]
        metrics.blocks_proposed += 1
        metrics.bytes_proposed += block.payload_bytes
        metrics.proposed_block_sizes.append(block.size)

    def record_delivery(self, node_id: int, entry: DeliveredBlock) -> None:
        """Record that ``node_id`` delivered ``entry``."""
        metrics = self.per_node[node_id]
        metrics.blocks_delivered += 1
        if entry.via_linking:
            metrics.blocks_linked += 1
        metrics.confirmed_bytes += entry.payload_bytes
        metrics.confirmed_transactions += entry.num_transactions
        metrics.timeline.append((entry.delivered_at, metrics.confirmed_bytes))
        batch = entry.block.tx_batch
        if batch is not None:
            # Columnar fast path: one vectorised subtraction per delivered
            # block instead of one float append per transaction.
            if batch.count:
                metrics.latency_chunks.append(
                    (batch.origin, entry.delivered_at - batch.created_at)
                )
            return
        for tx in entry.block.transactions:
            latency = entry.delivered_at - tx.created_at
            metrics.latencies_all.append(latency)
            if tx.origin == node_id:
                metrics.latencies_local.append(latency)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def throughputs(self, duration: float, warmup: float = 0.0) -> list[float]:
        """Per-node confirmed payload bytes per second."""
        return [metrics.throughput(duration, warmup) for metrics in self.per_node]

    def mean_throughput(self, duration: float, warmup: float = 0.0) -> float:
        """Average per-node throughput (the headline number of Fig. 8)."""
        values = self.throughputs(duration, warmup)
        return sum(values) / len(values)

    def total_confirmed_bytes(self) -> int:
        return sum(metrics.confirmed_bytes for metrics in self.per_node)

    def latency_summaries(self, local_only: bool = True) -> list[Summary | None]:
        return [metrics.latency_summary(local_only) for metrics in self.per_node]

    def timelines(self) -> list[list[tuple[float, int]]]:
        """Per-node cumulative confirmed-bytes timelines (Fig. 9)."""
        return [list(metrics.timeline) for metrics in self.per_node]
