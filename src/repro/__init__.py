"""DispersedLedger reproduction.

A from-scratch Python implementation of *DispersedLedger: High-Throughput
Byzantine Consensus on Variable Bandwidth Networks* (Yang, Park, Alizadeh,
Kannan, Tse — NSDI 2022), together with every substrate the paper depends
on: the AVID-M verifiable information dispersal protocol, asynchronous
binary agreement, erasure coding, a bandwidth-accurate wide-area network
simulator, the HoneyBadger baselines, and the full benchmark harness that
regenerates the paper's evaluation figures.

Quick start::

    from repro import ProtocolParams, DispersedLedgerNode
    from repro.experiments import run_protocol_comparison

See ``examples/quickstart.py`` for a runnable end-to-end walk-through.
"""

from repro.common import (
    BAInstanceId,
    ConfigurationError,
    ProtocolError,
    ProtocolParams,
    ReproError,
    VIDInstanceId,
)
from repro.core import (
    Block,
    DLCoupledNode,
    DeliveredBlock,
    DispersedLedgerNode,
    KeyValueStateMachine,
    Ledger,
    Mempool,
    NodeConfig,
    Transaction,
)
from repro.honeybadger import HoneyBadgerLinkNode, HoneyBadgerNode

__version__ = "1.0.0"

__all__ = [
    "BAInstanceId",
    "Block",
    "ConfigurationError",
    "DLCoupledNode",
    "DeliveredBlock",
    "DispersedLedgerNode",
    "HoneyBadgerLinkNode",
    "HoneyBadgerNode",
    "KeyValueStateMachine",
    "Ledger",
    "Mempool",
    "NodeConfig",
    "ProtocolError",
    "ProtocolParams",
    "ReproError",
    "Transaction",
    "VIDInstanceId",
    "__version__",
]
