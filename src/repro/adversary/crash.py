"""Fail-silent adversaries."""

from __future__ import annotations

from repro.common.snapshot import SnapshotState
from repro.sim.messages import Message
from repro.sim.process import Process


class CrashedNode(SnapshotState):
    """A node that is silent from the start.

    It neither proposes nor responds to any message, which is
    indistinguishable (to the rest of the cluster) from a node whose
    messages are delayed forever — the worst case an asynchronous BFT
    protocol must make progress under, as long as at most ``f`` nodes
    behave this way.
    """

    _SNAPSHOT_FIELDS = ("node_id", "messages_ignored")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.messages_ignored = 0

    def start(self) -> None:  # pragma: no cover - intentionally empty
        return

    def on_message(self, src: int, msg: Message) -> None:
        self.messages_ignored += 1


class CrashAfterNode(SnapshotState):
    """Wraps a correct node and silences it after ``crash_time``.

    Before the crash the wrapped node behaves normally; afterwards all
    incoming messages are swallowed, so the node stops participating in
    dispersals, votes and retrievals.  The ``clock`` is anything with a
    ``now`` property (the simulator or the instant router).
    """

    _SNAPSHOT_FIELDS = ("inner", "_clock", "crash_time", "messages_ignored")

    def __init__(self, inner: Process, clock, crash_time: float):
        if crash_time < 0:
            raise ValueError("crash_time must be non-negative")
        self.inner = inner
        self._clock = clock
        self.crash_time = crash_time
        self.messages_ignored = 0

    @property
    def crashed(self) -> bool:
        return self._clock.now >= self.crash_time

    def start(self) -> None:
        if not self.crashed:
            self.inner.start()

    def on_message(self, src: int, msg: Message) -> None:
        if self.crashed:
            self.messages_ignored += 1
            return
        self.inner.on_message(src, msg)
