"""A malicious disperser that sends inconsistent chunks.

The attack AVID-M is designed to neutralise (S3.2): a Byzantine client
encodes *different* data into the chunks it hands to different servers while
committing to them under one Merkle root, hoping that retrievals using
different chunk subsets decode to different blocks.  AVID-M's retrieval-time
re-encode check detects this and makes every correct client return the same
``BAD_UPLOADER`` outcome (Lemma B.8 / Theorem B.9).
"""

from __future__ import annotations

from repro.common.ids import VIDInstanceId
from repro.common.params import ProtocolParams
from repro.core.node import DispersedLedgerNode
from repro.crypto.merkle import MerkleTree
from repro.erasure.rs_code import ReedSolomonCode
from repro.sim.context import NodeContext
from repro.vid.codec import Chunk
from repro.vid.messages import ChunkMsg


def send_inconsistent_dispersal(
    params: ProtocolParams,
    ctx: NodeContext,
    instance: VIDInstanceId,
    payload_a: bytes,
    payload_b: bytes,
) -> bytes:
    """Disperse chunks that mix the encodings of two different payloads.

    The chunks are committed to by one Merkle tree (so every per-chunk proof
    verifies), but they are *not* the encoding of any single block: the first
    ``N - 2f`` leaf positions hold ``payload_a``'s chunks and the rest hold
    ``payload_b``'s.  Returns the Merkle root the servers will agree on.
    """
    rs = ReedSolomonCode(params.data_shards, params.total_shards)
    shards_a = rs.encode(payload_a)
    shards_b = rs.encode(payload_b)
    if len(shards_a[0]) != len(shards_b[0]):
        raise ValueError("payloads must produce equally sized shards for this attack")
    mixed = [
        shards_a[i] if i < params.data_shards else shards_b[i] for i in range(params.n)
    ]
    tree = MerkleTree(mixed)
    for server in range(params.n):
        chunk = Chunk(
            index=server, size=len(mixed[server]), data=mixed[server], proof=tree.proof(server)
        )
        ctx.send(server, ChunkMsg(instance=instance, root=tree.root, chunk=chunk))
    return tree.root


class EquivocatingDisperserNode(DispersedLedgerNode):
    """A DispersedLedger proposer that disperses inconsistent chunks every epoch.

    It otherwise follows the protocol (it votes, answers retrievals for other
    slots, and so on), which is the strongest form of the attack: the cluster
    commits the slot, and correctness requires every correct node to deliver
    the same ``BAD_UPLOADER`` placeholder for it.  Requires the real data
    plane (the virtual codec has no bytes to equivocate over).
    """

    #: Alternative payload dispersed to the non-systematic chunk positions.
    DECOY = b"equivocation-decoy-payload"

    def _begin_dispersal(self, epoch: int) -> None:
        state = self._epoch_state(epoch)
        if state.dispersal_started:
            return
        state.dispersal_started = True
        self.current_epoch = max(self.current_epoch, epoch)
        block = self._make_block(epoch)
        state.own_block = block
        state.proposed_at = self.ctx.now
        payload = block.serialize()
        decoy = self.DECOY.ljust(len(payload), b"\x00")[: len(payload)]
        send_inconsistent_dispersal(
            self.params,
            self.ctx,
            VIDInstanceId(epoch=epoch, proposer=self.node_id),
            payload,
            decoy,
        )
        if self.on_propose is not None:
            self.on_propose(self.node_id, block, self.ctx.now)
