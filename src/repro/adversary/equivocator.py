"""A malicious disperser that sends inconsistent chunks.

The attack AVID-M is designed to neutralise (S3.2): a Byzantine client
encodes *different* data into the chunks it hands to different servers while
committing to them under one Merkle root, hoping that retrievals using
different chunk subsets decode to different blocks.  AVID-M's retrieval-time
re-encode check detects this and makes every correct client return the same
``BAD_UPLOADER`` outcome (Lemma B.8 / Theorem B.9).

Both data planes are covered: on the real plane the node mixes two actual
Reed-Solomon encodings under one Merkle tree; on the virtual plane (the
throughput experiments) it disperses a :class:`VirtualPayload` marked
``inconsistent``, whose chunks account for the same bytes on the wire but
make :class:`~repro.vid.codec.VirtualCodec` report ``BAD_UPLOADER`` exactly
where the real re-encode check would.
"""

from __future__ import annotations

from repro.common.ids import VIDInstanceId
from repro.common.params import ProtocolParams
from repro.core.block import Block
from repro.core.config import REAL_PLANE
from repro.core.node import DispersedLedgerNode
from repro.crypto.merkle import MerkleTree
from repro.erasure.rs_code import ReedSolomonCode
from repro.sim.context import NodeContext
from repro.vid.codec import Chunk, VirtualPayload
from repro.vid.messages import ChunkMsg


def send_inconsistent_dispersal(
    params: ProtocolParams,
    ctx: NodeContext,
    instance: VIDInstanceId,
    payload_a: bytes,
    payload_b: bytes,
    split: int | None = None,
) -> bytes:
    """Disperse chunks that mix the encodings of two different payloads.

    The chunks are committed to by one Merkle tree (so every per-chunk proof
    verifies), but they are *not* the encoding of any single block: the first
    ``split`` leaf positions hold ``payload_a``'s chunks and the rest hold
    ``payload_b``'s (``split`` defaults to ``N - 2f``, putting the decoy in
    the non-systematic positions).  Returns the Merkle root the servers will
    agree on.
    """
    if split is None:
        split = params.data_shards
    if not 1 <= split < params.n:
        raise ValueError(f"split must be in [1, {params.n - 1}], got {split}")
    rs = ReedSolomonCode(params.data_shards, params.total_shards)
    shards_a = rs.encode(payload_a)
    shards_b = rs.encode(payload_b)
    if len(shards_a[0]) != len(shards_b[0]):
        raise ValueError("payloads must produce equally sized shards for this attack")
    mixed = [shards_a[i] if i < split else shards_b[i] for i in range(params.n)]
    tree = MerkleTree(mixed)
    for server in range(params.n):
        chunk = Chunk(
            index=server, size=len(mixed[server]), data=mixed[server], proof=tree.proof(server)
        )
        ctx.send(server, ChunkMsg(instance=instance, root=tree.root, chunk=chunk))
    return tree.root


def send_virtual_inconsistent_dispersal(
    codec,
    ctx: NodeContext,
    instance: VIDInstanceId,
    payload_size: int,
) -> bytes:
    """The virtual-plane analogue of :func:`send_inconsistent_dispersal`.

    Disperses chunks of an ``inconsistent`` :class:`VirtualPayload` of
    ``payload_size`` bytes: chunk and proof sizes on the wire match an honest
    dispersal of the same block, but any retrieval decodes to
    ``BAD_UPLOADER``.
    """
    payload = VirtualPayload.create(payload_size, label="equivocation", inconsistent=True)
    bundle = codec.encode(payload)
    for server, chunk in enumerate(bundle.chunks):
        ctx.send(server, ChunkMsg(instance=instance, root=bundle.root, chunk=chunk))
    return bundle.root


class EquivocatingDisperserNode(DispersedLedgerNode):
    """A DispersedLedger proposer that disperses inconsistent chunks every epoch.

    It otherwise follows the protocol (it votes, answers retrievals for other
    slots, and so on), which is the strongest form of the attack: the cluster
    commits the slot, and correctness requires every correct node to deliver
    the same ``BAD_UPLOADER`` placeholder for it.  ``split`` picks the chunk
    position at which the encoding switches from the real block to the decoy
    (real data plane; ``None`` = ``N - 2f``).
    """

    #: Alternative payload dispersed to the non-systematic chunk positions.
    DECOY = b"equivocation-decoy-payload"

    _SNAPSHOT_FIELDS = DispersedLedgerNode._SNAPSHOT_FIELDS + ("split",)

    def __init__(self, *args, split: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.split = split

    def _disperse_block(self, epoch: int, block: Block) -> None:
        instance = VIDInstanceId(epoch=epoch, proposer=self.node_id)
        if self.config.data_plane == REAL_PLANE:
            payload = block.serialize()
            decoy = self.DECOY.ljust(len(payload), b"\x00")[: len(payload)]
            send_inconsistent_dispersal(
                self.params, self.ctx, instance, payload, decoy, split=self.split
            )
        else:
            send_virtual_inconsistent_dispersal(self.codec, self.ctx, instance, block.size)
