"""Declarative adversary placement for the scenario engine.

The scenario engine describes Byzantine behaviour with an
:class:`AdversarySpec` — *which* misbehaviour (``kind``), *how many* nodes
(``count``) or *which* nodes (``nodes``), and behaviour parameters — and
builds the faulty processes through the :data:`ADVERSARIES` registry, so new
behaviours plug in with :func:`register_adversary` without touching the
engine.

A registered factory receives the already-built honest node and either
replaces it on the wire (``CrashedNode``) or wraps it
(``CrashAfterNode``); the returned object only needs to satisfy the
:class:`repro.sim.process.Process` protocol.  Node-*class* adversaries that
change protocol logic from the inside (:class:`CensoringNode`,
:class:`EquivocatingDisperserNode`) are exercised by the instant-router
tests and ``examples/byzantine_faults.py``; expressing them here only takes
a factory that rebuilds the node from the honest instance's parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.adversary.crash import CrashAfterNode, CrashedNode
from repro.common.errors import ConfigurationError
from repro.sim.process import Process


@dataclass(frozen=True)
class AdversarySpec:
    """Which nodes misbehave, and how.

    Attributes:
        kind: a key of :data:`ADVERSARIES` (``"none"`` disables placement).
        count: number of adversarial nodes; the default placement puts them
            at the *highest* node ids, leaving node 0 (the proposer and city
            most figures highlight) honest.
        nodes: explicit adversarial node ids; overrides ``count``.
        crash_time: virtual time at which ``crash-after`` nodes fall silent.
        params: free-form behaviour parameters for registered extensions.
    """

    kind: str = "none"
    count: int = 0
    nodes: tuple[int, ...] | None = None
    crash_time: float = 0.0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind != "none" and self.kind not in ADVERSARIES:
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; registered: {sorted(ADVERSARIES)}"
            )
        if self.count < 0:
            raise ConfigurationError("count must be non-negative")
        if self.crash_time < 0:
            raise ConfigurationError("crash_time must be non-negative")
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(self.nodes))

    def placement(self, num_nodes: int) -> tuple[int, ...]:
        """The adversarial node ids for a cluster of ``num_nodes``."""
        if self.kind == "none":
            return ()
        if self.nodes is not None:
            out_of_range = [i for i in self.nodes if not 0 <= i < num_nodes]
            if out_of_range:
                raise ConfigurationError(
                    f"adversary nodes {out_of_range} out of range for n={num_nodes}"
                )
            return self.nodes
        if self.count > num_nodes:
            raise ConfigurationError(
                f"cannot place {self.count} adversaries in a cluster of {num_nodes}"
            )
        return tuple(range(num_nodes - self.count, num_nodes))

    @property
    def silent_from_start(self) -> bool:
        """True if the adversarial nodes never participate (skip their workload)."""
        return self.kind == "crash"


#: ``factory(honest_node, clock, spec) -> Process`` — builds the faulty
#: process that replaces ``honest_node`` on the simulated network.
AdversaryFactory = Callable[[object, object, AdversarySpec], Process]

ADVERSARIES: dict[str, AdversaryFactory] = {}


def register_adversary(kind: str, factory: AdversaryFactory) -> None:
    """Register a new adversary behaviour under ``kind``."""
    if kind == "none":
        raise ConfigurationError('"none" is reserved for the absence of adversaries')
    ADVERSARIES[kind] = factory


def get_adversary(kind: str) -> AdversaryFactory:
    """Look up a registered adversary factory."""
    try:
        return ADVERSARIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary kind {kind!r}; registered: {sorted(ADVERSARIES)}"
        ) from None


def _crashed(node, clock, spec: AdversarySpec) -> Process:
    return CrashedNode(node.node_id)


def _crash_after(node, clock, spec: AdversarySpec) -> Process:
    return CrashAfterNode(node, clock, spec.crash_time)


register_adversary("crash", _crashed)
register_adversary("crash-after", _crash_after)
