"""Declarative adversary placement for the scenario engine.

The scenario engine describes Byzantine behaviour with an
:class:`AdversarySpec` — *which* misbehaviour (``kind``), *how many* nodes
(``count``) or *which* nodes (``nodes``), and behaviour parameters — and
builds the faulty processes through the :data:`ADVERSARIES` registry, so new
behaviours plug in with :func:`register_adversary` without touching the
engine.

A registered factory receives the already-built honest node and either
replaces it on the wire (``CrashedNode``), wraps it (``CrashAfterNode``), or
rebuilds it as a different node class with the same constructor parameters
(:func:`rebuild_node`).  The returned object only needs to satisfy the
:class:`repro.sim.process.Process` protocol; when it is itself a full
:class:`~repro.core.node_base.BFTNodeBase`, the experiment driver swaps it
into the cluster so workloads and frontier metrics follow the replacement.

Node-*class* adversaries that change protocol logic from the inside are
first-class here: ``kind: "censor"`` rebuilds the node as a
:class:`~repro.adversary.censor.CensoringNode` (behaviour parameter
``victim``) and ``kind: "equivocate"`` as an
:class:`~repro.adversary.equivocator.EquivocatingDisperserNode` (behaviour
parameter ``split``), so both run on the bandwidth-accurate simulator as
well as on the instant router used by the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.adversary.censor import CensoringNode
from repro.adversary.crash import CrashAfterNode, CrashedNode
from repro.adversary.equivocator import EquivocatingDisperserNode
from repro.common.errors import ConfigurationError
from repro.sim.process import Process


@dataclass(frozen=True)
class AdversarySpec:
    """Which nodes misbehave, and how.

    Attributes:
        kind: a key of :data:`ADVERSARIES` (``"none"`` disables placement).
        count: number of adversarial nodes; the default placement puts them
            at the *highest* node ids, leaving node 0 (the proposer and city
            most figures highlight) honest.
        nodes: explicit adversarial node ids; overrides ``count``.
        crash_time: virtual time at which ``crash-after`` nodes fall silent.
        victim: the node whose blocks a ``censor`` adversary votes against
            (must be an honest node id).
        split: chunk index at which an ``equivocate`` adversary switches from
            the real payload's encoding to the decoy's (``None`` = the codec
            default, ``N - 2f``); must satisfy ``1 <= split < N`` so the
            dispersal is actually inconsistent.
        params: free-form behaviour parameters for registered extensions.
    """

    kind: str = "none"
    count: int = 0
    nodes: tuple[int, ...] | None = None
    crash_time: float = 0.0
    victim: int = 0
    split: int | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind != "none" and self.kind not in ADVERSARIES:
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; registered: {sorted(ADVERSARIES)}"
            )
        if self.count < 0:
            raise ConfigurationError("count must be non-negative")
        if self.crash_time < 0:
            raise ConfigurationError("crash_time must be non-negative")
        if self.victim < 0:
            raise ConfigurationError("victim must be a node id")
        if self.split is not None and self.split < 1:
            raise ConfigurationError("split must be at least 1 (or None for the default)")
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(self.nodes))
            if len(set(self.nodes)) != len(self.nodes):
                raise ConfigurationError(f"adversary nodes {self.nodes} overlap")

    def placement(self, num_nodes: int) -> tuple[int, ...]:
        """The adversarial node ids for a cluster of ``num_nodes``."""
        if self.kind == "none":
            return ()
        if self.nodes is not None:
            out_of_range = [i for i in self.nodes if not 0 <= i < num_nodes]
            if out_of_range:
                raise ConfigurationError(
                    f"adversary nodes {out_of_range} out of range for n={num_nodes}"
                )
            return self.nodes
        if self.count > num_nodes:
            raise ConfigurationError(
                f"cannot place {self.count} adversaries in a cluster of {num_nodes}"
            )
        return tuple(range(num_nodes - self.count, num_nodes))

    @property
    def silent_from_start(self) -> bool:
        """True if the adversarial nodes never participate (skip their workload)."""
        return self.kind == "crash"


#: ``factory(honest_node, clock, spec) -> Process`` — builds the faulty
#: process that replaces ``honest_node`` on the simulated network.
AdversaryFactory = Callable[[object, object, AdversarySpec], Process]

ADVERSARIES: dict[str, AdversaryFactory] = {}


def register_adversary(kind: str, factory: AdversaryFactory) -> None:
    """Register a new adversary behaviour under ``kind``."""
    if kind == "none":
        raise ConfigurationError('"none" is reserved for the absence of adversaries')
    ADVERSARIES[kind] = factory


def get_adversary(kind: str) -> AdversaryFactory:
    """Look up a registered adversary factory."""
    try:
        return ADVERSARIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary kind {kind!r}; registered: {sorted(ADVERSARIES)}"
        ) from None


def rebuild_node(node_class: type, node, **extra):
    """Rebuild an already-built honest node as ``node_class``.

    The replacement shares the honest node's identity, parameters, network
    context, configuration, coin and callbacks, so dropping a node-class
    adversary into a cluster changes *behaviour* without changing any other
    experimental condition.  ``extra`` carries behaviour parameters
    (``victim=...``, ``split=...``).
    """
    return node_class(
        node.node_id,
        node.params,
        node.ctx,
        config=node.config,
        coin=node.coin,
        max_epochs=node.max_epochs,
        on_deliver=node.on_deliver,
        on_propose=node.on_propose,
        **extra,
    )


def _crashed(node, clock, spec: AdversarySpec) -> Process:
    return CrashedNode(node.node_id)


def _crash_after(node, clock, spec: AdversarySpec) -> Process:
    return CrashAfterNode(node, clock, spec.crash_time)


def _censor(node, clock, spec: AdversarySpec) -> Process:
    n = node.params.n
    if not 0 <= spec.victim < n:
        raise ConfigurationError(f"censor victim {spec.victim} out of range for n={n}")
    if spec.victim in spec.placement(n):
        raise ConfigurationError(
            f"censor victim {spec.victim} is itself adversarial; pick an honest node"
        )
    return rebuild_node(CensoringNode, node, victim=spec.victim)


def _equivocate(node, clock, spec: AdversarySpec) -> Process:
    n = node.params.n
    if spec.split is not None and not 1 <= spec.split < n:
        raise ConfigurationError(
            f"equivocation split {spec.split} must be in [1, {n - 1}] for n={n}"
        )
    return rebuild_node(EquivocatingDisperserNode, node, split=spec.split)


register_adversary("crash", _crashed)
register_adversary("crash-after", _crash_after)
register_adversary("censor", _censor)
register_adversary("equivocate", _equivocate)
