"""A node that tries to censor one victim's blocks.

In HoneyBadger-style protocols, an adversary that controls scheduling and
``f`` nodes can keep specific proposers' blocks out of every epoch's
committed set (S4.3).  A single Byzantine node cannot fully control which
blocks are dropped, but it can bias the outcome by always voting 0 on the
victim's slot and by reporting that it never observed the victim's
dispersals.  Inter-node linking is designed to make this harmless: the
victim's dispersed blocks are still delivered, at worst one epoch late.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.ids import VIDInstanceId
from repro.core.block import Block
from repro.core.node import DispersedLedgerNode


class CensoringNode(DispersedLedgerNode):
    """A DispersedLedger node that always votes 0 on ``victim``'s slot."""

    _SNAPSHOT_FIELDS = DispersedLedgerNode._SNAPSHOT_FIELDS + ("victim",)

    def __init__(self, *args, victim: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0 <= victim < self.params.n:
            raise ConfigurationError(
                f"censor victim {victim} out of range for n={self.params.n}"
            )
        self.victim = victim

    def _on_vid_complete(self, instance: VIDInstanceId) -> None:
        if instance.proposer == self.victim:
            # Pretend the victim's dispersal never completed: vote against it.
            self._input_ba(instance.epoch, instance.proposer, 0)
            return
        super()._on_vid_complete(instance)

    def _make_block(self, epoch: int) -> Block:
        block = super()._make_block(epoch)
        if not block.v_array:
            return block
        # Report a zero observation for the victim so our V array never helps
        # inter-node linking deliver the victim's blocks.
        v_array = list(block.v_array)
        v_array[self.victim] = 0
        return Block(
            proposer=block.proposer,
            epoch=block.epoch,
            transactions=block.transactions,
            v_array=tuple(v_array),
        )
