"""Byzantine behaviours used by the tests and the robustness experiments.

The paper's security model (S2.4) tolerates up to ``f`` arbitrary-behaviour
nodes out of ``N >= 3f + 1``.  This package provides concrete adversaries:

* :class:`CrashedNode` — a node that never sends anything (fail-silent),
  the classic "Byzantine nodes may never initiate their VID Disperse" case
  the epoch protocol must survive (S4.2).
* :class:`CrashAfterNode` — a node that behaves correctly until a given
  virtual time and is silent afterwards.
* :class:`EquivocatingDisperserNode` — a proposer that disperses
  *inconsistent* chunks (different payloads to different servers), the
  attack AVID-M's re-encode check exists to neutralise (S3.2/S3.3): all
  correct nodes must agree on the fixed ``BAD_UPLOADER`` outcome.
* :class:`CensoringNode` — a node that always votes 0 on a victim's slot and
  reports a zero observation for the victim, attempting the censorship
  attack that inter-node linking defeats (S4.3).
* :func:`drop_messages_from` / :func:`drop_messages_between` — delivery
  filters for the instant router, used to emulate partitions and selective
  message loss in tests.
* :class:`AdversarySpec` + the :func:`register_adversary` registry — the
  declarative placement layer the scenario engine uses to drop any of the
  above into a simulated run (``repro.experiments.scenario``).  All four
  built-in kinds (``crash``, ``crash-after``, ``censor``, ``equivocate``)
  run on the bandwidth-accurate simulator; the node-class kinds are rebuilt
  from the honest node via :func:`rebuild_node`, carrying behaviour
  parameters (``victim``, ``split``) from the spec.
"""

from repro.adversary.censor import CensoringNode
from repro.adversary.crash import CrashAfterNode, CrashedNode
from repro.adversary.equivocator import EquivocatingDisperserNode, send_inconsistent_dispersal
from repro.adversary.filters import drop_messages_between, drop_messages_from
from repro.adversary.registry import (
    ADVERSARIES,
    AdversarySpec,
    get_adversary,
    rebuild_node,
    register_adversary,
)

__all__ = [
    "ADVERSARIES",
    "AdversarySpec",
    "CensoringNode",
    "CrashAfterNode",
    "CrashedNode",
    "EquivocatingDisperserNode",
    "drop_messages_between",
    "drop_messages_from",
    "get_adversary",
    "rebuild_node",
    "register_adversary",
    "send_inconsistent_dispersal",
]
