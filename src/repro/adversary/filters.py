"""Delivery filters for the instant router.

:class:`repro.sim.instant.InstantNetwork` calls an optional
``delivery_filter(src, dst, msg)`` for every message and drops the message
when the filter returns False.  These helpers build common filters used by
the fault-injection tests.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sim.messages import Message

DeliveryFilter = Callable[[int, int, Message], bool]


def drop_messages_from(silenced: Iterable[int]) -> DeliveryFilter:
    """Drop every message originating at any node in ``silenced``."""
    silenced_set = frozenset(silenced)

    def predicate(src: int, dst: int, msg: Message) -> bool:
        return src not in silenced_set

    return predicate


def drop_messages_between(group_a: Iterable[int], group_b: Iterable[int]) -> DeliveryFilter:
    """Drop messages crossing between two node groups (a network partition)."""
    set_a = frozenset(group_a)
    set_b = frozenset(group_b)

    def predicate(src: int, dst: int, msg: Message) -> bool:
        crosses = (src in set_a and dst in set_b) or (src in set_b and dst in set_a)
        return not crosses

    return predicate


def compose_filters(*filters: DeliveryFilter) -> DeliveryFilter:
    """A filter that delivers a message only if every component filter allows it."""

    def predicate(src: int, dst: int, msg: Message) -> bool:
        return all(component(src, dst, msg) for component in filters)

    return predicate
