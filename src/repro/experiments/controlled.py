"""Fig. 11 — controlled bandwidth-variation experiments (S6.3).

The paper verifies the design goal — good throughput regardless of network
variation — with two controlled scenarios on 16 emulated nodes connected by
100 ms links:

* **Spatial variation** (Fig. 11a): node ``i`` is permanently capped at
  ``10 + 0.5 i`` MB/s.  HoneyBadger's per-node throughput is pinned near the
  bandwidth of the ``(f+1)``-th slowest node; DispersedLedger's per-node
  throughput is proportional to each node's own bandwidth.
* **Temporal variation** (Fig. 11b): every node's bandwidth follows an
  independent Gauss-Markov process with the same mean as a fixed-bandwidth
  control run.  DispersedLedger's throughput is unaffected by the
  fluctuation, HoneyBadger's drops by ~20-25%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import NodeConfig
from repro.experiments.engine import run_scenario
from repro.experiments.runner import ExperimentResult, WorkloadSpec
from repro.experiments.scenario import BandwidthSpec, ScenarioSpec, TopologySpec
from repro.workload.traces import MB, spatial_variation_rates

#: Protocols compared in Fig. 11.
CONTROLLED_PROTOCOLS = ("dl", "hb-link", "hb")
#: One-way propagation delay between every pair of nodes (S6.3).
CONTROLLED_DELAY = 0.1


@dataclass
class SpatialVariationResult:
    """Fig. 11a data: per-node capacity and per-protocol per-node throughput."""

    rates: list[float]
    results: dict[str, ExperimentResult]

    def table(self) -> list[dict[str, object]]:
        rows = []
        for node, rate in enumerate(self.rates):
            row: dict[str, object] = {"node": node, "capacity": rate}
            for protocol, result in self.results.items():
                row[protocol] = result.throughputs[node]
            rows.append(row)
        return rows

    def throughput_spread(self, protocol: str) -> float:
        """Max/min per-node throughput ratio (DL should be well above 1, HB near 1)."""
        values = self.results[protocol].throughputs
        lowest = min(values)
        if lowest == 0:
            return float("inf")
        return max(values) / lowest


def run_spatial_variation(
    num_nodes: int = 16,
    duration: float = 60.0,
    protocols: tuple[str, ...] = CONTROLLED_PROTOCOLS,
    base_rate: float = 10 * MB,
    step_rate: float = 0.5 * MB,
    seed: int = 0,
    egress_headroom: float = 2.0,
    warmup_fraction: float = 0.25,
) -> SpatialVariationResult:
    """Run the spatial-variation experiment of Fig. 11a.

    ``egress_headroom`` mirrors the geo testbed modelling (DESIGN.md): the
    per-node cap of the paper's experiment binds on the download side, while
    the serving side gets proportional headroom.
    """
    rates = spatial_variation_rates(num_nodes, base=base_rate, step=step_rate)
    base = ScenarioSpec(
        name="spatial-variation",
        topology=TopologySpec(kind="uniform", num_nodes=num_nodes, delay=CONTROLLED_DELAY),
        bandwidth=BandwidthSpec(
            kind="spatial", rate=base_rate, step=step_rate, egress_headroom=egress_headroom
        ),
        workload=WorkloadSpec(kind="saturating"),
        node=NodeConfig(max_block_size=1_000_000),
        duration=duration,
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    results = {
        protocol: run_scenario(replace(base, protocol=protocol)).result
        for protocol in protocols
    }
    return SpatialVariationResult(rates=rates, results=results)


@dataclass
class TemporalVariationResult:
    """Fig. 11b data: mean throughput under fixed vs fluctuating bandwidth."""

    fixed: dict[str, ExperimentResult]
    varying: dict[str, ExperimentResult]

    def table(self) -> list[dict[str, object]]:
        rows = []
        for protocol in self.fixed:
            fixed_mean = self.fixed[protocol].mean_throughput
            varying_mean = self.varying[protocol].mean_throughput
            drop = 0.0 if fixed_mean == 0 else 1.0 - varying_mean / fixed_mean
            rows.append(
                {
                    "protocol": protocol,
                    "fixed": fixed_mean,
                    "varying": varying_mean,
                    "relative_drop": drop,
                }
            )
        return rows

    def relative_drop(self, protocol: str) -> float:
        """Fractional throughput loss caused by temporal variation."""
        fixed_mean = self.fixed[protocol].mean_throughput
        if fixed_mean == 0:
            raise ZeroDivisionError(f"{protocol} confirmed nothing in the fixed run")
        return 1.0 - self.varying[protocol].mean_throughput / fixed_mean


def run_temporal_variation(
    num_nodes: int = 16,
    duration: float = 60.0,
    protocols: tuple[str, ...] = CONTROLLED_PROTOCOLS,
    mean_rate: float = 10 * MB,
    sigma: float = 5 * MB,
    alpha: float = 0.98,
    seed: int = 0,
    egress_headroom: float = 2.0,
    warmup_fraction: float = 0.25,
) -> TemporalVariationResult:
    """Run the temporal-variation experiment of Fig. 11b.

    Two runs per protocol: one with every node fixed at ``mean_rate`` and one
    with independent Gauss-Markov traces of the same mean (ingress side; the
    serving side gets ``egress_headroom`` times the same trace shape).  Only
    the ``bandwidth.kind`` axis differs between the control and the varying
    runs — the scenario spec makes that the literal shape of the experiment.
    """
    base = ScenarioSpec(
        name="temporal-variation",
        topology=TopologySpec(kind="uniform", num_nodes=num_nodes, delay=CONTROLLED_DELAY),
        bandwidth=BandwidthSpec(
            kind="constant",
            rate=mean_rate,
            sigma=sigma,
            alpha=alpha,
            egress_headroom=egress_headroom,
        ),
        workload=WorkloadSpec(kind="saturating"),
        node=NodeConfig(max_block_size=1_000_000),
        duration=duration,
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    varying_base = replace(base, bandwidth=replace(base.bandwidth, kind="gauss-markov"))
    fixed = {
        protocol: run_scenario(replace(base, protocol=protocol)).result
        for protocol in protocols
    }
    varying = {
        protocol: run_scenario(replace(varying_base, protocol=protocol)).result
        for protocol in protocols
    }
    return TemporalVariationResult(fixed=fixed, varying=varying)
