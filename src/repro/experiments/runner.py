"""The common experiment driver.

Every figure-regenerating experiment is a thin wrapper around
:func:`run_experiment`: build a simulated network, attach N nodes of the
protocol under test, attach a workload generator per node, run for a fixed
amount of virtual time, and summarise what the metrics collector saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.ba.coin import CommonCoin
from repro.common.params import ProtocolParams
from repro.core.config import NodeConfig
from repro.core.node import DLCoupledNode, DispersedLedgerNode
from repro.core.node_base import BFTNodeBase
from repro.honeybadger.node import HoneyBadgerLinkNode, HoneyBadgerNode
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import Summary
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.workload.txgen import (
    DEFAULT_TX_SIZE,
    PoissonTransactionGenerator,
    SaturatingTransactionGenerator,
)

#: The protocols the paper's evaluation compares (S6), keyed by the labels
#: used throughout the experiments and benchmark output.
PROTOCOLS: dict[str, type[BFTNodeBase]] = {
    "dl": DispersedLedgerNode,
    "dl-coupled": DLCoupledNode,
    "hb": HoneyBadgerNode,
    "hb-link": HoneyBadgerLinkNode,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """What load the clients offer to each node.

    ``kind`` is either ``"saturating"`` (infinitely-backlogged throughput
    runs, S6.2) or ``"poisson"`` (latency-vs-load runs, S6.2).  For Poisson
    workloads ``rate_bytes_per_second`` is the *per-node* offered load.
    """

    kind: str = "saturating"
    rate_bytes_per_second: float = 1_000_000.0
    tx_size: int = DEFAULT_TX_SIZE
    target_pending_bytes: int = 8_000_000

    def __post_init__(self) -> None:
        if self.kind not in ("saturating", "poisson"):
            raise ValueError(f"unknown workload kind {self.kind!r}")


@dataclass
class ExperimentResult:
    """Everything an experiment run produces."""

    protocol: str
    num_nodes: int
    duration: float
    #: Per-node confirmed payload bytes per second.
    throughputs: list[float]
    #: Per-node latency summaries over local transactions (None if no sample).
    latency_local: list[Summary | None]
    #: Per-node latency summaries over all transactions (None if no sample).
    latency_all: list[Summary | None]
    #: Per-node fraction of received bytes that is dispersal-phase traffic.
    dispersal_fractions: list[float]
    #: Per-node cumulative confirmed-bytes timelines (Fig. 9).
    timelines: list[list[tuple[float, int]]]
    #: Per-node delivered epoch frontiers at the end of the run.
    delivered_epochs: list[int]
    #: Per-node dispersal (proposal) epoch frontiers at the end of the run.
    current_epochs: list[int]
    #: Mean proposed block size in bytes across all nodes (batch size, S6.2).
    mean_block_size: float
    #: Number of simulator events processed (performance accounting).
    events_processed: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def mean_throughput(self) -> float:
        return sum(self.throughputs) / len(self.throughputs)

    @property
    def min_throughput(self) -> float:
        return min(self.throughputs)

    @property
    def max_throughput(self) -> float:
        return max(self.throughputs)

    def median_latency(self, node: int, local_only: bool = True) -> float | None:
        summary = (self.latency_local if local_only else self.latency_all)[node]
        return None if summary is None else summary.p50


def build_nodes(
    protocol: str,
    params: ProtocolParams,
    network: Network,
    node_config: NodeConfig,
    collector: MetricsCollector,
    coin_seed: bytes = b"dispersedledger-coin",
    max_epochs: int | None = None,
) -> list[BFTNodeBase]:
    """Instantiate and attach one node of ``protocol`` per network endpoint."""
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}")
    node_class = PROTOCOLS[protocol]
    coin = CommonCoin(seed=coin_seed)
    nodes: list[BFTNodeBase] = []
    for node_id in range(params.n):
        ctx = network_context(network, node_id)
        node = node_class(
            node_id,
            params,
            ctx,
            config=node_config,
            coin=coin,
            max_epochs=max_epochs,
            on_deliver=lambda nid, entry: collector.record_delivery(nid, entry),
            on_propose=lambda nid, block, now: collector.record_proposal(nid, block, now),
        )
        network.attach(node_id, node)
        nodes.append(node)
    return nodes


def network_context(network: Network, node_id: int):
    """Build a :class:`NodeContext` bound to the simulated network."""
    from repro.sim.context import NodeContext

    return NodeContext(node_id, network, network.sim)


def run_experiment(
    protocol: str,
    network_config: NetworkConfig,
    duration: float,
    workload: WorkloadSpec | None = None,
    node_config: NodeConfig | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    warmup: float = 0.0,
) -> ExperimentResult:
    """Run one protocol on one simulated network and summarise the outcome.

    Args:
        protocol: one of ``"dl"``, ``"dl-coupled"``, ``"hb"``, ``"hb-link"``.
        network_config: the simulated WAN (delays + bandwidth traces).
        duration: virtual seconds to simulate.
        workload: offered load (defaults to a saturating workload).
        node_config: node behaviour knobs (defaults to the virtual data plane
            with the paper's Nagle parameters).
        params: protocol parameters (defaults to the maximum-``f`` setting
            for the network's node count).
        seed: seed for the workload generators.
        warmup: virtual seconds excluded from the throughput denominator
            (ramp-up of the first epochs).
    """
    workload = workload or WorkloadSpec()
    node_config = node_config or NodeConfig()
    params = params or ProtocolParams.for_n(network_config.num_nodes)
    if params.n != network_config.num_nodes:
        raise ValueError(
            f"params.n={params.n} does not match network nodes={network_config.num_nodes}"
        )
    if duration <= warmup:
        raise ValueError("duration must exceed warmup")

    sim = Simulator()
    network = Network(sim, network_config)
    collector = MetricsCollector(params.n)
    nodes = build_nodes(protocol, params, network, node_config, collector)

    generators = []
    for node in nodes:
        if workload.kind == "saturating":
            generator: object = SaturatingTransactionGenerator(
                sim,
                node,
                target_pending_bytes=workload.target_pending_bytes,
                tx_size=workload.tx_size,
            )
        else:
            generator = PoissonTransactionGenerator(
                sim,
                node,
                rate_bytes_per_second=workload.rate_bytes_per_second,
                tx_size=workload.tx_size,
                seed=seed * 1_000 + node.node_id,
            )
        generators.append(generator)
        sim.schedule(0.0, generator.start)

    network.start()
    sim.run(until=duration)

    block_sizes = [
        size for metrics in collector.per_node for size in metrics.proposed_block_sizes
    ]
    mean_block_size = sum(block_sizes) / len(block_sizes) if block_sizes else 0.0
    return ExperimentResult(
        protocol=protocol,
        num_nodes=params.n,
        duration=duration,
        throughputs=collector.throughputs(duration, warmup=warmup),
        latency_local=collector.latency_summaries(local_only=True),
        latency_all=collector.latency_summaries(local_only=False),
        dispersal_fractions=[stats.dispersal_fraction for stats in network.stats],
        timelines=collector.timelines(),
        delivered_epochs=[node.delivered_epoch for node in nodes],
        current_epochs=[node.current_epoch for node in nodes],
        mean_block_size=mean_block_size,
        events_processed=sim.processed_events,
    )


def run_protocol_comparison(
    protocols: Sequence[str],
    network_config: NetworkConfig,
    duration: float,
    workload: WorkloadSpec | None = None,
    node_config: NodeConfig | None = None,
    seed: int = 0,
    warmup: float = 0.0,
) -> dict[str, ExperimentResult]:
    """Run several protocols on identical network conditions and workloads."""
    results = {}
    for protocol in protocols:
        results[protocol] = run_experiment(
            protocol,
            network_config,
            duration,
            workload=workload,
            node_config=node_config,
            seed=seed,
            warmup=warmup,
        )
    return results
