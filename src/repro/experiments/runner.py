"""The common experiment driver.

Every figure-regenerating experiment is a thin wrapper around
:func:`run_experiment`: build a simulated network, attach N nodes of the
protocol under test (optionally replacing some with adversaries), attach a
workload generator per node, run for a fixed amount of virtual time, and
summarise what the metrics collector saw.

Protocols and workloads are looked up in registries
(:func:`register_protocol`, :func:`register_workload`), so new automata and
load shapes plug into every experiment — and into the declarative scenario
engine built on top (:mod:`repro.experiments.scenario`) — without touching
this driver.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.adversary.registry import AdversarySpec, get_adversary
from repro.ba.coin import CommonCoin
from repro.common.errors import SnapshotError
from repro.common.params import ProtocolParams
from repro.experiments.options import UNSET, ExecutionOptions, merge_deprecated_kwargs
from repro.core.config import NodeConfig
from repro.core.node import DLCoupledNode, DispersedLedgerNode
from repro.core.node_base import BFTNodeBase
from repro.honeybadger.node import HoneyBadgerLinkNode, HoneyBadgerNode
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import Summary
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.snapshot import CheckpointTimer, SimulationState, load_checkpoint
from repro.workload.txgen import (
    DEFAULT_TX_SIZE,
    ColumnarPoissonTransactionGenerator,
    ColumnarSaturatingTransactionGenerator,
    ModulatedPoissonTransactionGenerator,
    PoissonTransactionGenerator,
    SaturatingTransactionGenerator,
    bursty_rate_profile,
    diurnal_rate_profile,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.trace.recorder import TraceRecorder

#: The protocols the paper's evaluation compares (S6), keyed by the labels
#: used throughout the experiments and benchmark output.  Extend with
#: :func:`register_protocol`.
PROTOCOLS: dict[str, type[BFTNodeBase]] = {
    "dl": DispersedLedgerNode,
    "dl-coupled": DLCoupledNode,
    "hb": HoneyBadgerNode,
    "hb-link": HoneyBadgerLinkNode,
}


def register_protocol(name: str, node_class: type[BFTNodeBase]) -> None:
    """Register a protocol automaton so experiments and scenarios can run it.

    The class must accept the :class:`BFTNodeBase` constructor signature
    (``node_id, params, ctx, config=, coin=, max_epochs=, on_deliver=,
    on_propose=``).
    """
    existing = PROTOCOLS.get(name)
    if existing is not None and existing is not node_class:
        raise ValueError(f"protocol {name!r} is already registered as {existing.__name__}")
    PROTOCOLS[name] = node_class


@dataclass(frozen=True)
class WorkloadSpec:
    """What load the clients offer to each node.

    ``kind`` names an entry of the workload registry.  Built in:

    * ``"saturating"`` — infinitely-backlogged throughput runs (S6.2);
    * ``"poisson"`` — constant-rate Poisson arrivals (latency-vs-load, S6.2);
    * ``"bursty"`` — on/off Poisson bursts: load ``rate / duty`` for
      ``duty * period`` seconds of every ``period``, zero otherwise;
    * ``"diurnal"`` — sinusoidal day/night Poisson modulation with relative
      swing ``amplitude`` over each ``period``;
    * ``"poisson-columnar"`` / ``"saturating-columnar"`` — struct-of-arrays
      twins of the first two: statistically the same processes, but emitting
      one :class:`~repro.core.txbatch.TxBatch` per ``window`` (respectively
      per refill) instead of one event per transaction, for
      million-transaction runs.

    For all Poisson-family workloads ``rate_bytes_per_second`` is the mean
    *per-node* offered load.  ``period``, ``duty`` and ``amplitude`` only
    apply to the modulated kinds; ``window`` only to the columnar Poisson
    kind.  ``stop_after`` cuts the client load at that virtual time
    (``None`` = offered for the whole run), which lets drain-phase scenarios
    measure how long in-flight transactions take to clear.
    """

    kind: str = "saturating"
    rate_bytes_per_second: float = 1_000_000.0
    tx_size: int = DEFAULT_TX_SIZE
    target_pending_bytes: int = 8_000_000
    period: float = 20.0
    duty: float = 0.25
    amplitude: float = 0.8
    stop_after: float | None = None
    window: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in WORKLOADS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; registered: {sorted(WORKLOADS)}"
            )
        if self.stop_after is not None and self.stop_after <= 0:
            raise ValueError("stop_after must be positive (or None)")
        if self.window <= 0:
            raise ValueError("window must be positive")


#: ``factory(sim, node, spec, seed) -> generator`` — builds the per-node load
#: generator; the generator only needs a ``start()`` method.
WorkloadFactory = Callable[[Simulator, BFTNodeBase, WorkloadSpec, int], object]

WORKLOADS: dict[str, WorkloadFactory] = {}


def register_workload(kind: str, factory: WorkloadFactory) -> None:
    """Register a workload generator under ``kind``."""
    WORKLOADS[kind] = factory


def _per_node_seed(seed: int, node: BFTNodeBase) -> int:
    return seed * 1_000 + node.node_id


def _saturating(sim: Simulator, node: BFTNodeBase, spec: WorkloadSpec, seed: int):
    return SaturatingTransactionGenerator(
        sim,
        node,
        target_pending_bytes=spec.target_pending_bytes,
        tx_size=spec.tx_size,
        stop_at=spec.stop_after,
    )


def _poisson(sim: Simulator, node: BFTNodeBase, spec: WorkloadSpec, seed: int):
    return PoissonTransactionGenerator(
        sim,
        node,
        rate_bytes_per_second=spec.rate_bytes_per_second,
        tx_size=spec.tx_size,
        seed=_per_node_seed(seed, node),
        stop_at=spec.stop_after,
    )


def _bursty(sim: Simulator, node: BFTNodeBase, spec: WorkloadSpec, seed: int):
    profile = bursty_rate_profile(
        spec.rate_bytes_per_second, period=spec.period, duty=spec.duty
    )
    return ModulatedPoissonTransactionGenerator(
        sim,
        node,
        profile,
        tx_size=spec.tx_size,
        seed=_per_node_seed(seed, node),
        stop_at=spec.stop_after,
    )


def _diurnal(sim: Simulator, node: BFTNodeBase, spec: WorkloadSpec, seed: int):
    profile = diurnal_rate_profile(
        spec.rate_bytes_per_second, period=spec.period, amplitude=spec.amplitude
    )
    return ModulatedPoissonTransactionGenerator(
        sim,
        node,
        profile,
        tx_size=spec.tx_size,
        seed=_per_node_seed(seed, node),
        stop_at=spec.stop_after,
    )


def _poisson_columnar(sim: Simulator, node: BFTNodeBase, spec: WorkloadSpec, seed: int):
    return ColumnarPoissonTransactionGenerator(
        sim,
        node,
        rate_bytes_per_second=spec.rate_bytes_per_second,
        tx_size=spec.tx_size,
        seed=_per_node_seed(seed, node),
        stop_at=spec.stop_after,
        window=spec.window,
    )


def _saturating_columnar(
    sim: Simulator, node: BFTNodeBase, spec: WorkloadSpec, seed: int
):
    return ColumnarSaturatingTransactionGenerator(
        sim,
        node,
        target_pending_bytes=spec.target_pending_bytes,
        tx_size=spec.tx_size,
        stop_at=spec.stop_after,
    )


register_workload("saturating", _saturating)
register_workload("poisson", _poisson)
register_workload("bursty", _bursty)
register_workload("diurnal", _diurnal)
register_workload("poisson-columnar", _poisson_columnar)
register_workload("saturating-columnar", _saturating_columnar)


@dataclass
class ExperimentResult:
    """Everything an experiment run produces."""

    protocol: str
    num_nodes: int
    duration: float
    #: Per-node confirmed payload bytes per second.
    throughputs: list[float]
    #: Per-node latency summaries over local transactions (None if no sample).
    latency_local: list[Summary | None]
    #: Per-node latency summaries over all transactions (None if no sample).
    latency_all: list[Summary | None]
    #: Per-node fraction of received bytes that is dispersal-phase traffic.
    dispersal_fractions: list[float]
    #: Per-node cumulative confirmed-bytes timelines (Fig. 9).
    timelines: list[list[tuple[float, int]]]
    #: Per-node delivered epoch frontiers at the end of the run.
    delivered_epochs: list[int]
    #: Per-node dispersal (proposal) epoch frontiers at the end of the run.
    current_epochs: list[int]
    #: Mean proposed block size in bytes across all nodes (batch size, S6.2).
    mean_block_size: float
    #: Number of simulator events processed (performance accounting).
    events_processed: int = 0
    #: Total transactions injected by the workload generators.
    tx_generated: int = 0
    #: Per-node counts of transactions confirmed (delivered in a block).
    tx_confirmed_per_node: list[int] = field(default_factory=list)
    #: Adversary-facing measurements (empty when no adversary was placed):
    #: ``adversary_kind`` / ``adversary_nodes`` always, plus per-kind keys —
    #: censor: ``victim``, ``victim_commit_p50`` (median confirmation latency
    #: of the victim's own transactions), ``victim_inclusion_delay`` (mean
    #: epochs between a victim block's epoch and the epoch whose retrieval
    #: phase delivered it) and ``victim_linked_fraction`` (share of the
    #: victim's blocks that needed inter-node linking); equivocate:
    #: ``equivocation_detected_epoch`` (first epoch an honest node delivered
    #: the ``BAD_UPLOADER`` placeholder) and ``bad_uploader_deliveries``.
    adversary_metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @property
    def tx_committed(self) -> int:
        """Transactions committed cluster-wide.

        The most-advanced node's confirmed count — every node eventually
        delivers the same blocks, so this is the number of distinct
        transactions known committed at the end of the run.
        """
        return max(self.tx_confirmed_per_node, default=0)

    @property
    def mean_throughput(self) -> float:
        return sum(self.throughputs) / len(self.throughputs)

    @property
    def min_throughput(self) -> float:
        return min(self.throughputs)

    @property
    def max_throughput(self) -> float:
        return max(self.throughputs)

    def median_latency(self, node: int, local_only: bool = True) -> float | None:
        summary = (self.latency_local if local_only else self.latency_all)[node]
        return None if summary is None else summary.p50


def build_nodes(
    protocol: str,
    params: ProtocolParams,
    network: Network,
    node_config: NodeConfig,
    collector: MetricsCollector,
    coin_seed: bytes = b"dispersedledger-coin",
    max_epochs: int | None = None,
) -> list[BFTNodeBase]:
    """Instantiate and attach one node of ``protocol`` per network endpoint."""
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}")
    node_class = PROTOCOLS[protocol]
    coin = CommonCoin(seed=coin_seed)
    nodes: list[BFTNodeBase] = []
    for node_id in range(params.n):
        ctx = network_context(network, node_id)
        node = node_class(
            node_id,
            params,
            ctx,
            config=node_config,
            coin=coin,
            max_epochs=max_epochs,
            on_deliver=collector.record_delivery,
            on_propose=collector.record_proposal,
        )
        network.attach(node_id, node)
        nodes.append(node)
    return nodes


def network_context(network: Network, node_id: int):
    """Build a :class:`NodeContext` bound to the simulated network."""
    from repro.sim.context import NodeContext

    return NodeContext(node_id, network, network.sim)


def _experiment_fingerprint(
    protocol: str,
    network_config: NetworkConfig,
    duration: float,
    workload: WorkloadSpec,
    node_config: NodeConfig,
    params: ProtocolParams,
    seed: int,
    warmup: float,
    adversary: AdversarySpec | None,
    max_epochs: int | None,
) -> str:
    """A short deterministic digest of *what* is being simulated.

    Stored in every ``repro-ckpt-v1`` header and recomputed on resume, so a
    checkpoint taken by one scenario cannot silently continue another.  Trace
    objects are summarised by class name (their content is not JSON-stable);
    everything else is the exact argument value.
    """

    def trace_kinds(traces) -> list[str] | None:
        if traces is None:
            return None
        return [type(t).__name__ if t is not None else "None" for t in traces]

    material = {
        "protocol": protocol,
        "n": params.n,
        "f": params.f,
        "duration": duration,
        "warmup": warmup,
        "seed": seed,
        "max_epochs": max_epochs,
        "workload": asdict(workload),
        "node_config": asdict(node_config),
        "adversary": None if adversary is None else asdict(adversary),
        "network": {
            "num_nodes": network_config.num_nodes,
            "propagation_delay": network_config.propagation_delay,
            "express": network_config.express,
            "egress": trace_kinds(network_config.egress_traces),
            "ingress": trace_kinds(network_config.ingress_traces),
        },
    }
    blob = json.dumps(material, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def build_experiment(
    protocol: str,
    network_config: NetworkConfig,
    duration: float,
    workload: WorkloadSpec | None = None,
    node_config: NodeConfig | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    warmup: float = 0.0,
    adversary: AdversarySpec | None = None,
    recorder: "TraceRecorder | None" = None,
    span_recorder=None,
    profiler=None,
    max_epochs: int | None = None,
    meta: dict | None = None,
) -> SimulationState:
    """Build phase: construct the full simulation graph, ready to run.

    Everything :func:`run_experiment` used to assemble inline now lands in a
    :class:`~repro.sim.snapshot.SimulationState`, so a fresh build and a
    restored checkpoint drive the exact same run/summarise phases.
    Construction order (nodes, adversary replacements, generators,
    ``network.start()``, recorder attach) is part of the determinism
    contract: it fixes the initial sequence numbers.
    """
    workload = workload or WorkloadSpec()
    node_config = node_config or NodeConfig()
    params = params or ProtocolParams.for_n(network_config.num_nodes)
    if params.n != network_config.num_nodes:
        raise ValueError(
            f"params.n={params.n} does not match network nodes={network_config.num_nodes}"
        )
    if duration <= warmup:
        raise ValueError("duration must exceed warmup")

    sim = Simulator()
    network = Network(sim, network_config)
    collector = MetricsCollector(params.n)
    nodes = build_nodes(
        protocol, params, network, node_config, collector, max_epochs=max_epochs
    )

    silent: frozenset[int] = frozenset()
    placement: tuple[int, ...] = ()
    if adversary is not None and adversary.kind != "none":
        factory = get_adversary(adversary.kind)
        placement = adversary.placement(params.n)
        for node_id in placement:
            replacement = factory(nodes[node_id], sim, adversary)
            network.attach(node_id, replacement)
            if isinstance(replacement, BFTNodeBase):
                nodes[node_id] = replacement
        if adversary.silent_from_start:
            silent = frozenset(placement)

    generators = []
    for node in nodes:
        if node.node_id in silent:
            continue  # no client feeds a node that is dead from the start
        generator = WORKLOADS[workload.kind](sim, node, workload, seed)
        generators.append(generator)
        sim.schedule(0.0, generator.start)

    network.start()
    if recorder is not None:
        recorder.attach(sim, network, nodes, collector)
    if span_recorder is not None:
        span_recorder.attach(sim, network, nodes)
    if profiler is not None:
        sim.profiler = profiler
    return SimulationState(
        fingerprint=_experiment_fingerprint(
            protocol,
            network_config,
            duration,
            workload,
            node_config,
            params,
            seed,
            warmup,
            adversary,
            max_epochs,
        ),
        protocol=protocol,
        duration=duration,
        warmup=warmup,
        seed=seed,
        sim=sim,
        network=network,
        collector=collector,
        nodes=nodes,
        generators=generators,
        recorder=recorder,
        adversary=adversary,
        placement=placement,
        spans=span_recorder,
        meta=dict(meta or {}),
    )


def _finish_experiment(
    state: SimulationState,
    checkpoint_every: float | None = None,
    checkpoint_path: str | Path | None = None,
) -> ExperimentResult:
    """Run phase + summarise phase, shared by fresh runs and resumes."""
    if checkpoint_every is not None:
        if checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        CheckpointTimer(state, checkpoint_path, checkpoint_every).arm()
    state.sim.run(until=state.duration)
    if state.recorder is not None:
        state.recorder.finish(state.nodes, adversarial=state.placement)
    spans = getattr(state, "spans", None)
    if spans is not None:
        spans.finish()
    return summarise_experiment(state)


def summarise_experiment(state: SimulationState) -> ExperimentResult:
    """Summarise phase: a pure function of the post-run simulation state."""
    collector = state.collector
    nodes = state.nodes
    block_sizes = [
        size for metrics in collector.per_node for size in metrics.proposed_block_sizes
    ]
    mean_block_size = sum(block_sizes) / len(block_sizes) if block_sizes else 0.0
    adversary_metrics: dict = {}
    if state.adversary is not None and state.adversary.kind != "none":
        adversary_metrics = _adversary_metrics(
            state.adversary, state.placement, nodes, collector
        )
    return ExperimentResult(
        protocol=state.protocol,
        num_nodes=len(nodes),
        duration=state.duration,
        throughputs=collector.throughputs(state.duration, warmup=state.warmup),
        latency_local=collector.latency_summaries(local_only=True),
        latency_all=collector.latency_summaries(local_only=False),
        dispersal_fractions=[stats.dispersal_fraction for stats in state.network.stats],
        timelines=collector.timelines(),
        delivered_epochs=[node.delivered_epoch for node in nodes],
        current_epochs=[node.current_epoch for node in nodes],
        mean_block_size=mean_block_size,
        events_processed=state.sim.processed_events,
        tx_generated=sum(generator.generated for generator in state.generators),
        tx_confirmed_per_node=[
            metrics.confirmed_transactions for metrics in collector.per_node
        ],
        adversary_metrics=adversary_metrics,
    )


def resume_experiment(
    source: SimulationState | str | Path,
    checkpoint_every: float | None = UNSET,
    checkpoint_path: str | Path | None = UNSET,
    *,
    options: ExecutionOptions | None = None,
) -> tuple[SimulationState, ExperimentResult]:
    """Continue a checkpointed experiment to completion.

    ``source`` is a checkpoint file path (or an already-loaded
    :class:`SimulationState`).  The restored state runs to its recorded
    ``duration`` and is summarised exactly as an uninterrupted run would be.
    Set ``options.checkpoint_every`` / ``options.checkpoint_path`` to keep
    checkpointing while the resumed run executes (the loose keywords of the
    same names are deprecated shims).  A restored state is consumed by
    running it; load the file again for another continuation.
    """
    opts = merge_deprecated_kwargs(
        options,
        "resume_experiment",
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
    if isinstance(source, SimulationState):
        state = source
    else:
        state = load_checkpoint(source)
    return state, _finish_experiment(state, opts.checkpoint_every, opts.checkpoint_path)


def run_experiment(
    protocol: str,
    network_config: NetworkConfig,
    duration: float,
    workload: WorkloadSpec | None = None,
    node_config: NodeConfig | None = None,
    params: ProtocolParams | None = None,
    seed: int = 0,
    warmup: float = 0.0,
    adversary: AdversarySpec | None = None,
    recorder: "TraceRecorder | None" = UNSET,
    max_epochs: int | None = None,
    checkpoint_every: float | None = UNSET,
    checkpoint_path: str | Path | None = UNSET,
    checkpoint_meta: dict | None = UNSET,
    resume_from: SimulationState | str | Path | None = UNSET,
    *,
    options: ExecutionOptions | None = None,
) -> ExperimentResult:
    """Run one protocol on one simulated network and summarise the outcome.

    Execution strategy (recorder attachment, periodic checkpointing, resume)
    comes in through ``options``; the loose ``recorder`` /
    ``checkpoint_every`` / ``checkpoint_path`` / ``checkpoint_meta`` /
    ``resume_from`` keywords are deprecated shims for it.

    Args:
        protocol: a registered protocol name (``"dl"``, ``"dl-coupled"``,
            ``"hb"``, ``"hb-link"``, or anything added via
            :func:`register_protocol`).
        network_config: the simulated WAN (delays + bandwidth traces).
        duration: virtual seconds to simulate.
        workload: offered load (defaults to a saturating workload).
        node_config: node behaviour knobs (defaults to the virtual data plane
            with the paper's Nagle parameters).
        params: protocol parameters (defaults to the maximum-``f`` setting
            for the network's node count).
        seed: seed for the workload generators.
        warmup: virtual seconds excluded from the throughput denominator
            (ramp-up of the first epochs).
        adversary: which nodes misbehave and how (defaults to none).  The
            placed nodes are replaced on the wire by the registered faulty
            process; when the factory returns a full node (the node-class
            adversaries ``censor`` and ``equivocate``), the replacement also
            takes the honest node's place in the cluster, so it receives the
            client workload and its epoch frontiers feed the result.
            Per-node metrics (zero throughput for silent nodes) stay in the
            result so summaries remain index-aligned with the cluster.
        recorder: optional :class:`~repro.trace.recorder.TraceRecorder` that
            samples per-node link and protocol state while the run executes
            and derives per-epoch rows afterwards.  Recording is
            behaviour-neutral: the sampling callbacks are uncounted internal
            events that only read state, so the returned result is identical
            with or without it.
        max_epochs: stop proposing new blocks after this many epochs
            (``None`` = propose for the whole run).  Bounded-work runs (the
            million-transaction benchmarks) use this to commit a known
            transaction count and then let the run drain.
        checkpoint_every: write a ``repro-ckpt-v1`` checkpoint to
            ``checkpoint_path`` every this many virtual seconds.
            Checkpointing rides on uncounted internal callbacks, so event
            counts and summaries are byte-identical with it on or off.
        checkpoint_path: where the (single, overwritten) checkpoint file
            lives; required when ``checkpoint_every`` is set.
        checkpoint_meta: opaque scenario metadata stored inside the
            checkpoint (the scenario engine passes its spec here so the
            ``resume`` CLI can rebuild a full summary).
        resume_from: continue from a checkpoint — a file path or an
            already-loaded :class:`SimulationState` — instead of building a
            fresh simulation.  The other arguments must describe the *same*
            scenario: the stored fingerprint is checked and a
            :class:`SnapshotError` is raised for a foreign-scenario restore.
    """
    opts = merge_deprecated_kwargs(
        options,
        "run_experiment",
        recorder=recorder,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        checkpoint_meta=checkpoint_meta,
        resume_from=resume_from,
    )
    if opts.resume_from is not None:
        workload = workload or WorkloadSpec()
        node_config = node_config or NodeConfig()
        params = params or ProtocolParams.for_n(network_config.num_nodes)
        expected = _experiment_fingerprint(
            protocol,
            network_config,
            duration,
            workload,
            node_config,
            params,
            seed,
            warmup,
            adversary,
            max_epochs,
        )
        if isinstance(opts.resume_from, SimulationState):
            state = opts.resume_from
        else:
            state = load_checkpoint(opts.resume_from, expect_fingerprint=expected)
        if state.fingerprint != expected:
            raise SnapshotError(
                f"checkpoint fingerprint {state.fingerprint!r} does not match "
                f"this scenario ({expected!r}); refusing a foreign-scenario "
                "restore"
            )
        if opts.profiler is not None:
            state.sim.profiler = opts.profiler
    else:
        state = build_experiment(
            protocol,
            network_config,
            duration,
            workload=workload,
            node_config=node_config,
            params=params,
            seed=seed,
            warmup=warmup,
            adversary=adversary,
            recorder=opts.recorder,
            span_recorder=opts.span_recorder,
            profiler=opts.profiler,
            max_epochs=max_epochs,
            meta=opts.checkpoint_meta,
        )
    return _finish_experiment(state, opts.checkpoint_every, opts.checkpoint_path)


def _adversary_metrics(
    adversary: AdversarySpec,
    placement: tuple[int, ...],
    nodes: Sequence[BFTNodeBase],
    collector: MetricsCollector,
) -> dict:
    """Summarise how the cluster fared *against* the placed adversary.

    Everything here derives from virtual time and honest-node ledgers, so
    the values are deterministic and safe for the golden-summary snapshots.
    """
    adversarial = set(placement)
    honest = [node for node in nodes if node.node_id not in adversarial]
    metrics: dict = {
        "adversary_kind": adversary.kind,
        "adversary_nodes": list(placement),
    }
    if adversary.kind == "censor":
        victim = adversary.victim
        latency = collector.per_node[victim].latency_summary(local_only=True)
        delays: list[int] = []
        linked = 0
        for node in honest:
            for entry in node.ledger.entries:
                if entry.proposer != victim:
                    continue
                delays.append(entry.delivered_in_epoch - entry.epoch)
                if entry.via_linking:
                    linked += 1
        metrics.update(
            {
                "victim": victim,
                "victim_commit_p50": None if latency is None else latency.p50,
                "victim_inclusion_delay": (
                    sum(delays) / len(delays) if delays else None
                ),
                "victim_linked_fraction": linked / len(delays) if delays else None,
            }
        )
    if adversary.kind == "equivocate":
        bad_epochs = [
            entry.epoch
            for node in honest
            for entry in node.ledger.entries
            if entry.proposer in adversarial and entry.block.label == "BAD_UPLOADER"
        ]
        metrics.update(
            {
                "equivocation_detected_epoch": min(bad_epochs, default=None),
                "bad_uploader_deliveries": len(bad_epochs),
            }
        )
    return metrics


def run_protocol_comparison(
    protocols: Sequence[str],
    network_config: NetworkConfig,
    duration: float,
    workload: WorkloadSpec | None = None,
    node_config: NodeConfig | None = None,
    seed: int = 0,
    warmup: float = 0.0,
    adversary: AdversarySpec | None = None,
) -> dict[str, ExperimentResult]:
    """Run several protocols on identical network conditions and workloads."""
    results = {}
    for protocol in protocols:
        results[protocol] = run_experiment(
            protocol,
            network_config,
            duration,
            workload=workload,
            node_config=node_config,
            seed=seed,
            warmup=warmup,
            adversary=adversary,
        )
    return results
