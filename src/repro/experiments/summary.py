"""Headline numbers of the paper (S1 / S6.2).

The abstract and introduction summarise the evaluation as: on the
geo-distributed deployment DispersedLedger achieves ~2x (105%) higher
throughput and ~74% lower latency than HoneyBadger, with inter-node linking
alone contributing ~45% throughput and the retrieval decoupling a further
~41%; DL-Coupled gives up ~12% of DL's throughput.  This module derives the
same ratios from a geo run plus a latency comparison so the benchmark
harness can print a "paper vs reproduction" table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.geo import GeoResult, run_geo_throughput
from repro.experiments.latency import LatencySweepResult, run_latency_sweep
from repro.workload.cities import AWS_CITIES


@dataclass(frozen=True)
class HeadlineNumbers:
    """The reproduction's counterparts of the paper's headline claims."""

    #: Mean DL throughput / mean HB throughput - 1 (paper: ~1.05, i.e. ~2x).
    dl_over_hb: float
    #: Mean HB-Link throughput / mean HB throughput - 1 (paper: ~0.45).
    linking_over_hb: float
    #: Mean DL throughput / mean HB-Link throughput - 1 (paper: ~0.41).
    dl_over_hb_link: float
    #: 1 - DL-Coupled / DL mean throughput (paper: ~0.12), None if not run.
    coupled_penalty: float | None
    #: 1 - DL median latency / HB median latency at the comparison load
    #: (paper: ~0.74 reduction), None if the latency sweep was not run.
    latency_reduction: float | None

    def as_dict(self) -> dict[str, float | None]:
        return {
            "dl_over_hb": self.dl_over_hb,
            "linking_over_hb": self.linking_over_hb,
            "dl_over_hb_link": self.dl_over_hb_link,
            "coupled_penalty": self.coupled_penalty,
            "latency_reduction": self.latency_reduction,
        }


def headline_from_results(
    geo: GeoResult, latency: LatencySweepResult | None = None
) -> HeadlineNumbers:
    """Derive the headline ratios from already-run experiments."""
    dl_over_hb = geo.improvement_over("dl", "hb")
    linking_over_hb = geo.improvement_over("hb-link", "hb")
    dl_over_hb_link = geo.improvement_over("dl", "hb-link")
    coupled_penalty = None
    if "dl-coupled" in geo.results:
        dl = geo.results["dl"].mean_throughput
        coupled = geo.results["dl-coupled"].mean_throughput
        coupled_penalty = None if dl == 0 else 1.0 - coupled / dl

    latency_reduction = None
    if latency is not None and "dl" in latency.points and "hb" in latency.points:
        # Compare the median local-transaction latency averaged over nodes at
        # the highest common load of the sweep.
        dl_point = latency.points["dl"][-1]
        hb_point = latency.points["hb"][-1]
        dl_medians = [s.p50 for s in dl_point.local if s is not None]
        hb_medians = [s.p50 for s in hb_point.local if s is not None]
        if dl_medians and hb_medians:
            dl_median = sum(dl_medians) / len(dl_medians)
            hb_median = sum(hb_medians) / len(hb_medians)
            if hb_median > 0:
                latency_reduction = 1.0 - dl_median / hb_median

    return HeadlineNumbers(
        dl_over_hb=dl_over_hb,
        linking_over_hb=linking_over_hb,
        dl_over_hb_link=dl_over_hb_link,
        coupled_penalty=coupled_penalty,
        latency_reduction=latency_reduction,
    )


def run_headline_summary(
    duration: float = 45.0,
    latency_loads: tuple[float, ...] = (1_000_000.0, 4_000_000.0),
    latency_duration: float = 30.0,
    seed: int = 0,
) -> HeadlineNumbers:
    """Run the geo throughput comparison and a short latency sweep, then summarise."""
    geo = run_geo_throughput(cities=AWS_CITIES, duration=duration, seed=seed)
    latency = run_latency_sweep(
        loads=latency_loads, duration=latency_duration, seed=seed
    )
    return headline_from_results(geo, latency)
