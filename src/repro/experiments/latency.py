"""Fig. 10 and Fig. 14 — confirmation latency under varying offered load.

Fig. 10 sweeps the per-node offered load and reports the median (with 5th /
95th percentile error bars) confirmation latency of *local* transactions at
two representative servers: one well-connected ("Ohio") and one with limited
connectivity ("Mumbai").  The paper's shape: HoneyBadger's latency grows
roughly linearly with load because proposing and confirming an epoch happen
in lockstep (so blocks, and therefore epochs, keep growing); DispersedLedger
stays near-flat until very high load.

Fig. 14 (Appendix A.1) justifies the local-transaction metric by comparing
latency computed over all transactions vs local-only at systems running
near capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NodeConfig
from repro.experiments.engine import run_scenario
from repro.experiments.runner import ExperimentResult, WorkloadSpec
from repro.experiments.scenario import ScenarioSpec, TopologySpec, apply_overrides
from repro.metrics.stats import Summary
from repro.workload.cities import AWS_CITIES, CityProfile, testbed_name

#: Index of the well-connected server highlighted in Fig. 10.
FAST_CITY = "Ohio"
#: Index of the poorly-connected server highlighted in Fig. 10.
SLOW_CITY = "Mumbai"


def city_index(cities: tuple[CityProfile, ...], name: str) -> int:
    """The index of the city called ``name`` in a testbed profile."""
    for index, city in enumerate(cities):
        if city.name == name:
            return index
    raise KeyError(f"no city named {name!r}")


@dataclass
class LatencyPoint:
    """Latency summaries of one protocol at one offered load."""

    protocol: str
    load_bytes_per_second: float
    #: Per-node local-transaction latency summaries.
    local: list[Summary | None]
    #: Per-node all-transaction latency summaries.
    all_tx: list[Summary | None]
    mean_throughput: float
    mean_block_size: float

    def median_at(self, node: int, local_only: bool = True) -> float | None:
        summary = (self.local if local_only else self.all_tx)[node]
        return None if summary is None else summary.p50

    def tail_at(self, node: int, q: str = "p95", local_only: bool = True) -> float | None:
        summary = (self.local if local_only else self.all_tx)[node]
        return None if summary is None else getattr(summary, q)


@dataclass
class LatencySweepResult:
    """Fig. 10 data: latency of each protocol across a load sweep."""

    cities: tuple[CityProfile, ...]
    loads: tuple[float, ...]
    points: dict[str, list[LatencyPoint]]

    def series(self, protocol: str, node: int, local_only: bool = True) -> list[tuple[float, float | None]]:
        """``(load, median latency)`` pairs for one node (one line of Fig. 10)."""
        return [
            (point.load_bytes_per_second, point.median_at(node, local_only))
            for point in self.points[protocol]
        ]


def run_latency_sweep(
    loads: tuple[float, ...] = (1_000_000.0, 3_000_000.0, 6_000_000.0),
    protocols: tuple[str, ...] = ("dl", "hb"),
    cities: tuple[CityProfile, ...] = AWS_CITIES,
    duration: float = 40.0,
    warmup: float = 5.0,
    seed: int = 0,
) -> LatencySweepResult:
    """Sweep per-node offered load and record confirmation latency (Fig. 10).

    The sweep is a protocol x load grid over one declarative base scenario.
    """
    base = ScenarioSpec(
        name="latency-sweep",
        topology=TopologySpec(kind="cities", testbed=testbed_name(tuple(cities))),
        workload=WorkloadSpec(kind="poisson"),
        node=NodeConfig(max_block_size=4_000_000),
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
    points: dict[str, list[LatencyPoint]] = {protocol: [] for protocol in protocols}
    for protocol in protocols:
        for load in loads:
            spec = apply_overrides(
                base,
                {"protocol": protocol, "workload.rate_bytes_per_second": load},
            )
            result = run_scenario(spec).result
            points[protocol].append(
                LatencyPoint(
                    protocol=protocol,
                    load_bytes_per_second=load,
                    local=result.latency_local,
                    all_tx=result.latency_all,
                    mean_throughput=result.mean_throughput,
                    mean_block_size=result.mean_block_size,
                )
            )
    return LatencySweepResult(cities=cities, loads=tuple(loads), points=points)


@dataclass
class LatencyMetricComparison:
    """Fig. 14 data: all-transaction vs local-transaction latency near capacity."""

    protocol: str
    load_bytes_per_second: float
    result: ExperimentResult

    def table(self) -> list[dict[str, float | int | None]]:
        rows = []
        for node in range(self.result.num_nodes):
            local = self.result.latency_local[node]
            all_tx = self.result.latency_all[node]
            rows.append(
                {
                    "node": node,
                    "local_p50": None if local is None else local.p50,
                    "local_p95": None if local is None else local.p95,
                    "all_p50": None if all_tx is None else all_tx.p50,
                    "all_p95": None if all_tx is None else all_tx.p95,
                }
            )
        return rows


def run_latency_metric_comparison(
    protocol: str,
    load_bytes_per_second: float,
    cities: tuple[CityProfile, ...] = AWS_CITIES,
    duration: float = 40.0,
    warmup: float = 5.0,
    seed: int = 0,
) -> LatencyMetricComparison:
    """Run one protocol near capacity and compare the two latency metrics (Fig. 14)."""
    spec = ScenarioSpec(
        name="latency-metric-comparison",
        protocol=protocol,
        topology=TopologySpec(kind="cities", testbed=testbed_name(tuple(cities))),
        workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=load_bytes_per_second),
        node=NodeConfig(max_block_size=4_000_000),
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
    result = run_scenario(spec).result
    return LatencyMetricComparison(
        protocol=protocol, load_bytes_per_second=load_bytes_per_second, result=result
    )
