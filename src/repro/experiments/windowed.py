"""Windowed parallel execution: checkpoint hand-off across worker processes.

A monolithic sweep point simulates its whole horizon ``[0, T)`` in one
process.  This engine splits the horizon into ``W`` windows and executes
them via ``repro-ckpt-v1`` checkpoint hand-off: a window can restore the
state another process left at the previous boundary and continue.  Because
restoring a checkpoint and continuing is bit-identical to never having
stopped (the PR-7 snapshot contract), the chained windows produce exactly
the bytes of the monolithic run — same summaries, same telemetry rows —
while unlocking two sources of real parallelism on a sweep:

* **Pipelining** — window chains of *different* points are independent
  tasks, so point A runs its later windows while point B is still in its
  first.  Even a two-point sweep keeps two workers busy for most of the
  wall clock.
* **A shared-prefix checkpoint tree** — sweep points that provably agree on
  a prefix of the horizon (same seed, topology, trace and workload;
  differing only in knobs that act *after* some window boundary or only at
  summary time) run that prefix once.  The followers fork the leader's
  checkpoint at the **deepest boundary they still agree on**, re-aim the
  late-acting knobs (:func:`_refit_forked_state`), and continue as
  themselves.  A sweep over summary-time-only knobs (warmup) shares every
  window but the last: four such points cost ``1 + 3/W`` monolithic runs
  instead of ``4`` — a real speedup even on a single core.

Eligibility is decided per boundary by :func:`prefix_key`, a digest of the
spec with exactly the proven-inert fields neutralised: ``warmup`` /
``warmup_fraction`` (summary-time only), ``checkpoint_every`` (subsumed by
the hand-off checkpoints, which this engine ignores by design), and
``workload.stop_after`` when it acts strictly *after* the boundary (every
generator checks ``_stop_at`` at event-fire time, and events at exactly a
boundary run inside the earlier window, so the guard must be strict).
Everything else — notably ``adversary.crash_time``, whose timer event sits
in the heap with its absolute firing time from construction — keeps points
in separate trees.

Windows are the planning unit, but consecutive windows of one point with no
fork demand between them execute **fused** in a single worker: the state
stays live in the process, checkpoints are written only at boundaries some
follower forks from (plus nothing at all for an unshared point), and the
same-point save/load round-trip that a naive one-task-per-window plan pays
at every boundary disappears.  A leader's chain is still split right after
its last forked boundary, so followers start the moment the shared prefix
is on disk rather than when the leader finishes.

Telemetry stitching: the recorder rides inside the live state.  At each
window boundary the rows accumulated during that window are written to a
per-window JSONL segment and cleared; the final window appends the post-run
rows (:meth:`TraceRecorder.finish`) before writing its own segment.
Byte-concatenating a point's segments in window order (a forked point
reuses its leader's segments for every shared window) reproduces the
monolithic JSONL file byte for byte.

Entry point: :func:`run_windowed_sweep`, reached through
``sweep(..., options=ExecutionOptions(windows=W))`` or the CLI's
``run --windows W``.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.common.errors import ConfigurationError
from repro.experiments.engine import (
    ScenarioResult,
    SweepResult,
    default_workers,
    span_filename,
    telemetry_filename,
)
from repro.experiments.options import ExecutionOptions
from repro.experiments.runner import (
    _experiment_fingerprint,
    build_experiment,
    summarise_experiment,
)
from repro.experiments.scenario import (
    Grid,
    ScenarioSpec,
    build_network_config,
    expand_grid,
)
from repro.sim.snapshot import SimulationState, load_checkpoint, save_checkpoint
from repro.trace.recorder import TraceRecorder
from repro.trace.spans import SpanRecorder

__all__ = [
    "plan_windowed_points",
    "prefix_key",
    "run_windowed_sweep",
    "window_boundaries",
]


def window_boundaries(duration: float, windows: int) -> tuple[float, ...]:
    """The end time of each window: ``W`` strictly increasing values, last ``== duration``.

    The last boundary is ``duration`` itself (not a rounded quotient), so the
    final window runs to exactly the horizon a monolithic run uses.
    """
    if windows < 1:
        raise ConfigurationError("windows must be >= 1")
    bounds = [duration * step / windows for step in range(1, windows)]
    bounds.append(duration)
    if bounds[0] <= 0 or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        raise ConfigurationError(
            f"duration {duration} cannot be split into {windows} distinct windows"
        )
    return tuple(bounds)


def prefix_key(spec: ScenarioSpec, boundary: float) -> str:
    """A digest of everything that shapes the spec's event stream up to ``boundary``.

    Two points with equal keys run byte-identical simulations up to (and
    including) ``boundary``, so they can share one execution of that prefix.
    Only fields proven inert during the run are neutralised; any new spec
    field is prefix-relevant by default, which can only cost sharing, never
    correctness.
    """
    material = spec.to_dict()
    # Summary-time only: the warmup enters the throughput denominator after
    # the run, never the event stream.
    material["warmup"] = None
    material["warmup_fraction"] = None
    # The windowed engine ignores periodic checkpointing: the hand-off
    # checkpoints subsume it, and it is behaviour-neutral either way.
    material["checkpoint_every"] = None
    workload = dict(material["workload"])
    stop_after = workload.get("stop_after")
    if stop_after is None or stop_after > boundary:
        # The client cut-off acts at event-fire time, and events at exactly
        # the boundary run inside the earlier window — hence the strict
        # comparison: a cut at the boundary itself already changes the
        # prefix.
        workload["stop_after"] = "after-boundary"
    material["workload"] = workload
    blob = json.dumps(material, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class PointPlan:
    """How one sweep point runs under the windowed engine."""

    index: int
    spec: ScenarioSpec
    overrides: dict[str, Any]
    boundaries: tuple[float, ...]
    #: Point whose checkpoint this point forks (``None`` = this point is a
    #: leader and executes its whole chain from window 0 itself).
    leader: int | None
    #: First window this point executes itself: 0 for a leader, otherwise
    #: the deepest window at whose *start* boundary the point still agrees
    #: with its leader — windows ``[0, fork_window)`` are reused.
    fork_window: int = 0

    @property
    def first_window(self) -> int:
        return self.fork_window


def plan_windowed_points(
    points: list[tuple[dict[str, Any], ScenarioSpec]], windows: int
) -> list[PointPlan]:
    """Group expanded grid points into shared-prefix trees.

    Points are keyed by :func:`prefix_key` at every non-final boundary; the
    first point of each window-0 group (in grid order) becomes the leader,
    and later members fork its chain at the deepest boundary where their
    keys still agree.  With a single window there is nothing to share —
    every point leads its own chain.
    """
    plans: list[PointPlan] = []
    leaders: dict[str, tuple[int, tuple[str, ...]]] = {}
    for index, (overrides, spec) in enumerate(points):
        if spec.kind != "sim":
            raise ConfigurationError(
                "windowed execution requires sim scenarios; point "
                f"{index} has analytic kind {spec.kind!r}"
            )
        boundaries = window_boundaries(spec.duration, windows)
        leader: int | None = None
        fork_window = 0
        if windows > 1:
            # One key per shareable boundary (the final boundary is the end
            # of the run: there is no later window left to fork into).
            keys = tuple(prefix_key(spec, b) for b in boundaries[:-1])
            known = leaders.get(keys[0])
            if known is None:
                leaders[keys[0]] = (index, keys)
            else:
                leader, leader_keys = known
                depth = 0
                while depth < len(keys) and keys[depth] == leader_keys[depth]:
                    depth += 1
                fork_window = depth
        plans.append(
            PointPlan(
                index=index,
                spec=spec,
                overrides=dict(overrides),
                boundaries=boundaries,
                leader=leader,
                fork_window=fork_window,
            )
        )
    return plans


@dataclass(frozen=True)
class _SegmentTask:
    """One unit of work: run windows ``start..end`` of one point in one process."""

    point: int
    start: int
    end: int
    spec: ScenarioSpec
    overrides: dict[str, Any]
    boundaries: tuple[float, ...]
    #: Checkpoint to restore (``None`` = build the simulation fresh).
    source: str | None
    #: Restored state belongs to the prefix leader; re-aim it at this point.
    fork: bool
    #: Hand-off checkpoint to write after ``end`` (``None`` for the final
    #: segment, whose last window ends the run).
    out_checkpoint: str | None
    #: Per-window telemetry segment paths, parallel to ``start..end``
    #: (``None`` when telemetry is off).
    segments: tuple[str, ...] | None
    #: Per-window span-log segment paths, parallel to ``start..end``
    #: (``None`` when span recording is off).
    span_segments: tuple[str, ...] | None


def _refit_forked_state(
    state: SimulationState, spec: ScenarioSpec, overrides: dict[str, Any]
) -> None:
    """Re-aim a shared prefix checkpoint at a sibling sweep point.

    Only fields :func:`prefix_key` neutralises may differ between the leader
    and this point, and each has exactly one home in the live state: the
    warmup (summarise input), the generators' ``_stop_at`` cursor (declared
    in every generator's ``_SNAPSHOT_FIELDS``), and the scenario metadata +
    fingerprint the checkpoint envelope carries forward.
    """
    state.warmup = spec.effective_warmup()
    for generator in state.generators:
        generator._stop_at = spec.workload.stop_after
    state.fingerprint = _experiment_fingerprint(
        spec.protocol,
        build_network_config(spec),
        spec.duration,
        spec.workload,
        spec.node,
        spec.params(),
        spec.seed,
        spec.effective_warmup(),
        spec.adversary,
        spec.max_epochs,
    )
    state.meta = {"spec": spec.to_dict(), "overrides": dict(overrides)}


def _execute_segment(task: _SegmentTask) -> dict[str, Any]:
    """Run one chain segment; runs in a worker process (everything crosses as pickles)."""
    started = time.perf_counter()
    spec = task.spec
    if task.source is None:
        recorder = (
            TraceRecorder(interval=spec.telemetry.interval)
            if spec.telemetry.enabled
            else None
        )
        span_recorder = SpanRecorder() if spec.spans.enabled else None
        state = build_experiment(
            spec.protocol,
            build_network_config(spec),
            spec.duration,
            workload=spec.workload,
            node_config=spec.node,
            params=spec.params(),
            seed=spec.seed,
            warmup=spec.effective_warmup(),
            adversary=spec.adversary,
            recorder=recorder,
            span_recorder=span_recorder,
            max_epochs=spec.max_epochs,
            meta={"spec": spec.to_dict(), "overrides": dict(task.overrides)},
        )
    else:
        state = load_checkpoint(task.source)
        if task.fork:
            _refit_forked_state(state, spec, task.overrides)
    result = None
    last = len(task.boundaries) - 1
    spans = getattr(state, "spans", None)
    for window in range(task.start, task.end + 1):
        state.sim.run(until=task.boundaries[window])
        if window == last and state.recorder is not None:
            # Post-run rows (commit totals, adversary deliveries) belong to
            # the final window's segment.
            state.recorder.finish(state.nodes, adversarial=state.placement)
        if task.segments is not None:
            state.recorder.write_jsonl(task.segments[window - task.start])
            # The next window must record only its own rows; on hand-off the
            # cleared list rides forward inside the checkpoint.
            state.recorder.rows.clear()
        if window == last and spans is not None:
            # Drop aborted (never-closed) spans before the final segment,
            # exactly as the monolithic finish does.
            spans.finish()
        if task.span_segments is not None:
            spans.write_jsonl(task.span_segments[window - task.start])
            spans.rows.clear()
    if task.end == last:
        result = summarise_experiment(state)
    else:
        save_checkpoint(task.out_checkpoint, state)
    return {
        "point": task.point,
        "start": task.start,
        "end": task.end,
        "result": result,
        "wall_clock_seconds": time.perf_counter() - started,
    }


def _build_tasks(
    plans: list[PointPlan], work_dir: Path
) -> tuple[dict[tuple[int, int], _SegmentTask], dict[tuple[int, int], tuple[int, int] | None]]:
    """Materialise the task graph: maximal fused segments, each with ≤ 1 dependency.

    A point's chain is cut only where a checkpoint must exist: after any
    window some follower forks from.  Every other boundary is crossed
    in-process, so an unshared point is exactly one task with no
    checkpoint I/O at all.
    """

    def ckpt(index: int, window: int) -> str:
        return str(work_dir / f"point{index:04d}-w{window}.ckpt")

    def seg(index: int, window: int) -> str:
        return str(work_dir / f"point{index:04d}-w{window}.jsonl")

    def span_seg(index: int, window: int) -> str:
        return str(work_dir / f"point{index:04d}-w{window}.spans.jsonl")

    # Windows whose end-of-window checkpoint some follower forks from.
    demanded: dict[int, set[int]] = {}
    for plan in plans:
        if plan.leader is not None:
            demanded.setdefault(plan.leader, set()).add(plan.fork_window - 1)

    tasks: dict[tuple[int, int], _SegmentTask] = {}
    deps: dict[tuple[int, int], tuple[int, int] | None] = {}
    # Task that writes the checkpoint at the end of (point, window).
    producer: dict[tuple[int, int], tuple[int, int]] = {}
    for plan in plans:
        last = len(plan.boundaries) - 1
        telemetry = plan.spec.telemetry.enabled
        spans_on = plan.spec.spans.enabled
        cuts = sorted(w for w in demanded.get(plan.index, ()) if w < last)
        starts = [plan.first_window] + [w + 1 for w in cuts if w + 1 <= last]
        for start, nxt in zip(starts, starts[1:] + [last + 1]):
            end = nxt - 1
            if start == plan.first_window and plan.leader is not None:
                source: str | None = ckpt(plan.leader, plan.fork_window - 1)
                fork = True
            elif start == 0:
                source, fork = None, False
            else:
                source, fork = ckpt(plan.index, start - 1), False
            key = (plan.index, start)
            tasks[key] = _SegmentTask(
                point=plan.index,
                start=start,
                end=end,
                spec=plan.spec,
                overrides=plan.overrides,
                boundaries=plan.boundaries,
                source=source,
                fork=fork,
                out_checkpoint=ckpt(plan.index, end) if end < last else None,
                segments=(
                    tuple(seg(plan.index, w) for w in range(start, end + 1))
                    if telemetry
                    else None
                ),
                span_segments=(
                    tuple(span_seg(plan.index, w) for w in range(start, end + 1))
                    if spans_on
                    else None
                ),
            )
            if end < last:
                producer[(plan.index, end)] = key
    for key, task in tasks.items():
        if task.source is None:
            deps[key] = None
        elif task.fork:
            plan = plans[task.point]
            deps[key] = producer[(plan.leader, plan.fork_window - 1)]
        else:
            deps[key] = producer[(task.point, task.start - 1)]
    return tasks, deps


def _execute_tasks(
    tasks: dict[tuple[int, int], _SegmentTask],
    deps: dict[tuple[int, int], tuple[int, int] | None],
    parallel: bool,
    workers: int,
) -> dict[tuple[int, int], dict[str, Any]]:
    """Run the task graph to completion, respecting hand-off dependencies."""
    order = sorted(tasks, key=lambda k: (k[1], k[0]))
    if not parallel or workers <= 1 or len(tasks) <= 1:
        # Start-window-major order is a topological order: every dependency
        # produces its checkpoint in a strictly earlier window.
        outcomes: dict[tuple[int, int], dict[str, Any]] = {}
        for key in order:
            outcomes[key] = _execute_segment(tasks[key])
        return outcomes
    outcomes = {}
    children: dict[tuple[int, int], list[tuple[int, int]]] = {}
    unmet: dict[tuple[int, int], int] = {}
    for key, dep in deps.items():
        unmet[key] = 0 if dep is None else 1
        if dep is not None:
            children.setdefault(dep, []).append(key)
    running: dict[tuple[int, int], Any] = {}
    with ProcessPoolExecutor(max_workers=workers) as executor:

        def submit_ready() -> None:
            for key in order:
                if key not in outcomes and key not in running and unmet[key] == 0:
                    running[key] = executor.submit(_execute_segment, tasks[key])

        submit_ready()
        while running:
            done, _ = wait(list(running.values()), return_when=FIRST_COMPLETED)
            for key, future in list(running.items()):
                if future in done:
                    outcomes[key] = future.result()
                    del running[key]
                    for child in children.get(key, ()):
                        unmet[child] -= 1
            submit_ready()
    return outcomes


def _stitch_telemetry(plan: PointPlan, work_dir: Path) -> str | None:
    """Byte-concatenate a point's window segments into its monolithic JSONL path."""
    if not plan.spec.telemetry.enabled:
        return None
    target = Path(plan.spec.telemetry.out_dir) / telemetry_filename(
        plan.spec, plan.overrides
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("wb") as out:
        for window in range(len(plan.boundaries)):
            owner = plan.leader if window < plan.fork_window else plan.index
            out.write((work_dir / f"point{owner:04d}-w{window}.jsonl").read_bytes())
    return str(target)


def _stitch_spans(plan: PointPlan, work_dir: Path) -> str | None:
    """Byte-concatenate a point's span segments into its monolithic JSONL path."""
    if not plan.spec.spans.enabled:
        return None
    target = Path(plan.spec.spans.out_dir) / span_filename(plan.spec, plan.overrides)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("wb") as out:
        for window in range(len(plan.boundaries)):
            owner = plan.leader if window < plan.fork_window else plan.index
            out.write((work_dir / f"point{owner:04d}-w{window}.spans.jsonl").read_bytes())
    return str(target)


def run_windowed_sweep(
    base: ScenarioSpec, grid: Grid | None, options: ExecutionOptions
) -> SweepResult:
    """Expand ``base`` over ``grid`` and run every point through window hand-off.

    Dispatched from :func:`repro.experiments.engine.sweep` when
    ``options.windows`` is set.  Summaries and telemetry files are
    byte-identical to the monolithic sweep; ``SweepResult.windows`` records
    the window count.  Per-point ``wall_clock_seconds`` is the summed wall
    clock of the point's own chain segments (a shared prefix is credited to
    its leader), so the work saved by the prefix tree is visible in the
    totals.
    """
    windows = options.windows
    if windows is None:
        raise ConfigurationError("run_windowed_sweep requires options.windows")
    started = time.perf_counter()
    grid_values = {key: list(values) for key, values in (grid or {}).items()}
    points = expand_grid(base, grid_values)
    plans = plan_windowed_points(points, windows)
    if options.window_dir is None:
        work_dir = Path(tempfile.mkdtemp(prefix="repro-windowed-"))
        cleanup = True
    else:
        work_dir = Path(options.window_dir)
        work_dir.mkdir(parents=True, exist_ok=True)
        cleanup = False
    try:
        tasks, deps = _build_tasks(plans, work_dir)
        workers = (
            options.workers if options.workers is not None else default_workers(len(points))
        )
        run_parallel = options.parallel and workers > 1 and len(tasks) > 1
        if not run_parallel:
            workers = 1
        outcomes = _execute_tasks(tasks, deps, run_parallel, workers)
        results: list[ScenarioResult] = []
        for plan in plans:
            own = sorted(
                (outcome for key, outcome in outcomes.items() if key[0] == plan.index),
                key=lambda outcome: outcome["start"],
            )
            results.append(
                ScenarioResult(
                    spec=plan.spec,
                    overrides=dict(plan.overrides),
                    result=own[-1]["result"],
                    wall_clock_seconds=sum(o["wall_clock_seconds"] for o in own),
                    telemetry_path=_stitch_telemetry(plan, work_dir),
                    span_path=_stitch_spans(plan, work_dir),
                )
            )
    finally:
        if cleanup:
            shutil.rmtree(work_dir, ignore_errors=True)
    return SweepResult(
        base=base,
        grid=grid_values,
        points=results,
        parallel=run_parallel,
        workers=workers,
        wall_clock_seconds=time.perf_counter() - started,
        windows=windows,
    )
