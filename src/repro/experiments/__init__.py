"""Experiment harness: the scenario engine plus one runner per paper figure.

The heart of this package is the **scenario engine**: declarative
:class:`ScenarioSpec` descriptions of a run (protocol, topology, bandwidth
model, adversary placement, workload, duration), a :func:`sweep` API that
expands parameter grids and runs points in parallel across processes, a
catalog of named scenarios, and one CLI entry point::

    python -m repro.experiments list
    python -m repro.experiments run fig08-geo

==================  =======================================================
Paper reference      Runner
==================  =======================================================
Fig. 2 (S3.2)        ``run fig02-vid-cost`` /
                     :func:`repro.experiments.fig02.vid_cost_curve`
Fig. 8 (S6.2)        ``run fig08-geo`` /
                     :func:`repro.experiments.geo.run_geo_throughput`
Fig. 9 (S6.2)        :func:`repro.experiments.geo.progress_timelines`
Fig. 10 (S6.2)       ``run fig10-latency`` /
                     :func:`repro.experiments.latency.run_latency_sweep`
Fig. 11a (S6.3)      ``run fig11a-spatial`` /
                     :func:`repro.experiments.controlled.run_spatial_variation`
Fig. 11b (S6.3)      ``run fig11b-temporal`` /
                     :func:`repro.experiments.controlled.run_temporal_variation`
Fig. 12 (S6.4)       ``run fig12-scalability`` /
                     :func:`repro.experiments.scalability.model_sweep`
Fig. 13 (S6.4)       same sweep (``dispersal_fraction`` field)
Fig. 14 (App. A.1)   :func:`repro.experiments.latency.run_latency_metric_comparison`
Fig. 15 (App. A.2)   ``run fig15-vultr`` /
                     :func:`repro.experiments.geo.run_vultr_throughput`
Fig. 16 (App. A.3)   :class:`repro.workload.traces.GaussMarkovProcess`
Headline (S1)        :func:`repro.experiments.summary.run_headline_summary`
==================  =======================================================

Beyond the paper, the catalog grows scenario coverage with bandwidth churn
(``bandwidth-flapping``), heavy-tailed stragglers (``straggler-hetero``),
crash-fault mixes (``adversary-crash-mix``), mid-run churn
(``mid-run-crash``), non-stationary workloads (``bursty-load``), Byzantine
node-class adversaries on the timed simulator (``censor-victim``,
``equivocate-split``, ``latency-fault-matrix``) and measured-bandwidth
replay (``trace-replay-wan``, ``trace-scale-sweep``, built on
:mod:`repro.trace` with bundled traces under ``traces/``); see
``docs/scenarios.md``.  ``run``/``show`` also take a path to a spec file
(curated ones under ``scenarios/``), every catalog scenario is pinned
bit-for-bit by the golden-summary suite (:mod:`repro.experiments.golden`,
snapshots in ``tests/golden/``; expensive scenarios live in a ``slow``
CI-only tier), and ``python -m repro.experiments trace
{inspect,convert,export}`` works with trace files and per-run telemetry.

The benchmark scripts under ``benchmarks/`` call these runners with reduced
default durations so that ``pytest benchmarks/ --benchmark-only`` completes
in minutes; every runner takes a ``duration`` argument for longer runs.
"""

from repro.experiments.catalog import (
    SCENARIOS,
    NamedScenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.experiments.controlled import run_spatial_variation, run_temporal_variation
from repro.experiments.engine import (
    ScenarioResult,
    SweepResult,
    run_scenario,
    sweep,
)
from repro.experiments.cli import load_spec_file
from repro.experiments.fig02 import measure_avid_m_dispersal_cost, vid_cost_curve
from repro.experiments.golden import canonical_json, golden_names, golden_payload
from repro.experiments.options import ExecutionOptions
from repro.experiments.geo import progress_timelines, run_geo_throughput, run_vultr_throughput
from repro.experiments.latency import run_latency_metric_comparison, run_latency_sweep
from repro.experiments.runner import (
    PROTOCOLS,
    WORKLOADS,
    ExperimentResult,
    WorkloadSpec,
    register_protocol,
    register_workload,
    run_experiment,
    run_protocol_comparison,
)
from repro.experiments.scenario import (
    BANDWIDTH_MODELS,
    BandwidthSpec,
    ScenarioSpec,
    TopologySpec,
    apply_override,
    apply_overrides,
    build_network_config,
    expand_grid,
    register_bandwidth_model,
)
from repro.experiments.scalability import model_sweep, simulate_point, validate_cost_model
from repro.experiments.summary import headline_from_results, run_headline_summary
from repro.experiments.windowed import run_windowed_sweep, window_boundaries

__all__ = [
    "BANDWIDTH_MODELS",
    "BandwidthSpec",
    "ExecutionOptions",
    "ExperimentResult",
    "NamedScenario",
    "PROTOCOLS",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepResult",
    "TopologySpec",
    "WORKLOADS",
    "WorkloadSpec",
    "apply_override",
    "apply_overrides",
    "build_network_config",
    "canonical_json",
    "expand_grid",
    "get_scenario",
    "golden_names",
    "golden_payload",
    "headline_from_results",
    "list_scenarios",
    "load_spec_file",
    "measure_avid_m_dispersal_cost",
    "model_sweep",
    "progress_timelines",
    "register_bandwidth_model",
    "register_protocol",
    "register_scenario",
    "register_workload",
    "run_experiment",
    "run_geo_throughput",
    "run_headline_summary",
    "run_latency_metric_comparison",
    "run_latency_sweep",
    "run_protocol_comparison",
    "run_scenario",
    "run_spatial_variation",
    "run_temporal_variation",
    "run_vultr_throughput",
    "run_windowed_sweep",
    "simulate_point",
    "sweep",
    "validate_cost_model",
    "vid_cost_curve",
    "window_boundaries",
]
