"""Experiment harness: one runner per figure of the paper's evaluation.

==================  =======================================================
Paper reference      Runner
==================  =======================================================
Fig. 2 (S3.2)        :func:`repro.experiments.fig02.vid_cost_curve`
Fig. 8 (S6.2)        :func:`repro.experiments.geo.run_geo_throughput`
Fig. 9 (S6.2)        :func:`repro.experiments.geo.progress_timelines`
Fig. 10 (S6.2)       :func:`repro.experiments.latency.run_latency_sweep`
Fig. 11a (S6.3)      :func:`repro.experiments.controlled.run_spatial_variation`
Fig. 11b (S6.3)      :func:`repro.experiments.controlled.run_temporal_variation`
Fig. 12 (S6.4)       :func:`repro.experiments.scalability.model_sweep` /
                     :func:`repro.experiments.scalability.simulate_point`
Fig. 13 (S6.4)       same sweep (``dispersal_fraction`` field)
Fig. 14 (App. A.1)   :func:`repro.experiments.latency.run_latency_metric_comparison`
Fig. 15 (App. A.2)   :func:`repro.experiments.geo.run_vultr_throughput`
Fig. 16 (App. A.3)   :class:`repro.workload.traces.GaussMarkovProcess`
Headline (S1)        :func:`repro.experiments.summary.run_headline_summary`
==================  =======================================================

The benchmark scripts under ``benchmarks/`` call these runners with reduced
default durations so that ``pytest benchmarks/ --benchmark-only`` completes
in minutes; every runner takes a ``duration`` argument for longer runs.
"""

from repro.experiments.controlled import run_spatial_variation, run_temporal_variation
from repro.experiments.fig02 import measure_avid_m_dispersal_cost, vid_cost_curve
from repro.experiments.geo import progress_timelines, run_geo_throughput, run_vultr_throughput
from repro.experiments.latency import run_latency_metric_comparison, run_latency_sweep
from repro.experiments.runner import (
    PROTOCOLS,
    ExperimentResult,
    WorkloadSpec,
    run_experiment,
    run_protocol_comparison,
)
from repro.experiments.scalability import model_sweep, simulate_point, validate_cost_model
from repro.experiments.summary import headline_from_results, run_headline_summary

__all__ = [
    "ExperimentResult",
    "PROTOCOLS",
    "WorkloadSpec",
    "headline_from_results",
    "measure_avid_m_dispersal_cost",
    "model_sweep",
    "progress_timelines",
    "run_experiment",
    "run_geo_throughput",
    "run_headline_summary",
    "run_latency_metric_comparison",
    "run_latency_sweep",
    "run_protocol_comparison",
    "run_spatial_variation",
    "run_temporal_variation",
    "run_vultr_throughput",
    "simulate_point",
    "validate_cost_model",
    "vid_cost_curve",
]
