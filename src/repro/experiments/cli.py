"""Command-line entry point for the scenario engine.

::

    python -m repro.experiments list
    python -m repro.experiments show fig08-geo
    python -m repro.experiments run fig08-geo --duration 30 --seed 1
    python -m repro.experiments run straggler-hetero --grid seed=0,1,2 --json
    python -m repro.experiments run bandwidth-flapping --set bandwidth.count=4 --serial
    python -m repro.experiments run scenarios/censor-victim.json
    python -m repro.experiments resume checkpoints/trace-replay-wan-base-seed0.ckpt
    python -m repro.experiments trace inspect traces/wan-measured.csv
    python -m repro.experiments trace export trace-replay-wan --out telemetry

``run`` and ``show`` accept either a catalog name or a path to a scenario
spec file (anything ending in ``.json`` or containing a path separator):
the file is parsed with :meth:`ScenarioSpec.from_json` and runs exactly like
a catalog entry with no grid — ``--set``/``--grid``/``--duration``/``--seed``
compose on top.  A malformed file produces a one-line error and exit status
2, never a traceback.  Curated spec files live in ``scenarios/``.

``run`` expands the named scenario's grid (extended by any ``--grid`` axes),
runs every point — in parallel across processes by default — and prints the
unified summary table.  ``--set`` overrides base-spec fields by dotted path;
values are parsed as JSON when possible (``--set workload.kind=bursty``
works too, falling back to the raw string).

``run``, ``sweep`` and ``resume`` share one execution-options group
(:func:`add_execution_options`): ``--checkpoint-every`` arms periodic
checkpointing, ``--telemetry`` records a per-point JSONL time-series, and
``--workers`` sizes the process pool.  Misuse is always a one-line
``error: ...`` and exit status 2, never a traceback.

``resume`` continues a ``repro-ckpt-v1`` checkpoint (written by
``--checkpoint-every`` / ``--set checkpoint_every=…``) to completion and
prints the same unified summary ``run`` would have produced; a truncated,
corrupt, or foreign-scenario file is a one-line error and exit status 2.
``run`` and ``sweep`` accept ``--resume-dir`` to journal per-point results
so a crashed sweep re-runs only its unfinished points, and ``--windows W``
to execute every point as ``W`` checkpoint-hand-off windows
(:mod:`repro.experiments.windowed`) — pipelined across workers, with
warmup-prefix sharing, and byte-identical summaries.

``trace`` groups the measured-bandwidth utilities — ``inspect`` a trace
file, ``convert`` between the CSV and JSON formats (optionally resampling,
scaling or clipping), and ``export`` a scenario's telemetry time-series —
see :mod:`repro.trace.cli`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import Any, Sequence

from repro.common.errors import ConfigurationError, SnapshotError
from repro.experiments.catalog import NamedScenario, get_scenario, list_scenarios
from repro.experiments.engine import ScenarioResult, SweepResult, sweep
from repro.experiments.options import ExecutionOptions
from repro.experiments.runner import resume_experiment
from repro.experiments.scenario import ScenarioSpec, apply_override
from repro.trace.cli import add_trace_parser, run_trace_command


class SpecFileError(Exception):
    """A scenario spec file could not be loaded (reported without traceback)."""


def _is_spec_path(name: str) -> bool:
    """Catalog names never contain path separators or a .json suffix.

    Deliberately *not* ``os.path.isfile``: a stray file in the working
    directory must never shadow a same-named catalog entry.
    """
    return name.endswith(".json") or os.sep in name


def resolve_entry(name: str) -> NamedScenario:
    """A catalog entry by name, or a spec file by path (see :func:`_is_spec_path`)."""
    if _is_spec_path(name):
        return load_spec_file(name)
    return get_scenario(name)


def load_spec_file(path: str) -> NamedScenario:
    """Load a scenario spec file as an ad-hoc, grid-less catalog entry."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise SpecFileError(f"cannot read spec file {path!r}: {exc}") from exc
    try:
        spec = ScenarioSpec.from_json(text)
    except json.JSONDecodeError as exc:
        raise SpecFileError(f"spec file {path!r} is not valid JSON: {exc}") from exc
    except (TypeError, ValueError, ConfigurationError) as exc:
        # TypeError: unknown field names; ConfigurationError/ValueError:
        # values that fail a spec's validation.
        raise SpecFileError(f"spec file {path!r} is not a valid scenario: {exc}") from exc
    return NamedScenario(
        name=spec.name, description=f"spec file {path}", base=spec
    )


def _parse_value(text: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_assignment(text: str) -> tuple[str, Any]:
    path, sep, value = text.partition("=")
    if not sep or not path:
        raise argparse.ArgumentTypeError(f"expected PATH=VALUE, got {text!r}")
    return path, _parse_value(value)


def _parse_axis(text: str) -> tuple[str, tuple[Any, ...]]:
    path, values = _parse_assignment(text)
    if isinstance(values, str):
        parsed = tuple(_parse_value(part) for part in values.split(","))
    elif isinstance(values, list):
        parsed = tuple(values)
    else:
        parsed = (values,)
    return path, parsed


def add_execution_options(cmd: argparse.ArgumentParser, *, sweepable: bool) -> None:
    """The shared execution-options group for ``run``, ``sweep`` and ``resume``.

    Every flag is defined exactly once, so help text, types and defaults
    stay consistent across the subcommands; ``sweepable`` selects the subset
    that applies to grid execution versus single-checkpoint continuation.
    All of them produce one-line ``error: ...`` messages and exit status 2
    when misused — never a traceback.
    """
    group = cmd.add_argument_group("execution options")
    group.add_argument(
        "--checkpoint-every",
        type=float,
        help="write a repro-ckpt-v1 checkpoint every this many virtual "
        "seconds while the run executes",
    )
    group.add_argument("--json", action="store_true", help="emit JSON summaries")
    if sweepable:
        group.add_argument("--serial", action="store_true", help="run points in-process")
        group.add_argument("--workers", type=int, help="worker-process count")
        group.add_argument(
            "--windows",
            type=int,
            help="split every point into this many checkpoint-hand-off "
            "windows, pipelined across workers; points agreeing on a prefix "
            "of the horizon fork one shared execution of it, and summaries "
            "stay byte-identical to a monolithic run",
        )
        group.add_argument(
            "--window-dir",
            help="where hand-off checkpoints and telemetry segments live "
            "(default: a temporary directory removed after the sweep)",
        )
        group.add_argument(
            "--telemetry",
            action="store_true",
            help="record a per-point telemetry time-series (JSONL under the "
            "spec's telemetry.out_dir, default telemetry/)",
        )
        group.add_argument(
            "--resume-dir",
            help="crash-resume journal directory: each completed point is "
            "recorded there, and rerunning after an interruption re-executes "
            "only the unfinished points",
        )
    else:
        group.add_argument(
            "--checkpoint-path",
            help="where continued checkpoints are written "
            "(default: overwrite the source file)",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run declarative DispersedLedger scenarios and sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the scenario catalog")

    show = sub.add_parser("show", help="print a scenario's base spec and grid as JSON")
    show.add_argument("scenario", help="catalog name (see `list`)")

    for verb in ("run", "sweep"):
        cmd = sub.add_parser(
            verb,
            help="run a named scenario"
            + (" (alias of `run` for sweep-heavy invocations)" if verb == "sweep" else ""),
        )
        cmd.add_argument("scenario", help="catalog name (see `list`)")
        cmd.add_argument("--duration", type=float, help="virtual seconds per point")
        cmd.add_argument("--seed", type=int, help="master seed for every point")
        cmd.add_argument(
            "--set",
            dest="overrides",
            metavar="PATH=VALUE",
            action="append",
            default=[],
            help="override a base-spec field by dotted path (repeatable)",
        )
        cmd.add_argument(
            "--grid",
            dest="grid",
            metavar="PATH=V1,V2,...",
            action="append",
            default=[],
            help="add a sweep axis (repeatable); replaces a same-named catalog axis",
        )
        add_execution_options(cmd, sweepable=True)

    resume = sub.add_parser(
        "resume", help="continue a repro-ckpt-v1 checkpoint to completion"
    )
    resume.add_argument("checkpoint", help="path to a repro-ckpt-v1 checkpoint file")
    add_execution_options(resume, sweepable=False)

    add_trace_parser(sub)
    return parser


def options_from_args(args: argparse.Namespace) -> ExecutionOptions:
    """Build the sweep :class:`ExecutionOptions` from parsed run/sweep flags.

    Validation lives in ``ExecutionOptions.__post_init__``; a bad
    combination (``--windows`` with ``--resume-dir``, zero workers, ...)
    raises :class:`ConfigurationError`, which ``main`` reports as a
    one-line error with exit status 2.
    """
    return ExecutionOptions(
        parallel=not args.serial,
        workers=args.workers,
        resume_dir=args.resume_dir,
        windows=args.windows,
        window_dir=args.window_dir,
    )


def _resolve(args: argparse.Namespace) -> tuple[NamedScenario, Any, dict[str, tuple]]:
    entry = resolve_entry(args.scenario)
    base = entry.base
    if args.duration is not None:
        base = replace(base, duration=args.duration)
    if args.seed is not None:
        base = replace(base, seed=args.seed)
    if args.checkpoint_every is not None:
        base = replace(base, checkpoint_every=args.checkpoint_every)
    if args.telemetry:
        base = replace(base, telemetry=replace(base.telemetry, enabled=True))
    for assignment in args.overrides:
        path, value = _parse_assignment(assignment)
        base = apply_override(base, path, value)
    grid: dict[str, tuple] = dict(entry.grid or {})
    for axis in args.grid:
        path, values = _parse_axis(axis)
        grid[path] = values
    return entry, base, grid


def _print_run(entry: NamedScenario, result: SweepResult, as_json: bool) -> None:
    if as_json:
        payload = {
            "scenario": entry.name,
            "figure": entry.figure,
            "parallel": result.parallel,
            "workers": result.workers,
            "windows": result.windows,
            "wall_clock_seconds": result.wall_clock_seconds,
            "events_processed": result.events_processed,
            "summaries": result.summaries(),
        }
        print(json.dumps(payload, indent=2))
        return
    figure = f" ({entry.figure})" if entry.figure else ""
    print(f"scenario {entry.name}{figure}: {entry.description}")
    print(result.table(columns=entry.columns))
    mode = f"{result.workers} processes" if result.parallel else "serial"
    if result.windows is not None:
        mode += f", {result.windows} windows"
    events = result.events_processed
    rate = f", {events / result.wall_clock_seconds:,.0f} events/s" if events else ""
    print(
        f"{len(result.points)} point(s) in {result.wall_clock_seconds:.2f}s wall clock "
        f"({mode}{rate})"
    )


def _run_resume(args: argparse.Namespace) -> int:
    """The ``resume`` subcommand: continue a checkpoint and print its summary.

    Checkpoints written by the scenario engine carry the originating spec in
    their metadata, so the printed summary has the same unified schema as a
    fresh ``run`` of that scenario — a resumed run is diffable against the
    golden summaries.  Malformed or foreign checkpoints produce a one-line
    error and exit status 2, never a traceback.
    """
    checkpoint_path = args.checkpoint_path
    if args.checkpoint_every is not None and checkpoint_path is None:
        checkpoint_path = args.checkpoint
    try:
        state, result = resume_experiment(
            args.checkpoint,
            options=ExecutionOptions(
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=checkpoint_path,
            ),
        )
    except (SnapshotError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec_dict = state.meta.get("spec") if isinstance(state.meta, dict) else None
    if spec_dict is not None:
        spec = ScenarioSpec.from_dict(spec_dict)
        point = ScenarioResult(
            spec=spec,
            overrides=dict(state.meta.get("overrides") or {}),
            result=result,
        )
        summary = point.summary()
    else:
        # A checkpoint taken outside the scenario engine has no spec to
        # rebuild the unified schema from; print the core result fields.
        summary = {
            "protocol": result.protocol,
            "num_nodes": result.num_nodes,
            "duration": result.duration,
            "mean_throughput": result.mean_throughput,
            "delivered_epochs": min(result.delivered_epochs, default=0),
            "events_processed": result.events_processed,
        }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        for key, value in summary.items():
            print(f"{key}: {value}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "trace":
        return run_trace_command(args)

    if args.command == "resume":
        return _run_resume(args)

    if args.command == "list":
        for entry in list_scenarios():
            figure = f" [{entry.figure}]" if entry.figure else ""
            print(f"{entry.name:<22} {entry.num_points():>2} point(s){figure}  {entry.description}")
        return 0

    try:
        if args.command == "show":
            entry = resolve_entry(args.scenario)
            payload = {
                "name": entry.name,
                "description": entry.description,
                "figure": entry.figure,
                "base": entry.base.to_dict(),
                "grid": {key: list(values) for key, values in (entry.grid or {}).items()},
            }
            print(json.dumps(payload, indent=2))
            return 0

        entry, base, grid = _resolve(args)
        options = options_from_args(args)
        result = sweep(base, grid or None, options=options)
    except (SpecFileError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_run(entry, result, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
