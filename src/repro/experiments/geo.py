"""Fig. 8, 9 and 15 — throughput on the geo-distributed internet testbeds.

The paper measures the confirmed-transaction rate of every server under an
infinitely-backlogged workload on two real testbeds: 16 AWS cities (Fig. 8,
with per-node timelines in Fig. 9) and 15 Vultr cities (Fig. 15).  Here the
testbeds are replaced by the simulated WAN built from the city profiles in
:mod:`repro.workload.cities` (heterogeneous mean capacity, ~100 ms inter-city
delays, Gauss-Markov fluctuation); see DESIGN.md for the substitution notes.

The shape to reproduce: DL > HB-Link > HB in per-node and aggregate
throughput, with inter-node linking alone contributing roughly the
``N/(N-f)``-bounded improvement and the retrieval decoupling contributing
the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import NodeConfig
from repro.experiments.engine import run_scenario
from repro.experiments.runner import ExperimentResult, WorkloadSpec
from repro.experiments.scenario import ScenarioSpec, TopologySpec
from repro.workload.cities import AWS_CITIES, VULTR_CITIES, CityProfile, testbed_name

#: Protocols plotted in Fig. 8 (DL-Coupled appears in the text comparison).
GEO_PROTOCOLS = ("dl", "dl-coupled", "hb-link", "hb")


@dataclass
class GeoResult:
    """Per-protocol results of one geo-distributed run."""

    cities: tuple[CityProfile, ...]
    duration: float
    results: dict[str, ExperimentResult]

    def throughput_table(self) -> list[dict[str, object]]:
        """One row per city: per-protocol throughput in bytes/second (Fig. 8/15)."""
        rows = []
        for index, city in enumerate(self.cities):
            row: dict[str, object] = {"city": city.name}
            for protocol, result in self.results.items():
                row[protocol] = result.throughputs[index]
            rows.append(row)
        return rows

    def mean_throughputs(self) -> dict[str, float]:
        return {protocol: result.mean_throughput for protocol, result in self.results.items()}

    def improvement_over(self, better: str, worse: str) -> float:
        """Relative mean-throughput improvement of ``better`` over ``worse``."""
        baseline = self.results[worse].mean_throughput
        if baseline == 0:
            raise ZeroDivisionError(f"{worse} confirmed nothing; cannot compute a ratio")
        return self.results[better].mean_throughput / baseline - 1.0


def run_geo_throughput(
    cities: tuple[CityProfile, ...] = AWS_CITIES,
    protocols: tuple[str, ...] = GEO_PROTOCOLS,
    duration: float = 60.0,
    seed: int = 0,
    fluctuate: bool = True,
    max_block_size: int = 2_000_000,
    warmup_fraction: float = 0.25,
) -> GeoResult:
    """Run the geo-distributed throughput comparison (Fig. 8 / Fig. 15).

    The first ``warmup_fraction`` of the run is excluded from the throughput
    numbers so that short simulations are not dominated by the start-up
    transient of the first epochs.

    Each protocol's run is one declarative scenario point; the conditions
    (same testbed, seed and workload for every protocol) live in the shared
    base spec and only the protocol axis varies.
    """
    base = ScenarioSpec(
        name="geo-throughput",
        topology=TopologySpec(kind="cities", testbed=testbed_name(tuple(cities)), fluctuate=fluctuate),
        workload=WorkloadSpec(kind="saturating"),
        node=NodeConfig(max_block_size=max_block_size),
        duration=duration,
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    results = {
        protocol: run_scenario(replace(base, protocol=protocol)).result
        for protocol in protocols
    }
    return GeoResult(cities=cities, duration=duration, results=results)


def run_vultr_throughput(
    duration: float = 60.0,
    seed: int = 0,
    protocols: tuple[str, ...] = ("dl", "hb-link", "hb"),
    max_block_size: int = 1_000_000,
) -> GeoResult:
    """Fig. 15: the same comparison on the lower-capacity Vultr-like testbed.

    The default block-size cap is half the AWS setting: the Vultr-like sites
    have roughly half the capacity, and keeping epochs at a few seconds of
    per-node download avoids quantising the slow sites' throughput to whole
    epochs on short runs.
    """
    return run_geo_throughput(
        cities=VULTR_CITIES,
        protocols=protocols,
        duration=duration,
        seed=seed,
        max_block_size=max_block_size,
    )


def progress_timelines(geo: GeoResult, protocols: tuple[str, ...] = ("dl", "hb-link")) -> dict[
    str, list[list[tuple[float, int]]]
]:
    """Fig. 9: per-node cumulative confirmed-bytes timelines for two protocols."""
    return {protocol: geo.results[protocol].timelines for protocol in protocols if protocol in geo.results}
