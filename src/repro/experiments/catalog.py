"""The catalog of named scenarios.

Every entry pairs a base :class:`~repro.experiments.scenario.ScenarioSpec`
with an optional parameter grid, under a stable name that the CLI
(``python -m repro.experiments run <name>``), the docs
(``docs/scenarios.md``) and the benchmark reports all share.  Catalog
defaults are sized for interactive runs (tens of virtual seconds); pass
``--duration`` / ``--seed`` on the CLI or :func:`dataclasses.replace` the
base spec for longer, smoother measurements.

The paper-figure entries (``fig02``, ``fig08-geo``, …) mirror the dedicated
figure modules; the remaining entries grow scenario coverage beyond the
paper: bandwidth churn, heavy-tailed stragglers, crash-fault mixes, mid-run
churn, non-stationary workloads, Byzantine node-class adversaries on the
timed simulator (``censor-victim``, ``equivocate-split``,
``latency-fault-matrix``), and measured-bandwidth replay through the trace
subsystem (``trace-replay-wan``, ``trace-scale-sweep``; bundled traces
under ``traces/``).  Register new entries with :func:`register_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.registry import AdversarySpec
from repro.core.config import NodeConfig
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import BandwidthSpec, ScenarioSpec, TopologySpec
from repro.workload.traces import MB


@dataclass(frozen=True)
class NamedScenario:
    """A catalog entry: a base spec, an optional grid, and its paper context.

    Attributes:
        name: the CLI/registry name.
        description: one line shown by ``python -m repro.experiments list``.
        base: the spec every grid point starts from.
        grid: sweep axes (see :data:`repro.experiments.scenario.Grid`).
        figure: the paper figure this reproduces, if any.
        columns: preferred summary columns for the CLI table (``None`` =
            every summary key).
    """

    name: str
    description: str
    base: ScenarioSpec
    grid: dict[str, tuple] | None = None
    figure: str | None = None
    columns: tuple[str, ...] | None = None

    def num_points(self) -> int:
        points = 1
        for values in (self.grid or {}).values():
            points *= len(tuple(values))
        return points


SCENARIOS: dict[str, NamedScenario] = {}


def register_scenario(entry: NamedScenario) -> NamedScenario:
    """Add a scenario to the catalog (overwriting a same-named entry is an error)."""
    if entry.name in SCENARIOS:
        raise ValueError(f"scenario {entry.name!r} is already registered")
    SCENARIOS[entry.name] = entry
    return entry


def get_scenario(name: str) -> NamedScenario:
    """Look up a catalog entry by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; run `python -m repro.experiments list` "
            f"(registered: {sorted(SCENARIOS)})"
        ) from None


def list_scenarios() -> list[NamedScenario]:
    """All catalog entries, sorted by name."""
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]


_SIM_COLUMNS = (
    "label",
    "protocol",
    "num_nodes",
    "mean_throughput",
    "min_throughput",
    "max_throughput",
    "mean_p50_latency",
    "dispersal_fraction",
    "delivered_epochs",
)

# -- paper figures ---------------------------------------------------------

register_scenario(
    NamedScenario(
        name="fig02-vid-cost",
        description="AVID-M vs AVID-FP per-node dispersal cost, modelled + measured",
        figure="Fig. 2",
        base=ScenarioSpec(
            name="fig02-vid-cost",
            kind="vid-cost",
            topology=TopologySpec(kind="uniform", num_nodes=16),
            block_size=100_000,
        ),
        grid={
            "topology.num_nodes": (8, 16, 32),
            "block_size": (100_000, 1_000_000),
        },
        columns=("label", "n", "block_size", "avid_m", "avid_fp", "lower_bound", "measured_avid_m"),
    )
)

register_scenario(
    NamedScenario(
        name="fig08-geo",
        description="Geo-distributed (AWS-like 16 cities) saturating throughput, 4 protocols",
        figure="Fig. 8 / Fig. 9",
        base=ScenarioSpec(
            name="fig08-geo",
            topology=TopologySpec(kind="cities", testbed="aws"),
            workload=WorkloadSpec(kind="saturating"),
            node=NodeConfig(max_block_size=2_000_000),
            duration=20.0,
        ),
        grid={"protocol": ("dl", "dl-coupled", "hb-link", "hb")},
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="fig10-latency",
        description="Confirmation latency vs offered load on the AWS-like testbed",
        figure="Fig. 10",
        base=ScenarioSpec(
            name="fig10-latency",
            topology=TopologySpec(kind="cities", testbed="aws"),
            workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=1_000_000.0),
            node=NodeConfig(max_block_size=4_000_000),
            duration=20.0,
        ),
        grid={
            "protocol": ("dl", "hb"),
            "workload.rate_bytes_per_second": (1_000_000.0, 3_000_000.0, 6_000_000.0),
        },
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="fig11a-spatial",
        description="Spatial bandwidth variation: node i capped at 10 + 0.5i MB/s",
        figure="Fig. 11a",
        base=ScenarioSpec(
            name="fig11a-spatial",
            topology=TopologySpec(kind="uniform", num_nodes=16, delay=0.1),
            bandwidth=BandwidthSpec(
                kind="spatial", rate=10 * MB, step=0.5 * MB, egress_headroom=2.0
            ),
            workload=WorkloadSpec(kind="saturating"),
            node=NodeConfig(max_block_size=1_000_000),
            duration=20.0,
        ),
        grid={"protocol": ("dl", "hb-link", "hb")},
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="fig11b-temporal",
        description="Temporal variation: fixed vs Gauss-Markov bandwidth, same mean",
        figure="Fig. 11b",
        base=ScenarioSpec(
            name="fig11b-temporal",
            topology=TopologySpec(kind="uniform", num_nodes=16, delay=0.1),
            bandwidth=BandwidthSpec(
                kind="gauss-markov",
                rate=10 * MB,
                sigma=5 * MB,
                alpha=0.98,
                egress_headroom=2.0,
            ),
            workload=WorkloadSpec(kind="saturating"),
            node=NodeConfig(max_block_size=1_000_000),
            duration=20.0,
        ),
        grid={
            "protocol": ("dl", "hb-link", "hb"),
            "trace": ({"bandwidth.kind": "constant"}, {"bandwidth.kind": "gauss-markov"}),
        },
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="fig12-scalability",
        description="Throughput and dispersal fraction vs cluster size at fixed block sizes",
        figure="Fig. 12 / Fig. 13",
        base=ScenarioSpec(
            name="fig12-scalability",
            topology=TopologySpec(kind="uniform", num_nodes=16, delay=0.1),
            bandwidth=BandwidthSpec(kind="constant", rate=10 * MB, egress_headroom=1.0),
            workload=WorkloadSpec(kind="saturating"),
            node=NodeConfig(max_block_size=500_000, nagle_size=500_000),
            duration=20.0,
        ),
        grid={
            "topology.num_nodes": (16, 32),
            "block": (
                {"node.max_block_size": 500_000, "node.nagle_size": 500_000},
                {"node.max_block_size": 1_000_000, "node.nagle_size": 1_000_000},
            ),
        },
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="fig15-vultr",
        description="Geo throughput on the cheaper, noisier Vultr-like 15-city testbed",
        figure="Fig. 15",
        base=ScenarioSpec(
            name="fig15-vultr",
            topology=TopologySpec(kind="cities", testbed="vultr"),
            workload=WorkloadSpec(kind="saturating"),
            node=NodeConfig(max_block_size=1_000_000),
            duration=20.0,
        ),
        grid={"protocol": ("dl", "hb-link", "hb")},
        columns=_SIM_COLUMNS,
    )
)

# -- beyond the paper ------------------------------------------------------

register_scenario(
    NamedScenario(
        name="bandwidth-flapping",
        description="Bandwidth churn: 3 of 8 links take turns collapsing 13x (Fig. 1 regime)",
        base=ScenarioSpec(
            name="bandwidth-flapping",
            topology=TopologySpec(kind="uniform", num_nodes=8, delay=0.08),
            bandwidth=BandwidthSpec(
                kind="flapping",
                rate=4 * MB,
                degraded_rate=0.3 * MB,
                count=3,
                period=12.0,
                degraded_for=4.0,
            ),
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=3_000_000),
            node=NodeConfig(max_block_size=400_000),
            duration=30.0,
        ),
        grid={"protocol": ("dl", "hb")},
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="straggler-hetero",
        description="Heterogeneous cluster: 3 of 10 nodes an order of magnitude slower",
        base=ScenarioSpec(
            name="straggler-hetero",
            topology=TopologySpec(kind="uniform", num_nodes=10, delay=0.1),
            bandwidth=BandwidthSpec(
                kind="straggler", rate=10 * MB, degraded_rate=1 * MB, count=3
            ),
            workload=WorkloadSpec(kind="saturating"),
            node=NodeConfig(max_block_size=1_000_000),
            duration=20.0,
        ),
        grid={"protocol": ("dl", "hb-link", "hb")},
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="adversary-crash-mix",
        description="Crash-fault sweep: 0..f silent nodes out of n=8 (f=2)",
        base=ScenarioSpec(
            name="adversary-crash-mix",
            topology=TopologySpec(kind="uniform", num_nodes=8, delay=0.05),
            bandwidth=BandwidthSpec(kind="constant", rate=5 * MB),
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=2_000_000),
            node=NodeConfig(max_block_size=500_000),
            duration=20.0,
        ),
        grid={
            "protocol": ("dl", "hb"),
            "faults": (
                {"adversary.kind": "none", "adversary.count": 0},
                {"adversary.kind": "crash", "adversary.count": 1},
                {"adversary.kind": "crash", "adversary.count": 2},
            ),
        },
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="mid-run-crash",
        description="Churn: 2 of 7 nodes fall silent halfway through the run",
        base=ScenarioSpec(
            name="mid-run-crash",
            topology=TopologySpec(kind="uniform", num_nodes=7, delay=0.05),
            bandwidth=BandwidthSpec(kind="constant", rate=5 * MB),
            adversary=AdversarySpec(kind="crash-after", count=2, crash_time=15.0),
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=2_000_000),
            node=NodeConfig(max_block_size=500_000),
            duration=30.0,
        ),
        grid={"protocol": ("dl", "hb")},
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="censor-victim",
        description="Censorship: up to f of 7 nodes vote 0 on node 0's slot; linking delivers it anyway",
        base=ScenarioSpec(
            name="censor-victim",
            topology=TopologySpec(kind="uniform", num_nodes=7, delay=0.05),
            bandwidth=BandwidthSpec(kind="constant", rate=5 * MB),
            adversary=AdversarySpec(kind="censor", count=2, victim=0),
            workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=1_000_000.0),
            node=NodeConfig(max_block_size=500_000),
            duration=20.0,
        ),
        grid={
            "censors": (
                {"adversary.kind": "none", "adversary.count": 0},
                {"adversary.kind": "censor", "adversary.count": 1},
                {"adversary.kind": "censor", "adversary.count": 2},
            ),
        },
        columns=(
            "label",
            "protocol",
            "mean_throughput",
            "mean_p50_latency",
            "victim_commit_p50",
            "victim_inclusion_delay",
            "victim_linked_fraction",
            "delivered_epochs",
        ),
    )
)

register_scenario(
    NamedScenario(
        name="equivocate-split",
        description="Equivocating disperser on the real data plane, split point swept across chunks",
        base=ScenarioSpec(
            name="equivocate-split",
            topology=TopologySpec(kind="uniform", num_nodes=4, delay=0.05),
            bandwidth=BandwidthSpec(kind="constant", rate=3 * MB),
            adversary=AdversarySpec(kind="equivocate", count=1),
            workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=300_000.0),
            node=NodeConfig(data_plane="real", max_block_size=100_000),
            duration=20.0,
        ),
        grid={"adversary.split": (1, 2, 3)},
        columns=(
            "label",
            "protocol",
            "mean_throughput",
            "mean_p50_latency",
            "equivocation_detected_epoch",
            "bad_uploader_deliveries",
            "delivered_epochs",
        ),
    )
)

register_scenario(
    NamedScenario(
        name="latency-fault-matrix",
        description="Tail latency under faults: poisson load x fault kind x fault count (n=7)",
        base=ScenarioSpec(
            name="latency-fault-matrix",
            topology=TopologySpec(kind="uniform", num_nodes=7, delay=0.05),
            bandwidth=BandwidthSpec(kind="constant", rate=5 * MB),
            workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=500_000.0),
            node=NodeConfig(max_block_size=500_000),
            duration=20.0,
        ),
        grid={
            "workload.rate_bytes_per_second": (500_000.0, 1_500_000.0),
            "faults": (
                {"adversary.kind": "none", "adversary.count": 0},
                {"adversary.kind": "crash", "adversary.count": 1},
                {"adversary.kind": "crash", "adversary.count": 2},
                {"adversary.kind": "crash-after", "adversary.count": 2,
                 "adversary.crash_time": 10.0},
                {"adversary.kind": "censor", "adversary.count": 2},
                {"adversary.kind": "equivocate", "adversary.count": 1},
            ),
        },
        columns=(
            "label",
            "mean_throughput",
            "mean_p50_latency",
            "adversary_kind",
            "delivered_epochs",
        ),
    )
)

register_scenario(
    NamedScenario(
        name="trace-replay-wan",
        description="Measured-bandwidth replay: 8 shaped-broadband links from traces/wan-measured.csv",
        base=ScenarioSpec(
            name="trace-replay-wan",
            topology=TopologySpec(kind="uniform", num_nodes=8, delay=0.06),
            bandwidth=BandwidthSpec(
                kind="trace-replay", trace_path="traces/wan-measured.csv"
            ),
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=3_000_000),
            node=NodeConfig(max_block_size=500_000),
            duration=30.0,
        ),
        grid={"protocol": ("dl", "hb")},
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="trace-scale-sweep",
        description="Trace scaling: replay the WAN trace at 0.5x / 1x / 2x the measured rates",
        base=ScenarioSpec(
            name="trace-scale-sweep",
            topology=TopologySpec(kind="uniform", num_nodes=8, delay=0.06),
            bandwidth=BandwidthSpec(
                kind="trace-replay", trace_path="traces/wan-measured.csv"
            ),
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=3_000_000),
            node=NodeConfig(max_block_size=500_000),
            duration=30.0,
        ),
        grid={"bandwidth.trace_scale": (0.5, 1.0, 2.0)},
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="bursty-load",
        description="Non-stationary clients: constant vs bursty vs diurnal Poisson load",
        base=ScenarioSpec(
            name="bursty-load",
            topology=TopologySpec(kind="uniform", num_nodes=8, delay=0.05),
            bandwidth=BandwidthSpec(kind="constant", rate=5 * MB),
            workload=WorkloadSpec(
                kind="poisson", rate_bytes_per_second=1_500_000.0, period=20.0
            ),
            node=NodeConfig(max_block_size=1_000_000),
            duration=40.0,
            warmup=5.0,
        ),
        grid={"workload.kind": ("poisson", "bursty", "diurnal")},
        columns=_SIM_COLUMNS,
    )
)

register_scenario(
    NamedScenario(
        name="columnar-scale",
        description="Columnar data plane at scale: N=64 express cluster committing ~100k tx in one epoch",
        base=ScenarioSpec(
            name="columnar-scale",
            topology=TopologySpec(kind="uniform", num_nodes=64, delay=0.05, express=True),
            bandwidth=BandwidthSpec(kind="unlimited"),
            workload=WorkloadSpec(
                kind="saturating-columnar", target_pending_bytes=800_000, tx_size=250
            ),
            # 1600 transactions per block x 64 proposers x 1 epoch = 102,400
            # committed transactions, all riding the struct-of-arrays plane.
            node=NodeConfig(
                mempool="columnar", max_block_size=400_000, nagle_size=400_000
            ),
            duration=2.0,
            warmup=0.0,
            warmup_fraction=0.0,
            max_epochs=1,
        ),
        columns=_SIM_COLUMNS,
    )
)
