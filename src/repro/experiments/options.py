"""The unified execution-options surface for the experiment engine.

Execution knobs grew organically across PRs: ``recorder`` (PR 5),
``parallel`` / ``max_workers`` (PR 2), ``checkpoint_every`` /
``checkpoint_path`` / ``resume_from`` / ``resume_dir`` (PR 7), and now
``windows`` / ``window_dir`` for the windowed parallel engine.  Each knob
described *how* to execute, not *what* to simulate — yet they were threaded
as loose keyword arguments through four different call signatures.

:class:`ExecutionOptions` consolidates all of them into one frozen,
validated dataclass accepted by :func:`~repro.experiments.runner.run_experiment`,
:func:`~repro.experiments.engine.run_scenario`,
:func:`~repro.experiments.engine.run_points` and
:func:`~repro.experiments.engine.sweep` (each consumer reads the fields that
apply to it and documents which those are).  The *what* stays in
:class:`~repro.experiments.scenario.ScenarioSpec`; the *how* lives here, so
a spec remains a complete deterministic recipe whose summary is byte-identical
under every execution strategy.

The old keyword arguments survive as deprecated shims: passing one emits a
:class:`DeprecationWarning` and is folded into an equivalent
:class:`ExecutionOptions`, so downstream callers keep working (and keep
their summaries byte-identical) while they migrate.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any

from repro.common.errors import ConfigurationError

__all__ = ["ExecutionOptions", "UNSET", "merge_deprecated_kwargs"]

#: Sentinel distinguishing "keyword not passed" from an explicit ``None``
#: in the deprecated-shim signatures.
UNSET: Any = object()


@dataclass(frozen=True)
class ExecutionOptions:
    """How to execute a run or sweep (never *what* to simulate).

    Every field is execution strategy only: any combination produces
    summaries byte-identical to the defaults — that invariant is pinned by
    the golden suite and the windowed property tests.

    Attributes:
        recorder: a :class:`~repro.trace.recorder.TraceRecorder` to attach to
            a single experiment run (:func:`run_experiment` only; the
            scenario engine builds recorders from ``spec.telemetry`` itself).
        span_recorder: a :class:`~repro.trace.spans.SpanRecorder` to attach
            to a single experiment run (:func:`run_experiment` only; the
            scenario engine builds one from ``spec.spans`` itself).
        profiler: a :class:`~repro.sim.profiler.SimProfiler` installed on the
            simulator for the run; host-side observability only — virtual
            behaviour is identical with or without it.
        checkpoint_every: write a ``repro-ckpt-v1`` checkpoint every this
            many virtual seconds (:func:`run_experiment` /
            :func:`resume_experiment`; the scenario engine reads the spec's
            ``checkpoint_every`` instead).
        checkpoint_path: where the (single, overwritten) periodic checkpoint
            lives; required when ``checkpoint_every`` is set on
            :func:`run_experiment`, defaulted per point by the engine.
        checkpoint_meta: opaque metadata stored inside checkpoints (the
            engine passes the scenario spec here).
        resume_from: continue from a checkpoint — a file path or a loaded
            :class:`~repro.sim.snapshot.SimulationState` — instead of
            building a fresh simulation (:func:`run_experiment` /
            :func:`run_scenario`).
        parallel: run sweep points across worker processes
            (:func:`run_points` / :func:`sweep`; the default).
        workers: worker-process count (``None`` = one per point, capped at
            the machine's CPU count).
        resume_dir: sweep crash-resume journal directory (:func:`sweep`).
        windows: split each point's virtual-time horizon into this many
            windows executed via checkpoint hand-off (:func:`sweep`; see
            :mod:`repro.experiments.windowed`).  ``None`` = monolithic.
        window_dir: where windowed hand-off checkpoints and telemetry
            segments live (``None`` = a temporary directory, removed after
            the sweep).
    """

    recorder: Any | None = None
    span_recorder: Any | None = None
    profiler: Any | None = None
    checkpoint_every: float | None = None
    checkpoint_path: str | Path | None = None
    checkpoint_meta: dict | None = None
    resume_from: Any | None = None
    parallel: bool = True
    workers: int | None = None
    resume_dir: str | Path | None = None
    windows: int | None = None
    window_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ConfigurationError("checkpoint_every must be None or positive")
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("workers must be None or >= 1")
        if self.windows is not None and self.windows < 1:
            raise ConfigurationError("windows must be None or >= 1")
        if self.windows is not None and self.resume_dir is not None:
            raise ConfigurationError(
                "windows and resume_dir cannot be combined: the windowed "
                "engine's hand-off checkpoints are its own journal"
            )
        if self.windows is not None and self.resume_from is not None:
            raise ConfigurationError("windows cannot be combined with resume_from")

    def with_updates(self, **changes: Any) -> "ExecutionOptions":
        """A copy with ``changes`` applied (a validated ``dataclasses.replace``)."""
        return replace(self, **changes)

    @property
    def effective_workers_floor(self) -> int:
        """The minimum worker count this options object guarantees (1 if serial)."""
        if not self.parallel:
            return 1
        return self.workers if self.workers is not None else 1


_FIELD_NAMES = frozenset(f.name for f in fields(ExecutionOptions))


def merge_deprecated_kwargs(
    options: ExecutionOptions | None,
    caller: str,
    *,
    stacklevel: int = 3,
    aliases: dict[str, str] | None = None,
    **legacy: Any,
) -> ExecutionOptions:
    """Fold deprecated execution keywords into an :class:`ExecutionOptions`.

    ``legacy`` maps the caller's deprecated keyword names to the values they
    carried (:data:`UNSET` marks "not passed"); ``aliases`` translates any
    keyword whose name differs from its options field (``max_workers`` →
    ``workers``).  Passing any deprecated keyword emits one
    :class:`DeprecationWarning` naming the caller and the keywords as the
    caller spelled them; combining them with an explicit ``options`` object
    is a ``TypeError`` — there must be exactly one source of truth.
    """
    passed = {name: value for name, value in legacy.items() if value is not UNSET}
    if not passed:
        return options if options is not None else ExecutionOptions()
    translated = {(aliases or {}).get(name, name): value for name, value in passed.items()}
    unknown = sorted(set(translated) - _FIELD_NAMES)
    if unknown:
        raise TypeError(f"{caller}: unknown execution option(s) {unknown}")
    if options is not None:
        raise TypeError(
            f"{caller}: pass execution options either through `options` or the "
            f"deprecated keyword(s) {sorted(passed)}, not both"
        )
    warnings.warn(
        f"{caller}: the keyword(s) {sorted(passed)} are deprecated; pass "
        f"options=ExecutionOptions({', '.join(sorted(translated))}=...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return ExecutionOptions(**translated)
