"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, serialisable description of one
simulated run: protocol, cluster size, topology, per-node bandwidth model,
adversary placement, workload and duration.  Specs round-trip through plain
dicts (and therefore JSON), so scenarios can live in files, be diffed, and
be expanded into parameter grids by :func:`expand_grid` for the sweep engine
(:mod:`repro.experiments.engine`).

Every axis resolves through a registry — protocols
(:data:`repro.experiments.runner.PROTOCOLS`), workloads
(:data:`repro.experiments.runner.WORKLOADS`), adversaries
(:data:`repro.adversary.registry.ADVERSARIES`), bandwidth models
(:data:`BANDWIDTH_MODELS`) and city testbeds
(:data:`repro.workload.cities.TESTBEDS`) — so new automata, load shapes and
network conditions plug in without touching the engine.

The single place a simulated WAN is constructed from a spec is
:func:`build_network_config`; the figure modules (``geo``, ``latency``,
``controlled``, ``scalability``) all route through it instead of hand-wiring
:class:`~repro.sim.network.NetworkConfig` themselves.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Callable, Iterable, Mapping

from repro.adversary.registry import AdversarySpec
from repro.common.errors import ConfigurationError
from repro.common.params import ProtocolParams
from repro.core.config import NodeConfig
from repro.experiments.runner import PROTOCOLS, WorkloadSpec
from repro.sim.bandwidth import BandwidthTrace, ConstantBandwidth
from repro.sim.network import NetworkConfig
from repro.trace.io import load_trace_cached
from repro.trace.recorder import TelemetrySpec
from repro.trace.spans import SpanSpec
from repro.workload.cities import (
    DEFAULT_EGRESS_HEADROOM,
    city_network_config,
    resolve_testbed,
)
from repro.workload.traces import (
    MB,
    flapping_traces,
    gauss_markov_traces,
    spatial_variation_rates,
    straggler_rates,
)


@dataclass(frozen=True)
class TopologySpec:
    """Cluster size and link delays.

    Attributes:
        kind: ``"uniform"`` (``num_nodes`` nodes, one common one-way delay,
            bandwidth from the spec's :class:`BandwidthSpec`) or ``"cities"``
            (a registered city testbed supplying node count, pairwise delays
            *and* per-node Gauss-Markov bandwidth).
        num_nodes: cluster size (uniform topologies; city topologies take it
            from the testbed).
        delay: one-way propagation delay in seconds (uniform topologies).
        testbed: registered testbed name (``"aws"``, ``"vultr"``, or anything
            added via :func:`repro.workload.cities.register_testbed`).
        fluctuate: sample Gauss-Markov fluctuation around each city's mean
            (city topologies).
        egress_headroom: upload-capacity multiple of the (binding) download
            capacity for city topologies (see ``repro.workload.cities``).
        express: enable the network's express broadcast fan-out fast path
            (:class:`~repro.sim.network.NetworkConfig` ``express``); uniform
            topologies with unlimited bandwidth only.  For protocol-logic
            scalability runs at large N.
    """

    kind: str = "uniform"
    num_nodes: int = 4
    delay: float = 0.1
    testbed: str = "aws"
    fluctuate: bool = True
    egress_headroom: float = DEFAULT_EGRESS_HEADROOM
    express: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "cities"):
            raise ConfigurationError(f"unknown topology kind {self.kind!r}")
        if self.kind == "uniform" and self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be positive")
        if self.delay < 0:
            raise ConfigurationError("delay must be non-negative")
        if self.express and self.kind != "uniform":
            raise ConfigurationError("express broadcast requires a uniform topology")

    def resolved_num_nodes(self) -> int:
        if self.kind == "cities":
            return len(resolve_testbed(self.testbed))
        return self.num_nodes


@dataclass(frozen=True)
class BandwidthSpec:
    """Per-node bandwidth model for uniform topologies.

    ``kind`` names an entry of :data:`BANDWIDTH_MODELS`:

    * ``"unlimited"`` — no bandwidth limits (protocol-logic smoke runs);
    * ``"constant"`` — every node capped at ``rate``;
    * ``"spatial"`` — node ``i`` capped at ``rate + step * i`` (Fig. 11a);
    * ``"gauss-markov"`` — independent Gauss-Markov fluctuation with mean
      ``rate``, deviation ``sigma`` and correlation ``alpha`` (Fig. 11b);
    * ``"flapping"`` — the last ``count`` nodes cycle between ``rate`` and
      ``degraded_rate`` (``degraded_for`` out of every ``period`` seconds,
      staggered), the bandwidth-churn regime of Fig. 1;
    * ``"straggler"`` — the last ``count`` nodes permanently capped at
      ``degraded_rate``, a heavy-tailed heterogeneous cluster;
    * ``"trace-replay"`` — every node replays a **measured** trace file
      (``trace_path``, CSV or JSON breakpoints of per-node up/down rates —
      see :mod:`repro.trace`), with every rate multiplied by
      ``trace_scale``.  Simulated node ``i`` replays trace node
      ``i % trace_nodes``, so any cluster size can replay any recording.

    ``egress_headroom`` scales the upload side relative to the download caps
    (1.0 = symmetric links, as in the scalability experiments; the
    controlled Fig. 11 experiments use 2.0, see DESIGN.md).  For trace
    replay the measured up rates already encode the asymmetry, so the
    headroom usually stays 1.0.
    """

    kind: str = "constant"
    rate: float = 10 * MB
    step: float = 0.5 * MB
    sigma: float = 5 * MB
    alpha: float = 0.98
    degraded_rate: float = 1 * MB
    period: float = 12.0
    degraded_for: float = 4.0
    count: int = 0
    egress_headroom: float = 1.0
    trace_path: str | None = None
    trace_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in BANDWIDTH_MODELS:
            raise ConfigurationError(
                f"unknown bandwidth kind {self.kind!r}; registered: {sorted(BANDWIDTH_MODELS)}"
            )
        if self.egress_headroom <= 0:
            raise ConfigurationError("egress_headroom must be positive")
        if self.count < 0:
            raise ConfigurationError("count must be non-negative")
        if self.trace_scale <= 0:
            raise ConfigurationError("trace_scale must be positive")
        if self.kind == "trace-replay" and not self.trace_path:
            raise ConfigurationError("trace-replay bandwidth needs a trace_path")


#: ``builder(spec, num_nodes, duration, seed) -> (ingress, egress)`` — the
#: per-node download and upload traces for a uniform topology.
TraceLists = tuple[list[BandwidthTrace | None], list[BandwidthTrace | None]]
BandwidthModel = Callable[[BandwidthSpec, int, float, int], TraceLists]

BANDWIDTH_MODELS: dict[str, BandwidthModel] = {}


def register_bandwidth_model(kind: str, builder: BandwidthModel) -> None:
    """Register a bandwidth model under ``kind`` for use in specs."""
    BANDWIDTH_MODELS[kind] = builder


def _bw_unlimited(spec: BandwidthSpec, n: int, duration: float, seed: int) -> TraceLists:
    return [None] * n, [None] * n


def _bw_constant(spec: BandwidthSpec, n: int, duration: float, seed: int) -> TraceLists:
    ingress = [ConstantBandwidth(spec.rate) for _ in range(n)]
    egress = [ConstantBandwidth(spec.rate * spec.egress_headroom) for _ in range(n)]
    return ingress, egress


def _bw_spatial(spec: BandwidthSpec, n: int, duration: float, seed: int) -> TraceLists:
    rates = spatial_variation_rates(n, base=spec.rate, step=spec.step)
    ingress = [ConstantBandwidth(rate) for rate in rates]
    egress = [ConstantBandwidth(rate * spec.egress_headroom) for rate in rates]
    return ingress, egress


def _bw_gauss_markov(spec: BandwidthSpec, n: int, duration: float, seed: int) -> TraceLists:
    # Seed split matches the pre-engine controlled.py: egress uses ``seed``,
    # ingress ``seed + 1``, so refactored figure runs reproduce bit-for-bit.
    egress = list(
        gauss_markov_traces(
            n,
            duration,
            mean=spec.rate * spec.egress_headroom,
            sigma=spec.sigma * spec.egress_headroom,
            alpha=spec.alpha,
            seed=seed,
        )
    )
    ingress = list(
        gauss_markov_traces(
            n, duration, mean=spec.rate, sigma=spec.sigma, alpha=spec.alpha, seed=seed + 1
        )
    )
    return ingress, egress


def _bw_flapping(spec: BandwidthSpec, n: int, duration: float, seed: int) -> TraceLists:
    def build() -> list[BandwidthTrace]:
        return list(
            flapping_traces(
                n,
                spec.count,
                duration,
                healthy=spec.rate,
                degraded=spec.degraded_rate,
                period=spec.period,
                degraded_for=spec.degraded_for,
            )
        )

    ingress = build()
    if spec.egress_headroom == 1.0:
        return ingress, build()
    egress: list[BandwidthTrace | None] = [
        ConstantBandwidth(spec.rate * spec.egress_headroom)
        for _ in range(n - spec.count)
    ] + list(
        flapping_traces(
            spec.count,
            spec.count,
            duration,
            healthy=spec.rate * spec.egress_headroom,
            degraded=spec.degraded_rate * spec.egress_headroom,
            period=spec.period,
            degraded_for=spec.degraded_for,
        )
    )
    return ingress, egress


def _bw_straggler(spec: BandwidthSpec, n: int, duration: float, seed: int) -> TraceLists:
    rates = straggler_rates(n, spec.count, fast=spec.rate, slow=spec.degraded_rate)
    ingress = [ConstantBandwidth(rate) for rate in rates]
    egress = [ConstantBandwidth(rate * spec.egress_headroom) for rate in rates]
    return ingress, egress


def _bw_trace_replay(spec: BandwidthSpec, n: int, duration: float, seed: int) -> TraceLists:
    # The file is loaded through an LRU cache, so a sweep over seeds or
    # trace_scale parses and validates it exactly once per process.
    trace = load_trace_cached(spec.trace_path)
    ingress, egress = trace.bandwidth_traces(
        n, scale=spec.trace_scale, egress_headroom=spec.egress_headroom
    )
    return list(ingress), list(egress)


register_bandwidth_model("unlimited", _bw_unlimited)
register_bandwidth_model("constant", _bw_constant)
register_bandwidth_model("spatial", _bw_spatial)
register_bandwidth_model("gauss-markov", _bw_gauss_markov)
register_bandwidth_model("flapping", _bw_flapping)
register_bandwidth_model("straggler", _bw_straggler)
register_bandwidth_model("trace-replay", _bw_trace_replay)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative description of one simulated run.

    Attributes:
        name: label carried into results and reports.
        kind: ``"sim"`` (a timed protocol run) or ``"vid-cost"`` (the Fig. 2
            dispersal-cost measurement, which runs on the instant router and
            produces cost rows instead of throughput).
        protocol: registered protocol name (``sim`` kind).
        topology: cluster shape and delays.
        bandwidth: per-node bandwidth model (uniform topologies only; city
            topologies carry their own bandwidth profiles).
        adversary: Byzantine placement (default: none).
        workload: offered client load.
        node: per-node behaviour knobs (block-size caps, Nagle parameters,
            data plane), embedded verbatim as a :class:`NodeConfig`.
        telemetry: opt-in per-run time-series recording
            (:class:`~repro.trace.recorder.TelemetrySpec`); summaries are
            bit-identical whether it is on or off.
        spans: opt-in causal span recording
            (:class:`~repro.trace.spans.SpanSpec`); summaries are
            bit-identical whether it is on or off.
        duration: virtual seconds to simulate.
        warmup: absolute virtual seconds excluded from throughput
            denominators; ``None`` means ``warmup_fraction * duration``.
        warmup_fraction: fractional warmup used when ``warmup`` is ``None``.
        seed: master seed; workload generators and bandwidth fluctuation
            derive their per-node seeds from it, so a spec is a complete
            recipe for a deterministic run.
        f: Byzantine-tolerance parameter override (``None`` = maximum
            ``f = (n - 1) // 3``).
        block_size: dispersed block size (``vid-cost`` kind only).
        checkpoint_every: opt-in periodic checkpointing interval in virtual
            seconds (``sim`` kind only); summaries are bit-identical whether
            it is on or off.
    """

    name: str = "custom"
    kind: str = "sim"
    protocol: str = "dl"
    topology: TopologySpec = field(default_factory=TopologySpec)
    bandwidth: BandwidthSpec = field(default_factory=BandwidthSpec)
    adversary: AdversarySpec = field(default_factory=AdversarySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    node: NodeConfig = field(default_factory=NodeConfig)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    spans: SpanSpec = field(default_factory=SpanSpec)
    duration: float = 30.0
    warmup: float | None = None
    warmup_fraction: float = 0.25
    seed: int = 0
    f: int | None = None
    #: Stop proposing new blocks after this many epochs (``None`` = propose
    #: for the whole run).  Bounded-work scenarios (the million-transaction
    #: columnar benchmarks) pin the committed transaction count with this.
    max_epochs: int | None = None
    block_size: int = 500_000
    #: Write a ``repro-ckpt-v1`` checkpoint every this many virtual seconds
    #: (``None`` = no periodic checkpointing).  Summaries are bit-identical
    #: whether it is on or off.
    checkpoint_every: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sim", "vid-cost"):
            raise ConfigurationError(f"unknown scenario kind {self.kind!r}")
        if self.kind == "sim" and self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; registered: {sorted(PROTOCOLS)}"
            )
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not 0 <= self.warmup_fraction < 1:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if self.warmup is not None and not 0 <= self.warmup < self.duration:
            raise ConfigurationError("warmup must be in [0, duration)")
        if self.block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if self.max_epochs is not None and self.max_epochs < 1:
            raise ConfigurationError("max_epochs must be None or >= 1")
        if self.topology.express and self.bandwidth.kind != "unlimited":
            # Fail at spec construction: the network would reject the pairing
            # anyway, but with less context.
            raise ConfigurationError(
                "express topologies model propagation delay only; "
                'pair them with bandwidth kind "unlimited", not '
                f"{self.bandwidth.kind!r}"
            )
        if self.telemetry.enabled and self.kind != "sim":
            # Analytic kinds never build a simulator, so there is nothing to
            # sample; fail at spec construction rather than silently
            # recording nothing.
            raise ConfigurationError(
                f"telemetry recording requires a sim scenario, not kind {self.kind!r}"
            )
        if self.spans.enabled and self.kind != "sim":
            # Spans observe the simulated block lifecycle; analytic kinds
            # have no lifecycle to observe.
            raise ConfigurationError(
                f"span recording requires a sim scenario, not kind {self.kind!r}"
            )
        if self.checkpoint_every is not None:
            if self.kind != "sim":
                # Analytic kinds never build a simulator, so there is no
                # event-loop state to snapshot.
                raise ConfigurationError(
                    f"checkpointing requires a sim scenario, not kind {self.kind!r}"
                )
            if self.checkpoint_every <= 0:
                raise ConfigurationError("checkpoint_every must be None or positive")

    @property
    def num_nodes(self) -> int:
        return self.topology.resolved_num_nodes()

    def params(self) -> ProtocolParams:
        n = self.num_nodes
        if self.f is None:
            return ProtocolParams.for_n(n)
        return ProtocolParams(n=n, f=self.f)

    def effective_warmup(self) -> float:
        if self.warmup is not None:
            return self.warmup
        return self.duration * self.warmup_fraction

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict form that :meth:`from_dict` restores exactly."""
        return asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from a (possibly partial) plain dict.

        Missing keys take their defaults; unknown keys raise ``TypeError`` so
        typos in scenario files fail loudly.
        """
        payload = dict(data)
        nested: dict[str, Any] = {}
        for key, spec_cls in (
            ("topology", TopologySpec),
            ("bandwidth", BandwidthSpec),
            ("adversary", AdversarySpec),
            ("workload", WorkloadSpec),
            ("node", NodeConfig),
            ("telemetry", TelemetrySpec),
            ("spans", SpanSpec),
        ):
            value = payload.pop(key, None)
            if value is None:
                continue
            if isinstance(value, spec_cls):
                nested[key] = value
            else:
                value = dict(value)
                if key == "adversary" and value.get("nodes") is not None:
                    value["nodes"] = tuple(value["nodes"])
                nested[key] = spec_cls(**value)
        return cls(**payload, **nested)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def build_network_config(spec: ScenarioSpec) -> NetworkConfig:
    """The one place a spec's simulated WAN is constructed."""
    topology = spec.topology
    if topology.kind == "cities":
        return city_network_config(
            resolve_testbed(topology.testbed),
            spec.duration,
            seed=spec.seed,
            fluctuate=topology.fluctuate,
            egress_headroom=topology.egress_headroom,
        )
    builder = BANDWIDTH_MODELS[spec.bandwidth.kind]
    ingress, egress = builder(spec.bandwidth, topology.num_nodes, spec.duration, spec.seed)
    return NetworkConfig(
        num_nodes=topology.num_nodes,
        propagation_delay=topology.delay,
        egress_traces=egress,
        ingress_traces=ingress,
        express=topology.express,
    )


# -- parameter grids -------------------------------------------------------

#: One grid axis: either ``"dotted.field.path" -> values`` where each value
#: is substituted at that path, or ``"any-label" -> dict-values`` where each
#: value is a mapping of dotted paths applied together (for axes that must
#: move several fields in lockstep, e.g. ``max_block_size`` + ``nagle_size``).
Grid = Mapping[str, Iterable[Any]]


def apply_override(spec: ScenarioSpec, path: str, value: Any) -> ScenarioSpec:
    """Return a copy of ``spec`` with the dotted ``path`` replaced by ``value``.

    ``apply_override(spec, "workload.rate_bytes_per_second", 2e6)`` rebuilds
    the nested frozen dataclasses along the path.
    """
    head, _, rest = path.partition(".")
    valid = {f.name for f in fields(spec)}
    if head not in valid:
        raise ConfigurationError(f"unknown scenario field {head!r} in override {path!r}")
    if not rest:
        return replace(spec, **{head: value})
    inner = getattr(spec, head)
    return replace(spec, **{head: apply_override(inner, rest, value)})


def apply_overrides(spec: ScenarioSpec, overrides: Mapping[str, Any]) -> ScenarioSpec:
    """Apply several dotted-path overrides to ``spec``."""
    for path, value in overrides.items():
        spec = apply_override(spec, path, value)
    return spec


def expand_grid(base: ScenarioSpec, grid: Grid | None) -> list[tuple[dict[str, Any], ScenarioSpec]]:
    """Expand ``base`` over the cartesian product of a parameter grid.

    Returns ``(point_overrides, spec)`` pairs in deterministic order (axes in
    the grid's insertion order, values in their given order).  The number of
    points is the product of the axis lengths; an empty or ``None`` grid
    yields the single base spec.
    """
    if not grid:
        return [({}, base)]
    axes = [(key, list(values)) for key, values in grid.items()]
    for key, values in axes:
        if not values:
            raise ConfigurationError(f"grid axis {key!r} has no values")
    points: list[tuple[dict[str, Any], ScenarioSpec]] = []
    for combo in itertools.product(*(values for _, values in axes)):
        overrides: dict[str, Any] = {}
        for (key, _), value in zip(axes, combo):
            if isinstance(value, Mapping):
                overrides.update(value)
            else:
                overrides[key] = value
        points.append((overrides, apply_overrides(base, overrides)))
    return points


def describe_overrides(overrides: Mapping[str, Any]) -> str:
    """A compact ``key=value`` label for one grid point."""
    if not overrides:
        return "base"
    return ",".join(f"{key.rsplit('.', 1)[-1]}={value}" for key, value in overrides.items())
