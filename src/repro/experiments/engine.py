"""The scenario engine: run declarative specs, serially or across processes.

:func:`run_scenario` turns one :class:`~repro.experiments.scenario.ScenarioSpec`
into a :class:`ScenarioResult` with a unified summary schema.  :func:`sweep`
expands a base spec over a parameter grid and runs every point — each point
is an independent, deterministic simulation, so points run **in parallel
across worker processes** (``parallel=True``, the default) with bit-identical
summaries to a serial run.

Wall-clock time is recorded per point and for the whole sweep so the
benchmark harness (``benchmarks/bench_scenarios_report.py``) can track
simulator throughput (events per second) across PRs.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.common.errors import ConfigurationError, SnapshotError
from repro.experiments.options import UNSET, ExecutionOptions, merge_deprecated_kwargs
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenario import (
    Grid,
    ScenarioSpec,
    build_network_config,
    describe_overrides,
    expand_grid,
)
from repro.sim.snapshot import (
    KIND_SWEEP_POINT,
    SimulationState,
    load_checkpoint,
    read_snapshot_file,
    write_snapshot_file,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.spans import SpanRecorder


@dataclass
class ScenarioResult:
    """One scenario point: the spec that produced it, and what it measured.

    ``result`` holds the full per-node :class:`ExperimentResult` for ``sim``
    scenarios and is ``None`` for analytic kinds, whose numbers live in
    ``extra``.  :meth:`summary` flattens either into one dict with stable
    keys, the unified schema every report and sweep table is built from.
    ``wall_clock_seconds`` is real time, not virtual time, and is therefore
    excluded from :meth:`summary` so summaries are deterministic.
    ``telemetry_path`` names the JSONL time-series written for this point
    when the spec opted into telemetry recording (``None`` otherwise); it is
    likewise excluded from :meth:`summary`, whose bytes are pinned by the
    golden suite regardless of recording.  ``span_path`` is the same for the
    causal span log (``spec.spans.enabled``).
    """

    spec: ScenarioSpec
    overrides: dict[str, Any] = field(default_factory=dict)
    result: ExperimentResult | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    wall_clock_seconds: float = 0.0
    telemetry_path: str | None = None
    span_path: str | None = None

    @property
    def label(self) -> str:
        return describe_overrides(self.overrides)

    def summary(self) -> dict[str, Any]:
        base: dict[str, Any] = {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "label": self.label,
            "seed": self.spec.seed,
        }
        if self.result is None:
            base.update(self.extra)
            return base
        result = self.result
        latency_medians = [s.p50 for s in result.latency_local if s is not None]
        # Liveness is judged at the honest nodes; a crashed node's frontier
        # is pinned at 0 by construction and would mask real stalls.
        adversarial = set(self.spec.adversary.placement(result.num_nodes))
        honest_delivered = [
            epoch
            for node_id, epoch in enumerate(result.delivered_epochs)
            if node_id not in adversarial
        ]
        base.update(
            {
                "protocol": result.protocol,
                "num_nodes": result.num_nodes,
                "duration": result.duration,
                "mean_throughput": result.mean_throughput,
                "min_throughput": result.min_throughput,
                "max_throughput": result.max_throughput,
                "mean_p50_latency": (
                    sum(latency_medians) / len(latency_medians) if latency_medians else None
                ),
                "dispersal_fraction": (
                    sum(result.dispersal_fractions) / len(result.dispersal_fractions)
                    if result.dispersal_fractions
                    else 0.0
                ),
                "mean_block_size": result.mean_block_size,
                "delivered_epochs": min(honest_delivered, default=0),
                "events_processed": result.events_processed,
            }
        )
        # Adversary-facing metrics (see ExperimentResult.adversary_metrics)
        # join the flat schema so fault sweeps can put them in table columns.
        base.update(result.adversary_metrics)
        return base


def telemetry_filename(spec: ScenarioSpec, overrides: Mapping[str, Any] | None) -> str:
    """The per-point JSONL file name: scenario, grid label and seed.

    Every component a sweep varies is either in the label (grid overrides)
    or the seed, so parallel points never collide on a file.
    """
    label = describe_overrides(dict(overrides or {}))
    safe_label = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "base"
    return f"{spec.name}-{safe_label}-seed{spec.seed}.jsonl"


def span_filename(spec: ScenarioSpec, overrides: Mapping[str, Any] | None) -> str:
    """The per-point span-log file name, mirroring :func:`telemetry_filename`."""
    label = describe_overrides(dict(overrides or {}))
    safe_label = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "base"
    return f"{spec.name}-{safe_label}-seed{spec.seed}.spans.jsonl"


def checkpoint_filename(spec: ScenarioSpec, overrides: Mapping[str, Any] | None) -> str:
    """The per-point checkpoint file name, mirroring :func:`telemetry_filename`."""
    label = describe_overrides(dict(overrides or {}))
    safe_label = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "base"
    return f"{spec.name}-{safe_label}-seed{spec.seed}.ckpt"


#: Default directory for spec-driven checkpoints when no explicit path is given.
DEFAULT_CHECKPOINT_DIR = "checkpoints"


def run_scenario(
    spec: ScenarioSpec,
    overrides: Mapping[str, Any] | None = None,
    checkpoint_path: str | Path | None = UNSET,
    resume_from: "SimulationState | str | Path | None" = UNSET,
    *,
    options: ExecutionOptions | None = None,
) -> ScenarioResult:
    """Run one scenario point and wrap the outcome in a :class:`ScenarioResult`.

    When the spec opts into telemetry (``spec.telemetry.enabled``), a
    :class:`~repro.trace.recorder.TraceRecorder` rides along and its rows
    are written to ``spec.telemetry.out_dir`` under a per-point file name
    (:func:`telemetry_filename`); the summary itself is unchanged.

    When the spec opts into checkpointing (``spec.checkpoint_every``), a
    ``repro-ckpt-v1`` file is written every that many virtual seconds to
    ``options.checkpoint_path`` (default: :data:`DEFAULT_CHECKPOINT_DIR`
    under a per-point name from :func:`checkpoint_filename`).
    ``options.resume_from`` continues a previous checkpoint instead of
    building a fresh run; the checkpoint must belong to this exact scenario
    (fingerprint-checked).  The loose ``checkpoint_path`` / ``resume_from``
    keywords are deprecated shims for those fields.  Windowed execution
    (``options.windows``) is a sweep-level strategy — use
    :func:`sweep` for it, not this single-point entry.
    """
    started = time.perf_counter()
    opts = merge_deprecated_kwargs(
        options,
        "run_scenario",
        checkpoint_path=checkpoint_path,
        resume_from=resume_from,
    )
    if opts.windows is not None:
        raise ConfigurationError(
            "run_scenario executes one point monolithically; windowed "
            "execution is a sweep-level strategy (sweep(options="
            "ExecutionOptions(windows=...)))"
        )
    checkpoint_path = opts.checkpoint_path
    resume_from = opts.resume_from
    if spec.kind == "vid-cost":
        if resume_from is not None:
            raise SnapshotError(
                "vid-cost scenarios are analytic and cannot be checkpointed "
                "or resumed"
            )
        extra = _run_vid_cost(spec)
        return ScenarioResult(
            spec=spec,
            overrides=dict(overrides or {}),
            extra=extra,
            wall_clock_seconds=time.perf_counter() - started,
        )
    state: SimulationState | None = None
    if resume_from is not None:
        # Load here (rather than inside run_experiment) so a restored
        # recorder's rows can still be written out below.  The fingerprint
        # check happens in run_experiment against this spec's parameters.
        if isinstance(resume_from, SimulationState):
            state = resume_from
        else:
            state = load_checkpoint(resume_from)
        recorder = state.recorder
        spans = getattr(state, "spans", None)
    else:
        recorder = (
            TraceRecorder(interval=spec.telemetry.interval)
            if spec.telemetry.enabled
            else None
        )
        spans = SpanRecorder() if spec.spans.enabled else None
    if spec.checkpoint_every is not None and checkpoint_path is None:
        checkpoint_path = Path(DEFAULT_CHECKPOINT_DIR) / checkpoint_filename(
            spec, overrides
        )
    result = run_experiment(
        spec.protocol,
        build_network_config(spec),
        spec.duration,
        workload=spec.workload,
        node_config=spec.node,
        params=spec.params(),
        seed=spec.seed,
        warmup=spec.effective_warmup(),
        adversary=spec.adversary,
        max_epochs=spec.max_epochs,
        options=ExecutionOptions(
            recorder=recorder,
            span_recorder=spans,
            profiler=opts.profiler,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_path=checkpoint_path,
            checkpoint_meta={"spec": spec.to_dict(), "overrides": dict(overrides or {})},
            resume_from=state,
        ),
    )
    telemetry_path: str | None = None
    if recorder is not None and spec.telemetry.enabled:
        target = Path(spec.telemetry.out_dir) / telemetry_filename(spec, overrides)
        telemetry_path = str(recorder.write_jsonl(target))
    span_path: str | None = None
    if spans is not None and spec.spans.enabled:
        target = Path(spec.spans.out_dir) / span_filename(spec, overrides)
        span_path = str(spans.write_jsonl(target))
    return ScenarioResult(
        spec=spec,
        overrides=dict(overrides or {}),
        result=result,
        wall_clock_seconds=time.perf_counter() - started,
        telemetry_path=telemetry_path,
        span_path=span_path,
    )


def _run_vid_cost(spec: ScenarioSpec) -> dict[str, Any]:
    """The Fig. 2 point: modelled dispersal costs plus a measured AVID-M run."""
    from repro.common.params import ProtocolParams
    from repro.experiments.fig02 import measure_avid_m_dispersal_cost
    from repro.vid.costs import (
        avid_fp_per_node_cost,
        avid_m_per_node_cost,
        avid_per_node_cost,
        dispersal_lower_bound,
        normalised_cost,
    )

    n = spec.num_nodes
    block_size = spec.block_size
    params = ProtocolParams.for_n(n)
    return {
        "n": n,
        "block_size": block_size,
        "avid_m": normalised_cost(avid_m_per_node_cost(params, block_size), block_size),
        "avid_fp": normalised_cost(avid_fp_per_node_cost(params, block_size), block_size),
        "avid": normalised_cost(avid_per_node_cost(params, block_size), block_size),
        "lower_bound": normalised_cost(dispersal_lower_bound(params, block_size), block_size),
        "measured_avid_m": measure_avid_m_dispersal_cost(n, block_size),
    }


def _run_point(point: tuple[dict[str, Any], ScenarioSpec]) -> ScenarioResult:
    overrides, spec = point
    return run_scenario(spec, overrides)


# -- sweep crash-resume ----------------------------------------------------


def _point_fingerprint(
    base: ScenarioSpec, grid_values: dict[str, list[Any]], index: int, overrides: dict[str, Any]
) -> str:
    """A digest tying one sweep point to its base spec, grid and position.

    Stored in each per-point result file so a resumed sweep only accepts
    results produced by the *same* sweep: change the base spec, the grid or
    the point order and every stale file is ignored and re-run.
    """
    material = {
        "base": base.to_dict(),
        "grid": grid_values,
        "index": index,
        "overrides": overrides,
    }
    blob = json.dumps(material, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def _point_result_path(resume_dir: str | Path, index: int) -> Path:
    return Path(resume_dir) / f"point-{index:04d}.ckpt"


def _run_point_persist(
    point: tuple[dict[str, Any], ScenarioSpec, int, str, str],
) -> ScenarioResult:
    """Run one sweep point and journal its result for crash-resume.

    The result file is written atomically *after* the point completes, so a
    sweep killed mid-point leaves either a complete, loadable result or no
    file at all — never a torn one.
    """
    overrides, spec, index, resume_dir, fingerprint = point
    result = run_scenario(spec, overrides)
    write_snapshot_file(
        _point_result_path(resume_dir, index),
        result,
        kind=KIND_SWEEP_POINT,
        fingerprint=fingerprint,
        extra={"index": index, "label": describe_overrides(overrides)},
    )
    return result


def _load_finished_point(
    resume_dir: str | Path, index: int, fingerprint: str
) -> ScenarioResult | None:
    """A previously-journalled point result, or None if absent/stale/torn."""
    path = _point_result_path(resume_dir, index)
    if not path.exists():
        return None
    try:
        _, payload = read_snapshot_file(
            path, kind=KIND_SWEEP_POINT, expect_fingerprint=fingerprint
        )
    except SnapshotError:
        # Torn, foreign or stale journal entries are re-run, not fatal.
        return None
    return payload if isinstance(payload, ScenarioResult) else None


@dataclass
class SweepResult:
    """Every point of one sweep, in deterministic grid order."""

    base: ScenarioSpec
    grid: dict[str, list[Any]]
    points: list[ScenarioResult]
    parallel: bool
    workers: int
    wall_clock_seconds: float
    #: Point indices whose results were loaded from a resume journal instead
    #: of re-executed (empty when the sweep ran without ``resume_dir``).
    resumed_points: list[int] = field(default_factory=list)
    #: Window count when the sweep ran through the windowed engine
    #: (:mod:`repro.experiments.windowed`); ``None`` for monolithic points.
    windows: int | None = None

    def summaries(self) -> list[dict[str, Any]]:
        return [point.summary() for point in self.points]

    @property
    def events_processed(self) -> int:
        return sum(
            point.result.events_processed for point in self.points if point.result is not None
        )

    @property
    def tx_generated(self) -> int:
        """Transactions injected across every point of the sweep."""
        return sum(
            point.result.tx_generated for point in self.points if point.result is not None
        )

    @property
    def tx_committed(self) -> int:
        """Transactions committed across every point of the sweep."""
        return sum(
            point.result.tx_committed for point in self.points if point.result is not None
        )

    def table(self, columns: Sequence[str] | None = None) -> str:
        """An aligned text table of the point summaries (for CLI output)."""
        summaries = self.summaries()
        if not summaries:
            return "(no points)"
        if columns is None:
            columns = [key for key in summaries[0] if key not in ("name", "kind", "seed")]
        rows = [[_format_cell(summary.get(column)) for column in columns] for summary in summaries]
        widths = [
            max(len(str(column)), *(len(row[i]) for row in rows))
            for i, column in enumerate(columns)
        ]
        header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
        lines = [header, "  ".join("-" * width for width in widths)]
        lines.extend("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in rows)
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def default_workers(num_points: int) -> int:
    """Worker-process count: one per point, capped at the CPU count."""
    return max(1, min(num_points, os.cpu_count() or 1))


def run_points(
    points: list[tuple[dict[str, Any], ScenarioSpec]],
    parallel: bool = UNSET,
    max_workers: int | None = UNSET,
    *,
    options: ExecutionOptions | None = None,
) -> tuple[list[ScenarioResult], int]:
    """Run expanded grid points, optionally across processes.

    Returns the results in point order plus the worker count used.  Each
    point is a pure function of its spec (all randomness is seeded from it),
    so the parallel path produces summaries identical to the serial one.
    ``options`` supplies ``parallel`` / ``workers``; the loose keywords of
    those names (``max_workers`` for ``workers``) are deprecated shims.
    """
    opts = merge_deprecated_kwargs(
        options,
        "run_points",
        aliases={"max_workers": "workers"},
        parallel=parallel,
        max_workers=max_workers,
    )
    workers = opts.workers if opts.workers is not None else default_workers(len(points))
    if not opts.parallel or workers <= 1 or len(points) <= 1:
        return [_run_point(point) for point in points], 1
    with ProcessPoolExecutor(max_workers=workers) as executor:
        results = list(executor.map(_run_point, points))
    return results, workers


def sweep(
    base: ScenarioSpec,
    grid: Grid | None = None,
    parallel: bool = UNSET,
    max_workers: int | None = UNSET,
    resume_dir: str | Path | None = UNSET,
    *,
    options: ExecutionOptions | None = None,
) -> SweepResult:
    """Expand ``base`` over ``grid`` and run every point.

    Args:
        base: the spec every point starts from.
        grid: ``dotted.path -> values`` axes (see
            :data:`repro.experiments.scenario.Grid`); ``None`` runs just the
            base spec.
        options: the execution strategy (:class:`ExecutionOptions`):

            * ``parallel`` — run points across worker processes (the
              default).  Points never share state, so this is safe for any
              scenario; flip to ``False`` for easier debugging or when
              profiling a single run.
            * ``workers`` — process count (default: one per point, capped
              at the machine's CPU count).
            * ``resume_dir`` — crash-resume journal directory.  Each
              completed point writes its result there atomically
              (``point-NNNN.ckpt``, ``repro-ckpt-v1`` format); rerunning an
              interrupted sweep with the same ``resume_dir`` re-executes
              only the unfinished points and produces a result identical to
              an uninterrupted run.  Stale journals (different base spec,
              grid, or point order) are detected by fingerprint and ignored.
            * ``windows`` — split every point's virtual-time horizon into
              this many checkpoint-hand-off windows and run them through
              :mod:`repro.experiments.windowed` (pipelined across points,
              with warmup-prefix sharing); summaries are byte-identical to
              monolithic points.
        parallel / max_workers / resume_dir: deprecated shims for the
            options fields of (almost) the same names (``max_workers`` maps
            to ``workers``).
    """
    opts = merge_deprecated_kwargs(
        options,
        "sweep",
        aliases={"max_workers": "workers"},
        parallel=parallel,
        max_workers=max_workers,
        resume_dir=resume_dir,
    )
    if opts.windows is not None:
        # Imported here: the windowed engine builds on this module.
        from repro.experiments.windowed import run_windowed_sweep

        return run_windowed_sweep(base, grid, opts)
    started = time.perf_counter()
    # Materialise axis values first: iterator-valued axes must be recorded
    # with the same values expand_grid consumes.
    grid_values = {key: list(values) for key, values in (grid or {}).items()}
    points = expand_grid(base, grid_values)
    resumed: list[int] = []
    if opts.resume_dir is None:
        results, workers = run_points(points, options=opts)
    else:
        journal = Path(opts.resume_dir)
        journal.mkdir(parents=True, exist_ok=True)
        fingerprints = [
            _point_fingerprint(base, grid_values, index, overrides)
            for index, (overrides, _) in enumerate(points)
        ]
        loaded: dict[int, ScenarioResult] = {}
        for index, fingerprint in enumerate(fingerprints):
            prior = _load_finished_point(journal, index, fingerprint)
            if prior is not None:
                loaded[index] = prior
        todo = [
            (overrides, spec, index, str(journal), fingerprints[index])
            for index, (overrides, spec) in enumerate(points)
            if index not in loaded
        ]
        workers = (
            opts.workers if opts.workers is not None else default_workers(max(1, len(todo)))
        )
        if not opts.parallel or workers <= 1 or len(todo) <= 1:
            workers = 1
            fresh = [_run_point_persist(point) for point in todo]
        else:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                fresh = list(executor.map(_run_point_persist, todo))
        fresh_by_index = {point[2]: result for point, result in zip(todo, fresh)}
        results = [
            loaded[index] if index in loaded else fresh_by_index[index]
            for index in range(len(points))
        ]
        resumed = sorted(loaded)
    return SweepResult(
        base=base,
        grid=grid_values,
        points=results,
        parallel=opts.parallel and workers > 1,
        workers=workers,
        wall_clock_seconds=time.perf_counter() - started,
        resumed_points=resumed,
    )
