"""The scenario engine: run declarative specs, serially or across processes.

:func:`run_scenario` turns one :class:`~repro.experiments.scenario.ScenarioSpec`
into a :class:`ScenarioResult` with a unified summary schema.  :func:`sweep`
expands a base spec over a parameter grid and runs every point — each point
is an independent, deterministic simulation, so points run **in parallel
across worker processes** (``parallel=True``, the default) with bit-identical
summaries to a serial run.

Wall-clock time is recorded per point and for the whole sweep so the
benchmark harness (``benchmarks/bench_scenarios_report.py``) can track
simulator throughput (events per second) across PRs.
"""

from __future__ import annotations

import os
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenario import (
    Grid,
    ScenarioSpec,
    build_network_config,
    describe_overrides,
    expand_grid,
)
from repro.trace.recorder import TraceRecorder


@dataclass
class ScenarioResult:
    """One scenario point: the spec that produced it, and what it measured.

    ``result`` holds the full per-node :class:`ExperimentResult` for ``sim``
    scenarios and is ``None`` for analytic kinds, whose numbers live in
    ``extra``.  :meth:`summary` flattens either into one dict with stable
    keys, the unified schema every report and sweep table is built from.
    ``wall_clock_seconds`` is real time, not virtual time, and is therefore
    excluded from :meth:`summary` so summaries are deterministic.
    ``telemetry_path`` names the JSONL time-series written for this point
    when the spec opted into telemetry recording (``None`` otherwise); it is
    likewise excluded from :meth:`summary`, whose bytes are pinned by the
    golden suite regardless of recording.
    """

    spec: ScenarioSpec
    overrides: dict[str, Any] = field(default_factory=dict)
    result: ExperimentResult | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    wall_clock_seconds: float = 0.0
    telemetry_path: str | None = None

    @property
    def label(self) -> str:
        return describe_overrides(self.overrides)

    def summary(self) -> dict[str, Any]:
        base: dict[str, Any] = {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "label": self.label,
            "seed": self.spec.seed,
        }
        if self.result is None:
            base.update(self.extra)
            return base
        result = self.result
        latency_medians = [s.p50 for s in result.latency_local if s is not None]
        # Liveness is judged at the honest nodes; a crashed node's frontier
        # is pinned at 0 by construction and would mask real stalls.
        adversarial = set(self.spec.adversary.placement(result.num_nodes))
        honest_delivered = [
            epoch
            for node_id, epoch in enumerate(result.delivered_epochs)
            if node_id not in adversarial
        ]
        base.update(
            {
                "protocol": result.protocol,
                "num_nodes": result.num_nodes,
                "duration": result.duration,
                "mean_throughput": result.mean_throughput,
                "min_throughput": result.min_throughput,
                "max_throughput": result.max_throughput,
                "mean_p50_latency": (
                    sum(latency_medians) / len(latency_medians) if latency_medians else None
                ),
                "dispersal_fraction": (
                    sum(result.dispersal_fractions) / len(result.dispersal_fractions)
                    if result.dispersal_fractions
                    else 0.0
                ),
                "mean_block_size": result.mean_block_size,
                "delivered_epochs": min(honest_delivered, default=0),
                "events_processed": result.events_processed,
            }
        )
        # Adversary-facing metrics (see ExperimentResult.adversary_metrics)
        # join the flat schema so fault sweeps can put them in table columns.
        base.update(result.adversary_metrics)
        return base


def telemetry_filename(spec: ScenarioSpec, overrides: Mapping[str, Any] | None) -> str:
    """The per-point JSONL file name: scenario, grid label and seed.

    Every component a sweep varies is either in the label (grid overrides)
    or the seed, so parallel points never collide on a file.
    """
    label = describe_overrides(dict(overrides or {}))
    safe_label = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "base"
    return f"{spec.name}-{safe_label}-seed{spec.seed}.jsonl"


def run_scenario(
    spec: ScenarioSpec, overrides: Mapping[str, Any] | None = None
) -> ScenarioResult:
    """Run one scenario point and wrap the outcome in a :class:`ScenarioResult`.

    When the spec opts into telemetry (``spec.telemetry.enabled``), a
    :class:`~repro.trace.recorder.TraceRecorder` rides along and its rows
    are written to ``spec.telemetry.out_dir`` under a per-point file name
    (:func:`telemetry_filename`); the summary itself is unchanged.
    """
    started = time.perf_counter()
    if spec.kind == "vid-cost":
        extra = _run_vid_cost(spec)
        return ScenarioResult(
            spec=spec,
            overrides=dict(overrides or {}),
            extra=extra,
            wall_clock_seconds=time.perf_counter() - started,
        )
    recorder = TraceRecorder(interval=spec.telemetry.interval) if spec.telemetry.enabled else None
    result = run_experiment(
        spec.protocol,
        build_network_config(spec),
        spec.duration,
        workload=spec.workload,
        node_config=spec.node,
        params=spec.params(),
        seed=spec.seed,
        warmup=spec.effective_warmup(),
        adversary=spec.adversary,
        recorder=recorder,
        max_epochs=spec.max_epochs,
    )
    telemetry_path: str | None = None
    if recorder is not None:
        target = Path(spec.telemetry.out_dir) / telemetry_filename(spec, overrides)
        telemetry_path = str(recorder.write_jsonl(target))
    return ScenarioResult(
        spec=spec,
        overrides=dict(overrides or {}),
        result=result,
        wall_clock_seconds=time.perf_counter() - started,
        telemetry_path=telemetry_path,
    )


def _run_vid_cost(spec: ScenarioSpec) -> dict[str, Any]:
    """The Fig. 2 point: modelled dispersal costs plus a measured AVID-M run."""
    from repro.common.params import ProtocolParams
    from repro.experiments.fig02 import measure_avid_m_dispersal_cost
    from repro.vid.costs import (
        avid_fp_per_node_cost,
        avid_m_per_node_cost,
        avid_per_node_cost,
        dispersal_lower_bound,
        normalised_cost,
    )

    n = spec.num_nodes
    block_size = spec.block_size
    params = ProtocolParams.for_n(n)
    return {
        "n": n,
        "block_size": block_size,
        "avid_m": normalised_cost(avid_m_per_node_cost(params, block_size), block_size),
        "avid_fp": normalised_cost(avid_fp_per_node_cost(params, block_size), block_size),
        "avid": normalised_cost(avid_per_node_cost(params, block_size), block_size),
        "lower_bound": normalised_cost(dispersal_lower_bound(params, block_size), block_size),
        "measured_avid_m": measure_avid_m_dispersal_cost(n, block_size),
    }


def _run_point(point: tuple[dict[str, Any], ScenarioSpec]) -> ScenarioResult:
    overrides, spec = point
    return run_scenario(spec, overrides)


@dataclass
class SweepResult:
    """Every point of one sweep, in deterministic grid order."""

    base: ScenarioSpec
    grid: dict[str, list[Any]]
    points: list[ScenarioResult]
    parallel: bool
    workers: int
    wall_clock_seconds: float

    def summaries(self) -> list[dict[str, Any]]:
        return [point.summary() for point in self.points]

    @property
    def events_processed(self) -> int:
        return sum(
            point.result.events_processed for point in self.points if point.result is not None
        )

    @property
    def tx_generated(self) -> int:
        """Transactions injected across every point of the sweep."""
        return sum(
            point.result.tx_generated for point in self.points if point.result is not None
        )

    @property
    def tx_committed(self) -> int:
        """Transactions committed across every point of the sweep."""
        return sum(
            point.result.tx_committed for point in self.points if point.result is not None
        )

    def table(self, columns: Sequence[str] | None = None) -> str:
        """An aligned text table of the point summaries (for CLI output)."""
        summaries = self.summaries()
        if not summaries:
            return "(no points)"
        if columns is None:
            columns = [key for key in summaries[0] if key not in ("name", "kind", "seed")]
        rows = [[_format_cell(summary.get(column)) for column in columns] for summary in summaries]
        widths = [
            max(len(str(column)), *(len(row[i]) for row in rows))
            for i, column in enumerate(columns)
        ]
        header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
        lines = [header, "  ".join("-" * width for width in widths)]
        lines.extend("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in rows)
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def default_workers(num_points: int) -> int:
    """Worker-process count: one per point, capped at the CPU count."""
    return max(1, min(num_points, os.cpu_count() or 1))


def run_points(
    points: list[tuple[dict[str, Any], ScenarioSpec]],
    parallel: bool = True,
    max_workers: int | None = None,
) -> tuple[list[ScenarioResult], int]:
    """Run expanded grid points, optionally across processes.

    Returns the results in point order plus the worker count used.  Each
    point is a pure function of its spec (all randomness is seeded from it),
    so the parallel path produces summaries identical to the serial one.
    """
    workers = max_workers if max_workers is not None else default_workers(len(points))
    if not parallel or workers <= 1 or len(points) <= 1:
        return [_run_point(point) for point in points], 1
    with ProcessPoolExecutor(max_workers=workers) as executor:
        results = list(executor.map(_run_point, points))
    return results, workers


def sweep(
    base: ScenarioSpec,
    grid: Grid | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
) -> SweepResult:
    """Expand ``base`` over ``grid`` and run every point.

    Args:
        base: the spec every point starts from.
        grid: ``dotted.path -> values`` axes (see
            :data:`repro.experiments.scenario.Grid`); ``None`` runs just the
            base spec.
        parallel: run points across worker processes (the default).  Points
            never share state, so this is safe for any scenario; flip to
            ``False`` for easier debugging or when profiling a single run.
        max_workers: process count (default: one per point, capped at the
            machine's CPU count).
    """
    started = time.perf_counter()
    # Materialise axis values first: iterator-valued axes must be recorded
    # with the same values expand_grid consumes.
    grid_values = {key: list(values) for key, values in (grid or {}).items()}
    points = expand_grid(base, grid_values)
    results, workers = run_points(points, parallel=parallel, max_workers=max_workers)
    return SweepResult(
        base=base,
        grid=grid_values,
        points=results,
        parallel=parallel and workers > 1,
        workers=workers,
        wall_clock_seconds=time.perf_counter() - started,
    )
