"""Fig. 12 and Fig. 13 — scalability with the cluster size (S6.4).

The paper measures DispersedLedger at N = 16..128 nodes (10 MB/s per-node
caps, 100 ms one-way delays, fixed 500 KB / 1 MB blocks) and reports:

* Fig. 12: system throughput drops only slightly as N grows 8x, because the
  O(N^2) binary-agreement overhead takes a larger share of a constant-sized
  block; larger blocks amortise the fixed cost better.
* Fig. 13: the fraction of a node's traffic spent on dispersal falls with N
  (each node holds a ``1/(N-2f)`` slice) and with block size.

Message-level simulation is used for the small cluster sizes and the
byte-accurate analytical model (:mod:`repro.experiments.cost_model`) for the
full 16..128 sweep; :func:`validate_cost_model` quantifies how closely the
model tracks the simulator where both are available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProtocolParams
from repro.core.config import NodeConfig
from repro.experiments.cost_model import ThroughputEstimate, estimate_throughput
from repro.experiments.engine import run_scenario
from repro.experiments.runner import ExperimentResult, WorkloadSpec
from repro.experiments.scenario import (
    BandwidthSpec,
    ScenarioSpec,
    TopologySpec,
    build_network_config,
)
from repro.sim.network import NetworkConfig
from repro.workload.traces import MB

#: Cluster sizes of the paper's scalability sweep.
PAPER_CLUSTER_SIZES = (16, 32, 64, 128)
#: Block sizes of the paper's scalability sweep.
PAPER_BLOCK_SIZES = (500_000, 1_000_000)
#: Per-node bandwidth cap of the scalability experiments (10 MB/s).
SCALABILITY_BANDWIDTH = 10 * MB
#: One-way propagation delay of the scalability experiments.
SCALABILITY_DELAY = 0.1


@dataclass(frozen=True)
class ScalabilityPoint:
    """One point of the Fig. 12 / Fig. 13 sweep."""

    n: int
    block_size: int
    throughput: float
    dispersal_fraction: float
    source: str  # "model" or "simulation"


def model_sweep(
    cluster_sizes: tuple[int, ...] = PAPER_CLUSTER_SIZES,
    block_sizes: tuple[int, ...] = PAPER_BLOCK_SIZES,
    bandwidth: float = SCALABILITY_BANDWIDTH,
    protocol: str = "dl",
) -> list[ScalabilityPoint]:
    """The full analytic sweep over cluster and block sizes."""
    points = []
    for block_size in block_sizes:
        for n in cluster_sizes:
            params = ProtocolParams.for_n(n)
            estimate: ThroughputEstimate = estimate_throughput(
                params, block_size, bandwidth, one_way_delay=SCALABILITY_DELAY, protocol=protocol
            )
            points.append(
                ScalabilityPoint(
                    n=n,
                    block_size=block_size,
                    throughput=estimate.throughput,
                    dispersal_fraction=estimate.dispersal_fraction,
                    source="model",
                )
            )
    return points


def scalability_spec(
    n: int,
    block_size: int,
    duration: float = 30.0,
    bandwidth: float = SCALABILITY_BANDWIDTH,
    protocol: str = "dl",
    seed: int = 0,
) -> ScenarioSpec:
    """The declarative scenario for one (N, block size) scalability point."""
    return ScenarioSpec(
        name="scalability",
        protocol=protocol,
        topology=TopologySpec(kind="uniform", num_nodes=n, delay=SCALABILITY_DELAY),
        bandwidth=BandwidthSpec(kind="constant", rate=bandwidth, egress_headroom=1.0),
        workload=WorkloadSpec(kind="saturating"),
        node=NodeConfig(max_block_size=block_size, nagle_size=block_size),
        duration=duration,
        warmup_fraction=0.25,
        seed=seed,
    )


def fixed_block_network(n: int, bandwidth: float = SCALABILITY_BANDWIDTH) -> NetworkConfig:
    """The controlled network of the scalability experiments."""
    return build_network_config(scalability_spec(n, 500_000, bandwidth=bandwidth))


def simulate_point(
    n: int,
    block_size: int,
    duration: float = 30.0,
    bandwidth: float = SCALABILITY_BANDWIDTH,
    protocol: str = "dl",
    seed: int = 0,
) -> ScalabilityPoint:
    """Message-level measurement of one (N, block size) point.

    The block size is pinned by configuring the node's maximum block size and
    offering a saturating workload, mirroring how the paper fixes block sizes
    for this experiment.
    """
    spec = scalability_spec(
        n, block_size, duration=duration, bandwidth=bandwidth, protocol=protocol, seed=seed
    )
    result: ExperimentResult = run_scenario(spec).result
    mean_fraction = sum(result.dispersal_fractions) / len(result.dispersal_fractions)
    return ScalabilityPoint(
        n=n,
        block_size=block_size,
        throughput=result.mean_throughput,
        dispersal_fraction=mean_fraction,
        source="simulation",
    )


@dataclass(frozen=True)
class ModelValidation:
    """Model-vs-simulation comparison at one point (used in EXPERIMENTS.md)."""

    n: int
    block_size: int
    simulated_throughput: float
    modelled_throughput: float
    simulated_fraction: float
    modelled_fraction: float

    @property
    def throughput_ratio(self) -> float:
        if self.modelled_throughput == 0:
            return float("inf")
        return self.simulated_throughput / self.modelled_throughput


def validate_cost_model(
    n: int = 16,
    block_size: int = 500_000,
    duration: float = 30.0,
    protocol: str = "dl",
) -> ModelValidation:
    """Run both the simulator and the model at a small N and compare them."""
    simulated = simulate_point(n, block_size, duration=duration, protocol=protocol)
    params = ProtocolParams.for_n(n)
    modelled = estimate_throughput(
        params, block_size, SCALABILITY_BANDWIDTH, one_way_delay=SCALABILITY_DELAY, protocol=protocol
    )
    return ModelValidation(
        n=n,
        block_size=block_size,
        simulated_throughput=simulated.throughput,
        modelled_throughput=modelled.throughput,
        simulated_fraction=simulated.dispersal_fraction,
        modelled_fraction=modelled.dispersal_fraction,
    )
