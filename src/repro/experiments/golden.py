"""Golden-summary snapshots: pin every catalog scenario's summary bit-for-bit.

The engine's summaries are pure functions of their spec (every stochastic
input derives from ``seed``), so a summary can be snapshotted once and
diffed exactly — the regression net that lets perf PRs (event-loop or pipe
rewrites, codec changes) prove behaviour is pinned.  The harness here is
shared by the pytest suite (``tests/test_golden_summaries.py``, snapshots
under ``tests/golden/``) and by ``pytest --update-golden`` regeneration.

Golden runs are the catalog entries at *pinned short durations* (seconds of
virtual time, so the whole suite stays inside a test budget) with the most
expensive axes trimmed; :data:`GOLDEN_CONFIGS` is the single place those
pins live, and the pinned configuration is embedded in each snapshot so a
change to the pins shows up in the snapshot diff too.

The suite is split into two tiers so local tier-1 runs stay snappy: the
scenarios in :data:`SLOW_GOLDEN` (the big geo testbeds and widest sweeps,
~50 s of the suite's ~65 s) carry the ``slow`` pytest marker, which
``pytest.ini`` deselects by default — a plain ``pytest`` run verifies the
fast tier only, while CI's golden step (and a local
``pytest tests/test_golden_summaries.py -m golden``) runs both tiers.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.experiments.catalog import get_scenario, list_scenarios
from repro.experiments.engine import run_points, run_scenario
from repro.experiments.options import ExecutionOptions
from repro.experiments.scenario import apply_overrides, expand_grid
from repro.trace.analysis import summarise_telemetry
from repro.trace.diff import envelope_from_summary
from repro.trace.recorder import TelemetrySpec, read_jsonl

#: Default virtual duration of a golden run.
GOLDEN_DURATION = 3.0


@dataclass(frozen=True)
class GoldenConfig:
    """How one catalog scenario is pinned for its golden snapshot.

    Attributes:
        duration: virtual seconds per point (short by design).
        overrides: dotted-path overrides applied to the base spec, used to
            move mid-run events (crash times, warmups) inside the shortened
            window.
        grid: replacement sweep axes; ``None`` keeps the catalog grid.  Used
            to keep the most expensive axes (N = 32 clusters, wide load
            sweeps) out of the per-commit regression loop — the trimmed axes
            are still exercised by the benchmarks.
    """

    duration: float = GOLDEN_DURATION
    overrides: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, tuple] | None = None


GOLDEN_CONFIGS: dict[str, GoldenConfig] = {
    # vid-cost is analytic plus one measured dispersal; duration is unused.
    "fig02-vid-cost": GoldenConfig(),
    "fig08-geo": GoldenConfig(duration=2.5),
    "fig10-latency": GoldenConfig(
        duration=2.5,
        grid={
            "protocol": ("dl", "hb"),
            "workload.rate_bytes_per_second": (1_000_000.0,),
        },
    ),
    "fig11a-spatial": GoldenConfig(duration=2.5, grid={"protocol": ("dl", "hb")}),
    "fig11b-temporal": GoldenConfig(
        duration=2.5,
        grid={
            "protocol": ("dl",),
            "trace": (
                {"bandwidth.kind": "constant"},
                {"bandwidth.kind": "gauss-markov"},
            ),
        },
    ),
    "fig12-scalability": GoldenConfig(
        duration=2.5,
        grid={
            "topology.num_nodes": (16,),
            "block": (
                {"node.max_block_size": 500_000, "node.nagle_size": 500_000},
                {"node.max_block_size": 1_000_000, "node.nagle_size": 1_000_000},
            ),
        },
    ),
    "fig15-vultr": GoldenConfig(duration=2.5, grid={"protocol": ("dl", "hb")}),
    "straggler-hetero": GoldenConfig(duration=2.5, grid={"protocol": ("dl", "hb")}),
    "trace-replay-wan": GoldenConfig(duration=2.5),
    "trace-scale-sweep": GoldenConfig(duration=2.5, grid={"bandwidth.trace_scale": (0.5, 2.0)}),
    "columnar-scale": GoldenConfig(duration=2.0),
    "mid-run-crash": GoldenConfig(overrides={"adversary.crash_time": 1.5}),
    "bursty-load": GoldenConfig(duration=4.0, overrides={"warmup": 1.0}),
    "latency-fault-matrix": GoldenConfig(
        grid={
            "workload.rate_bytes_per_second": (500_000.0,),
            "faults": (
                {"adversary.kind": "none", "adversary.count": 0},
                {"adversary.kind": "crash", "adversary.count": 1},
                {"adversary.kind": "crash", "adversary.count": 2},
                {"adversary.kind": "crash-after", "adversary.count": 2,
                 "adversary.crash_time": 1.5},
                {"adversary.kind": "censor", "adversary.count": 2},
                {"adversary.kind": "equivocate", "adversary.count": 1},
            ),
        },
    ),
}


#: Scenarios whose golden runs dominate the suite's wall clock (>= ~6 s
#: each on the reference single-core box: the 15/16-city geo testbeds, the
#: N = 16 controlled and scalability sweeps, and the 4 s bursty-load run).
#: Their snapshot tests carry the ``slow`` marker and are deselected from
#: plain ``pytest`` runs; CI's golden step runs them on every push.
SLOW_GOLDEN: frozenset[str] = frozenset(
    {
        "bursty-load",
        "columnar-scale",
        "fig08-geo",
        "fig10-latency",
        "fig11a-spatial",
        "fig11b-temporal",
        "fig12-scalability",
        "fig15-vultr",
    }
)


def golden_names() -> list[str]:
    """Every scenario with a golden snapshot: the whole catalog, sorted."""
    return [entry.name for entry in list_scenarios()]


def golden_points(name: str):
    """The pinned ``(overrides, spec)`` grid points for one scenario."""
    entry = get_scenario(name)
    config = GOLDEN_CONFIGS.get(name, GoldenConfig())
    # Overrides first: a shortened duration may only be valid once e.g. the
    # warmup override has moved inside the new window.
    base = apply_overrides(entry.base, dict(config.overrides))
    base = replace(base, duration=config.duration)
    grid = dict(entry.grid or {}) if config.grid is None else dict(config.grid)
    return config, base, expand_grid(base, grid)


def golden_payload(name: str) -> dict[str, Any]:
    """Run one scenario's pinned points (serially) and collect the snapshot."""
    config, base, points = golden_points(name)
    results, _ = run_points(points, options=ExecutionOptions(parallel=False))
    return {
        "scenario": name,
        "golden": {
            "duration": config.duration,
            "overrides": dict(config.overrides),
            "points": len(points),
        },
        "summaries": [result.summary() for result in results],
    }


def canonical_json(payload: Any) -> str:
    """The byte-stable serialisation the golden files are stored in."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# Telemetry envelopes
#
# A golden *summary* pins the run's end state bit-for-bit; a golden
# *envelope* pins the run's telemetry — the per-node time-weighted mean/max
# of every queue and utilisation series — within declared tolerances (see
# :mod:`repro.trace.diff`).  Summaries catch behaviour changes; envelopes
# catch the regressions summaries can't see, like a queue that now spikes
# 10x mid-run but drains before the end.  Envelopes live under
# ``tests/golden/envelopes/`` and regenerate through the same
# ``pytest --update-golden`` flow; CI additionally re-records the scenario
# and diffs it against the pinned file on every push.


@dataclass(frozen=True)
class EnvelopeConfig:
    """How one catalog scenario is pinned for its telemetry envelope.

    Attributes:
        duration: virtual seconds recorded (short, like the golden runs).
        interval: telemetry sampling interval in virtual seconds.
        seed: master seed of the recorded run.
        overrides: dotted-path overrides applied to the base spec.
    """

    duration: float = 6.0
    interval: float = 0.5
    seed: int = 0
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def run_fields(self) -> dict[str, Any]:
        """The envelope's ``run`` block — what reproduces the recording."""
        return {
            "duration": self.duration,
            "interval": self.interval,
            "seed": self.seed,
            "overrides": dict(self.overrides),
        }


#: The scenarios that pin a telemetry envelope.  Deliberately a subset of
#: the golden catalog: an envelope only earns its keep where telemetry has
#: structure worth guarding (measured-bandwidth replay, saturated queues).
ENVELOPE_CONFIGS: dict[str, EnvelopeConfig] = {
    "trace-replay-wan": EnvelopeConfig(duration=6.0, interval=0.5),
    "straggler-hetero": EnvelopeConfig(duration=6.0, interval=0.5),
    "censor-victim": EnvelopeConfig(duration=6.0, interval=0.5),
    # bursty-load's catalog warmup (5 s) would swallow most of a 6 s pin, so
    # the envelope run shortens it; the burst structure is what we pin.
    "bursty-load": EnvelopeConfig(
        duration=6.0, interval=0.5, overrides={"warmup": 1.0}
    ),
}


def envelope_names() -> list[str]:
    """The scenarios with a pinned envelope, sorted."""
    return sorted(ENVELOPE_CONFIGS)


def record_envelope_rows(name: str) -> list[dict[str, Any]]:
    """Run one envelope scenario's pinned recording; returns telemetry rows."""
    entry = get_scenario(name)
    config = ENVELOPE_CONFIGS[name]
    base = apply_overrides(entry.base, dict(config.overrides))
    with tempfile.TemporaryDirectory(prefix="repro-envelope-") as scratch:
        spec = replace(
            base,
            duration=config.duration,
            seed=config.seed,
            telemetry=TelemetrySpec(
                enabled=True, interval=config.interval, out_dir=scratch
            ),
        )
        result = run_scenario(spec)
        return read_jsonl(Path(result.telemetry_path))


def envelope_payload(name: str) -> dict[str, Any]:
    """Record one envelope scenario and reduce it to its pinnable envelope."""
    config = ENVELOPE_CONFIGS[name]
    summary = summarise_telemetry(record_envelope_rows(name))
    return envelope_from_summary(summary, scenario=name, run=config.run_fields())
