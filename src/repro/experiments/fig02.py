"""Fig. 2 — per-node communication cost of AVID-M vs AVID-FP during dispersal.

The paper plots, for block sizes of 100 KB and 1 MB and cluster sizes up to
N = 128, the number of bytes a node downloads during one dispersal,
normalised by the block size.  AVID-M stays close to the information-
theoretic lower bound of ``1/(N - 2f)`` while AVID-FP's cross-checksum
overhead grows quadratically and exceeds the full block size past N ~ 120.

Two things are produced here:

* the *modelled* curves, using the byte formulas of
  :mod:`repro.vid.costs` (exactly what the paper's figure plots);
* a *measured* AVID-M data point for moderate N, obtained by actually
  running a dispersal on the instant router and counting received bytes —
  this validates that the implementation matches the model it is compared
  against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProtocolParams
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork
from repro.vid.avid_m import AvidMInstance, disperse_many
from repro.vid.codec import RealCodec
from repro.vid.costs import (
    avid_fp_per_node_cost,
    avid_m_per_node_cost,
    avid_per_node_cost,
    dispersal_lower_bound,
    normalised_cost,
)
from repro.common.ids import VIDInstanceId


@dataclass(frozen=True)
class VidCostRow:
    """One row of the Fig. 2 data: costs normalised by the block size."""

    n: int
    block_size: int
    avid_m: float
    avid_fp: float
    avid: float
    lower_bound: float


def vid_cost_curve(
    n_values: tuple[int, ...] = (4, 8, 16, 32, 64, 100, 128),
    block_sizes: tuple[int, ...] = (100_000, 1_000_000),
) -> list[VidCostRow]:
    """The modelled Fig. 2 curves for every (N, block size) combination."""
    rows = []
    for block_size in block_sizes:
        for n in n_values:
            params = ProtocolParams.for_n(n)
            rows.append(
                VidCostRow(
                    n=n,
                    block_size=block_size,
                    avid_m=normalised_cost(avid_m_per_node_cost(params, block_size), block_size),
                    avid_fp=normalised_cost(avid_fp_per_node_cost(params, block_size), block_size),
                    avid=normalised_cost(avid_per_node_cost(params, block_size), block_size),
                    lower_bound=normalised_cost(
                        dispersal_lower_bound(params, block_size), block_size
                    ),
                )
            )
    return rows


class _ByteCountingRouter:
    """An instant router that also counts bytes received per node."""

    def __init__(self, num_nodes: int):
        self.inner = InstantNetwork(num_nodes)
        self.received_bytes = [0] * num_nodes

    @property
    def num_nodes(self) -> int:
        return self.inner.num_nodes

    @property
    def now(self) -> float:
        return self.inner.now

    def send(self, src, dst, msg, rank: float = 0.0, abort=None) -> None:
        if src != dst:
            self.received_bytes[dst] += msg.wire_size
        self.inner.send(src, dst, msg, rank, abort)

    def schedule(self, delay, callback) -> None:
        self.inner.schedule(delay, callback)


def measure_avid_m_dispersal_cost(n: int, block_size: int) -> float:
    """Run one real AVID-M dispersal and return the mean per-node download,
    normalised by the block size."""
    params = ProtocolParams.for_n(n)
    router = _ByteCountingRouter(n)
    codec = RealCodec(params)
    instance_id = VIDInstanceId(epoch=1, proposer=0)
    instances = []
    completed = []
    for node_id in range(n):
        ctx = NodeContext(node_id, router, router)
        instance = AvidMInstance(
            params=params,
            instance=instance_id,
            ctx=ctx,
            codec=codec,
            on_complete=lambda _id: completed.append(1),
            allowed_disperser=0,
        )
        router.inner.attach(node_id, _SingleInstanceProcess(instance))
        instances.append(instance)
    payload = bytes(block_size)
    instances[0].disperse(payload)
    router.inner.run()
    if len(completed) < n:
        raise RuntimeError("dispersal did not complete at every node")
    mean_bytes = sum(router.received_bytes) / n
    return mean_bytes / block_size


def measure_avid_m_batch_dispersal_cost(
    n: int, block_size: int, num_blocks: int
) -> float:
    """Like :func:`measure_avid_m_dispersal_cost`, but disperse ``num_blocks``
    payloads in one batch (one VID instance per block, all proposed by node 0
    through :func:`repro.vid.avid_m.disperse_many`, which batches the
    Reed-Solomon parity work into a single GF(256) kernel call).

    Returns the mean per-node download normalised by the *total* payload
    size; per block it matches the single-dispersal measurement.
    """
    params = ProtocolParams.for_n(n)
    router = _ByteCountingRouter(n)
    codec = RealCodec(params)
    instance_ids = [VIDInstanceId(epoch=1 + s, proposer=0) for s in range(num_blocks)]
    completed: list[VIDInstanceId] = []
    by_node: list[dict[VIDInstanceId, AvidMInstance]] = []
    for node_id in range(n):
        ctx = NodeContext(node_id, router, router)
        instances = {
            instance_id: AvidMInstance(
                params=params,
                instance=instance_id,
                ctx=ctx,
                codec=codec,
                on_complete=completed.append,
                allowed_disperser=0,
            )
            for instance_id in instance_ids
        }
        router.inner.attach(node_id, _MultiInstanceProcess(instances))
        by_node.append(instances)
    payloads = [bytes([s % 256]) * block_size for s in range(num_blocks)]
    disperse_many([by_node[0][instance_id] for instance_id in instance_ids], payloads)
    router.inner.run()
    if len(completed) < n * num_blocks:
        raise RuntimeError("batched dispersal did not complete at every node")
    mean_bytes = sum(router.received_bytes) / n
    return mean_bytes / (block_size * num_blocks)


class _SingleInstanceProcess:
    """Adapter exposing one AVID-M instance through the Process interface."""

    def __init__(self, instance: AvidMInstance):
        self._instance = instance

    def start(self) -> None:
        return

    def on_message(self, src, msg) -> None:
        self._instance.handle(src, msg)


class _MultiInstanceProcess:
    """Adapter routing messages to one AVID-M instance per VID instance id."""

    def __init__(self, instances: dict[VIDInstanceId, AvidMInstance]):
        self._instances = instances

    def start(self) -> None:
        return

    def on_message(self, src, msg) -> None:
        self._instances[msg.instance].handle(src, msg)


def crossover_n(block_size: int, max_n: int = 200) -> int | None:
    """Smallest N at which AVID-FP's cost exceeds downloading the full block.

    The paper reports this threshold around N = 120 for 1 MB blocks; AVID-M
    has no such threshold in the evaluated range.
    """
    for n in range(4, max_n + 1):
        params = ProtocolParams.for_n(n)
        if avid_fp_per_node_cost(params, block_size) >= block_size:
            return n
    return None
