"""``python -m repro.experiments`` — the scenario-engine CLI."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
