"""Byte-accurate per-epoch cost model used for the large-N scalability sweep.

Message-level simulation of a 128-node cluster is out of reach for a pure
Python event loop (every epoch is tens of millions of message events), so —
as documented in DESIGN.md — Fig. 12 and Fig. 13 are regenerated with an
analytical model that uses exactly the same per-message byte formulas as the
implementation (header sizes, hash sizes, Merkle proof depths, erasure-code
expansion).  The model is validated against message-level runs at small N in
:mod:`repro.experiments.scalability` and in the test suite.

The model computes, per epoch and per node:

* dispersal-phase download (chunks of all N proposals, the GotChunk/Ready
  vote rounds, the binary-agreement votes);
* retrieval-phase download (reconstructing every committed block from
  ``N - 2f`` chunks);

and converts them into steady-state throughput by charging both against the
node's download bandwidth and respecting the protocol's latency floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.params import ProtocolParams
from repro.crypto.hashing import DIGEST_SIZE
from repro.sim.messages import HEADER_SIZE

#: Bytes of a BA vote body (round number + value), matching repro.ba.messages.
BA_VOTE_BODY = 8
#: Expected number of (BVAL + AUX) vote rounds before the common coin decides.
BA_EXPECTED_ROUNDS = 2.0
#: One DECIDED message per node terminates each BA instance.
BA_DECIDED_ROUNDS = 1.0
#: Communication steps on an epoch's critical path (chunk, GotChunk, Ready,
#: BVAL, AUX, DECIDED), each costing one one-way propagation delay.
CRITICAL_PATH_STEPS = 6
#: Effective per-message processing overhead in byte-equivalents (transport
#: framing, ACKs, kernel and CPU time).  The paper attributes the slight
#: throughput decline at large N (Fig. 12) to the O(N^2) per-epoch message
#: count of the agreement phase; this term is what lets a byte-level model
#: show that effect.  It is *not* wire traffic, so it is excluded from the
#: dispersal-fraction accounting of Fig. 13.
PER_MESSAGE_OVERHEAD = 300.0


def merkle_proof_bytes(n: int) -> int:
    """Wire size of one Merkle inclusion proof for an ``n``-leaf tree."""
    depth = max(1, math.ceil(math.log2(n))) if n > 1 else 0
    return 4 + DIGEST_SIZE * depth


@dataclass(frozen=True)
class EpochCost:
    """Per-node, per-epoch byte accounting for one protocol configuration."""

    params: ProtocolParams
    block_size: int
    #: Bytes downloaded during the dispersal phase (chunks + votes + BA).
    dispersal_bytes: float
    #: Bytes downloaded during the retrieval phase (committed block chunks).
    retrieval_bytes: float
    #: Client payload bytes committed per epoch (what throughput counts).
    committed_payload: float

    @property
    def total_bytes(self) -> float:
        return self.dispersal_bytes + self.retrieval_bytes

    @property
    def dispersal_fraction(self) -> float:
        """Fraction of download traffic that belongs to dispersal (Fig. 13)."""
        return self.dispersal_bytes / self.total_bytes


def chunk_wire_bytes(params: ProtocolParams, block_size: int) -> float:
    """Wire size of one chunk message (header, root, chunk slice, Merkle proof)."""
    slice_bytes = block_size / params.data_shards
    return HEADER_SIZE + DIGEST_SIZE + slice_bytes + merkle_proof_bytes(params.n)


def dispersal_download_bytes(params: ProtocolParams, block_size: int) -> float:
    """Bytes a node downloads per epoch to participate in dispersal + agreement."""
    n = params.n
    chunks = n * chunk_wire_bytes(params, block_size)
    vote_msg = HEADER_SIZE + DIGEST_SIZE
    votes = 2 * n * n * vote_msg  # GotChunk + Ready, from every node for every instance
    ba_msg = HEADER_SIZE + BA_VOTE_BODY
    ba_msgs_per_instance = (2 * BA_EXPECTED_ROUNDS + BA_DECIDED_ROUNDS) * n
    ba = n * ba_msgs_per_instance * ba_msg
    return chunks + votes + ba


def retrieval_download_bytes(
    params: ProtocolParams, block_size: int, blocks_retrieved: float
) -> float:
    """Bytes a node downloads to reconstruct ``blocks_retrieved`` blocks."""
    per_block = params.data_shards * chunk_wire_bytes(params, block_size) + params.data_shards * HEADER_SIZE
    return blocks_retrieved * per_block


def dispersal_messages_per_epoch(params: ProtocolParams) -> float:
    """Messages a node receives per epoch during dispersal + agreement.

    One chunk per VID instance, GotChunk and Ready from every node for every
    instance, and the binary-agreement votes: this is the O(N^2) message count
    the paper points to when explaining the Fig. 12 trend.
    """
    n = params.n
    return n + 2 * n * n + (2 * BA_EXPECTED_ROUNDS + BA_DECIDED_ROUNDS) * n * n


def epoch_cost(
    params: ProtocolParams,
    block_size: int,
    committed_blocks: float | None = None,
    payload_fraction: float = 1.0,
) -> EpochCost:
    """Per-node, per-epoch cost for a protocol committing ``committed_blocks`` blocks.

    ``committed_blocks`` defaults to N (DispersedLedger with inter-node
    linking: every correct block is eventually committed); plain HoneyBadger
    commits ``N - f``.  ``payload_fraction`` is the fraction of each block
    that is client payload (the rest being per-block protocol overhead).
    """
    if committed_blocks is None:
        committed_blocks = float(params.n)
    dispersal = dispersal_download_bytes(params, block_size)
    retrieval = retrieval_download_bytes(params, block_size, committed_blocks)
    return EpochCost(
        params=params,
        block_size=block_size,
        dispersal_bytes=dispersal,
        retrieval_bytes=retrieval,
        committed_payload=committed_blocks * block_size * payload_fraction,
    )


@dataclass(frozen=True)
class ThroughputEstimate:
    """Steady-state throughput prediction for one (protocol, N, block size) point."""

    n: int
    block_size: int
    protocol: str
    throughput: float
    epoch_duration: float
    dispersal_fraction: float


def estimate_throughput(
    params: ProtocolParams,
    block_size: int,
    bandwidth: float,
    one_way_delay: float = 0.1,
    protocol: str = "dl",
) -> ThroughputEstimate:
    """Steady-state per-node confirmed payload bytes per second.

    DispersedLedger pipelines retrieval behind dispersal, so its epoch cadence
    is set by the dispersal bytes (plus the latency floor) while its steady
    throughput is capped by the *total* bytes a node must eventually download.
    HoneyBadger is lockstep: an epoch cannot end before dispersal and
    retrieval have both completed, and without linking only ``N - f`` of the
    ``N`` broadcast blocks carry useful payload.
    """
    if protocol in ("dl", "dl-coupled", "hb-link"):
        committed = float(params.n)
    elif protocol == "hb":
        committed = float(params.quorum)
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    cost = epoch_cost(params, block_size, committed_blocks=committed)
    latency_floor = CRITICAL_PATH_STEPS * one_way_delay
    # Non-wire per-message processing cost: it consumes effective capacity
    # (Fig. 12's O(N^2) messaging overhead) but is not dispersal traffic, so
    # Fig. 13's fraction is computed from wire bytes only.
    processing = PER_MESSAGE_OVERHEAD * dispersal_messages_per_epoch(params)

    if protocol in ("dl", "dl-coupled"):
        # Epoch cadence: dispersal only.  Bandwidth ceiling: total bytes.
        epoch_duration = max((cost.dispersal_bytes + processing) / bandwidth, latency_floor)
        bandwidth_limited = bandwidth * cost.committed_payload / (cost.total_bytes + processing)
        cadence_limited = cost.committed_payload / epoch_duration
        throughput = min(bandwidth_limited, cadence_limited)
    else:
        # Lockstep: the epoch ends only after retrieval finishes everywhere.
        # HoneyBadger still broadcasts (and downloads) all N blocks even when
        # only N - f of them end up committed.
        full_cost = epoch_cost(params, block_size, committed_blocks=float(params.n))
        epoch_duration = max((full_cost.total_bytes + processing) / bandwidth, latency_floor)
        throughput = cost.committed_payload / epoch_duration

    return ThroughputEstimate(
        n=params.n,
        block_size=block_size,
        protocol=protocol,
        throughput=throughput,
        epoch_duration=epoch_duration,
        dispersal_fraction=cost.dispersal_fraction,
    )
