"""Erasure-coding substrate: GF(256) arithmetic and Reed-Solomon codes.

DispersedLedger's AVID-M disperses every block with an ``(N - 2f, N)``
maximum-distance-separable erasure code (Fig. 3 of the paper).  The paper's
prototype uses a Go Reed-Solomon library; this package provides an
equivalent systematic Reed-Solomon code built from scratch on GF(256)
arithmetic, accelerated with numpy table lookups.
"""

from repro.erasure.gf256 import GF256
from repro.erasure.rs_code import DECODE_CACHE_SIZE, ReedSolomonCode

__all__ = ["DECODE_CACHE_SIZE", "GF256", "ReedSolomonCode"]
