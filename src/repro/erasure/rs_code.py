"""Systematic Reed-Solomon erasure code over GF(256).

The code is the ``(k, n)`` MDS code used by AVID-M with ``k = N - 2f`` and
``n = N``: a block is split into ``k`` data shards, ``n`` coded shards are
produced (the first ``k`` equal the data shards), and any ``k`` of the ``n``
shards reconstruct the block.

Construction: take an ``n x k`` Vandermonde matrix ``V`` over GF(256) and
multiply it by the inverse of its top ``k x k`` sub-matrix.  The result has
an identity top block (hence *systematic*) and keeps the MDS property
because every ``k``-row sub-matrix of ``V`` is invertible.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure.gf256 import GF256

_LENGTH_HEADER = struct.Struct(">I")


class ReedSolomonCode:
    """A ``(k, n)`` systematic Reed-Solomon code over GF(256).

    Args:
        data_shards: ``k``, the number of shards sufficient for reconstruction.
        total_shards: ``n``, the total number of shards produced by encoding.
    """

    def __init__(self, data_shards: int, total_shards: int):
        if data_shards < 1:
            raise ConfigurationError(f"data_shards must be >= 1, got {data_shards}")
        if total_shards < data_shards:
            raise ConfigurationError(
                f"total_shards ({total_shards}) must be >= data_shards ({data_shards})"
            )
        if total_shards > 255:
            raise ConfigurationError(
                f"GF(256) Reed-Solomon supports at most 255 shards, got {total_shards}"
            )
        self.data_shards = data_shards
        self.total_shards = total_shards
        vandermonde = GF256.vandermonde(total_shards, data_shards)
        top_inverse = GF256.mat_inv(vandermonde[:data_shards, :])
        self._matrix = GF256.mat_mul(vandermonde, top_inverse)

    # --- shard-level API -------------------------------------------------

    def shard_size(self, block_size: int) -> int:
        """Size of every shard for a block of ``block_size`` bytes.

        A 4-byte length header is prepended before padding so that decoding
        recovers the exact original block.
        """
        payload = block_size + _LENGTH_HEADER.size
        return max(1, -(-payload // self.data_shards))

    def encode(self, block: bytes) -> list[bytes]:
        """Encode ``block`` into ``n`` equally sized shards."""
        shard_size = self.shard_size(len(block))
        padded = _LENGTH_HEADER.pack(len(block)) + block
        padded = padded.ljust(self.data_shards * shard_size, b"\x00")
        data = np.frombuffer(padded, dtype=np.uint8).reshape(
            self.data_shards, shard_size
        )
        coded = GF256.mat_vec_rows(self._matrix, data)
        return [coded[i].tobytes() for i in range(self.total_shards)]

    def decode(self, shards: dict[int, bytes]) -> bytes:
        """Reconstruct the original block from any ``k`` shards.

        Args:
            shards: mapping from shard index to shard bytes; at least ``k``
                entries with identical lengths are required.

        Raises:
            DecodingError: if fewer than ``k`` shards are supplied, the shard
                lengths disagree, the indices are out of range, or the decoded
                length header is inconsistent with the shard capacity.
        """
        if len(shards) < self.data_shards:
            raise DecodingError(
                f"need at least {self.data_shards} shards, got {len(shards)}"
            )
        indices = sorted(shards)[: self.data_shards]
        if indices[0] < 0 or indices[-1] >= self.total_shards:
            raise DecodingError(f"shard index out of range: {indices}")
        shard_size = len(shards[indices[0]])
        if shard_size == 0:
            raise DecodingError("shards must be non-empty")
        if any(len(shards[i]) != shard_size for i in indices):
            raise DecodingError("all shards must have the same length")

        sub_matrix = self._matrix[indices, :]
        inverse = GF256.mat_inv(sub_matrix)
        stacked = np.stack(
            [np.frombuffer(shards[i], dtype=np.uint8) for i in indices]
        )
        data = GF256.mat_vec_rows(inverse, stacked)
        payload = data.tobytes()
        (length,) = _LENGTH_HEADER.unpack_from(payload)
        capacity = self.data_shards * shard_size - _LENGTH_HEADER.size
        if length > capacity:
            raise DecodingError(
                f"decoded length header {length} exceeds shard capacity {capacity}"
            )
        return payload[_LENGTH_HEADER.size : _LENGTH_HEADER.size + length]

    def reencode(self, block: bytes) -> list[bytes]:
        """Alias of :meth:`encode`, named for the AVID-M retrieval check."""
        return self.encode(block)
