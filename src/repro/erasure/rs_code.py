"""Systematic Reed-Solomon erasure code over GF(256).

The code is the ``(k, n)`` MDS code used by AVID-M with ``k = N - 2f`` and
``n = N``: a block is split into ``k`` data shards, ``n`` coded shards are
produced (the first ``k`` equal the data shards), and any ``k`` of the ``n``
shards reconstruct the block.

Construction: take an ``n x k`` Vandermonde matrix ``V`` over GF(256) and
multiply it by the inverse of its top ``k x k`` sub-matrix.  The result has
an identity top block (hence *systematic*) and keeps the MDS property
because every ``k``-row sub-matrix of ``V`` is invertible.

Performance structure (see docs/performance.md):

* code matrices are built once per ``(k, n)`` pair and shared between all
  instances (every node of a simulated cluster builds the same code);
* encoding only runs the GF(256) kernel over the ``n - k`` parity rows —
  the systematic shards are sliced straight out of the padded block;
* ``encode_many`` stacks several blocks side by side and runs one kernel
  call for all of them (the kernel is column-wise independent, so blocks of
  different sizes can share a single matrix multiply);
* decode matrices (inverted ``k x k`` sub-matrices) are memoised per sorted
  shard-index tuple in a small LRU cache — the experiments decode at the
  same index subsets over and over;
* when the ``k`` systematic shards are all present, decoding skips matrix
  work entirely and just reassembles the payload.
"""

from __future__ import annotations

import struct
from functools import lru_cache

import numpy as np

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure.gf256 import GF256

_LENGTH_HEADER = struct.Struct(">I")

#: Maximum number of inverted decode matrices kept (shared by all code
#: instances — every node of a simulated cluster decodes the same subsets).
DECODE_CACHE_SIZE = 128

#: Target shard width (bytes per row) of one batched parity-kernel call.
#: Batches are split so each call's working set (k source rows + the
#: accumulator) stays inside L2; beyond that the joined rows stream from L3
#: and the batch runs slower per byte than block-at-a-time encoding.
BATCH_KERNEL_WIDTH = 64 * 1024


@lru_cache(maxsize=None)
def _systematic_matrix(data_shards: int, total_shards: int) -> np.ndarray:
    """The shared ``n x k`` systematic code matrix for a ``(k, n)`` code."""
    vandermonde = GF256.vandermonde(total_shards, data_shards)
    top_inverse = GF256.mat_inv(vandermonde[:data_shards, :])
    matrix = GF256.mat_mul(vandermonde, top_inverse)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=DECODE_CACHE_SIZE)
def _decode_inverse(
    data_shards: int, total_shards: int, indices: tuple[int, ...]
) -> np.ndarray:
    """The inverted decode matrix for one shard-index subset, shared between
    all code instances (every node of a simulated cluster decodes the same
    subsets, so the Gauss-Jordan work is done once per subset per code)."""
    matrix = _systematic_matrix(data_shards, total_shards)
    inverse = GF256.mat_inv(matrix[list(indices), :])
    inverse.setflags(write=False)
    return inverse


class ReedSolomonCode:
    """A ``(k, n)`` systematic Reed-Solomon code over GF(256).

    Args:
        data_shards: ``k``, the number of shards sufficient for reconstruction.
        total_shards: ``n``, the total number of shards produced by encoding.
    """

    def __init__(self, data_shards: int, total_shards: int):
        if data_shards < 1:
            raise ConfigurationError(f"data_shards must be >= 1, got {data_shards}")
        if total_shards < data_shards:
            raise ConfigurationError(
                f"total_shards ({total_shards}) must be >= data_shards ({data_shards})"
            )
        if total_shards > 255:
            raise ConfigurationError(
                f"GF(256) Reed-Solomon supports at most 255 shards, got {total_shards}"
            )
        self.data_shards = data_shards
        self.total_shards = total_shards
        self._matrix = _systematic_matrix(data_shards, total_shards)
        self._parity_matrix = np.ascontiguousarray(self._matrix[data_shards:, :])
        self._cache_hits = 0
        self._cache_misses = 0

    # --- shard-level API -------------------------------------------------

    def shard_size(self, block_size: int) -> int:
        """Size of every shard for a block of ``block_size`` bytes.

        A 4-byte length header is prepended before padding so that decoding
        recovers the exact original block.
        """
        payload = block_size + _LENGTH_HEADER.size
        return max(1, -(-payload // self.data_shards))

    def _data_slices(self, block: bytes) -> list[bytes]:
        """The ``k`` systematic shards: slices of the length-prefixed, padded block."""
        shard_size = self.shard_size(len(block))
        padded = _LENGTH_HEADER.pack(len(block)) + block
        padded = padded.ljust(self.data_shards * shard_size, b"\x00")
        return [
            padded[i * shard_size : (i + 1) * shard_size]
            for i in range(self.data_shards)
        ]

    def encode(self, block: bytes) -> list[bytes]:
        """Encode ``block`` into ``n`` equally sized shards.

        The first ``k`` shards are slices of the (padded) block itself; only
        the ``n - k`` parity shards go through the GF(256) kernel.
        """
        shards = self._data_slices(block)
        if self.total_shards > self.data_shards:
            shards.extend(GF256.mat_vec_bytes(self._parity_matrix, shards))
        return shards

    def encode_many(self, blocks: list[bytes]) -> list[list[bytes]]:
        """Encode several blocks with a single parity-kernel invocation.

        The GF(256) kernel operates column-wise, so blocks of different
        sizes can be laid side by side in one ``(k, sum of widths)`` matrix
        and encoded with one pass; the outputs are then split back per
        block.  Results are byte-identical to calling :meth:`encode` on each
        block individually.
        """
        if not blocks:
            return []
        shard_sizes = [self.shard_size(len(block)) for block in blocks]
        results = [self._data_slices(block) for block in blocks]
        if self.total_shards == self.data_shards:
            return results
        start = 0
        while start < len(results):
            stop = start + 1
            width = shard_sizes[start]
            while stop < len(results) and width + shard_sizes[stop] <= BATCH_KERNEL_WIDTH:
                width += shard_sizes[stop]
                stop += 1
            self._append_parity(results[start:stop], shard_sizes[start:stop])
            start = stop
        return results

    def _append_parity(self, results: list[list[bytes]], shard_sizes: list[int]) -> None:
        """Append the parity shards for one cache-sized group of blocks."""
        if len(results) == 1:
            results[0].extend(GF256.mat_vec_bytes(self._parity_matrix, results[0]))
            return
        stacked = [
            b"".join(result[row] for result in results)
            for row in range(self.data_shards)
        ]
        parity = GF256.mat_vec_bytes(self._parity_matrix, stacked)
        for row_bytes in parity:
            offset = 0
            for result, size in zip(results, shard_sizes):
                result.append(row_bytes[offset : offset + size])
                offset += size

    # --- decoding --------------------------------------------------------

    def _select_indices(self, shards: dict[int, bytes]) -> list[int]:
        """Pick the ``k`` shard indices to decode from.

        Sorted-ascending selection *is* the systematic preference: every
        systematic index (``0..k-1``) is numerically smaller than every
        parity index, so the ``k`` smallest available indices always include
        all available systematic shards, and the no-inversion fast path
        triggers whenever all ``k`` of them are present.
        """
        return sorted(shards)[: self.data_shards]

    def _decode_matrix(self, indices: tuple[int, ...]) -> np.ndarray:
        """The inverted decode matrix for ``indices``, via the shared LRU.

        The inverses live in the module-level ``_decode_inverse`` LRU so
        sibling instances of the same code never redo each other's
        Gauss-Jordan; this instance's hit/miss counters record whether *its*
        calls actually triggered an inversion.
        """
        before = _decode_inverse.cache_info().misses
        inverse = _decode_inverse(self.data_shards, self.total_shards, indices)
        if _decode_inverse.cache_info().misses > before:
            self._cache_misses += 1
        else:
            self._cache_hits += 1
        return inverse

    def decode_cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the decode-matrix cache (for tests/benchmarks).

        Hits/misses are the inversions this instance triggered (or avoided);
        ``size`` is the shared store's current entry count, bounded by
        ``DECODE_CACHE_SIZE``.
        """
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": _decode_inverse.cache_info().currsize,
        }

    def decode(self, shards: dict[int, bytes]) -> bytes:
        """Reconstruct the original block from any ``k`` shards.

        Args:
            shards: mapping from shard index to shard bytes; at least ``k``
                entries with identical lengths are required.

        Raises:
            DecodingError: if fewer than ``k`` shards are supplied, the shard
                lengths disagree, the indices are out of range, or the decoded
                length header is inconsistent with the shard capacity.
        """
        if len(shards) < self.data_shards:
            raise DecodingError(
                f"need at least {self.data_shards} shards, got {len(shards)}"
            )
        indices = self._select_indices(shards)
        if indices[0] < 0 or indices[-1] >= self.total_shards:
            raise DecodingError(f"shard index out of range: {indices}")
        shard_size = len(shards[indices[0]])
        if shard_size == 0:
            raise DecodingError("shards must be non-empty")
        if any(len(shards[i]) != shard_size for i in indices):
            raise DecodingError("all shards must have the same length")

        if indices == list(range(self.data_shards)):
            # Systematic fast path: the selected shards *are* the padded
            # block — reassemble without touching the kernel.
            payload = b"".join(shards[i] for i in indices)
        else:
            inverse = self._decode_matrix(tuple(indices))
            rows = GF256.mat_vec_bytes(inverse, [shards[i] for i in indices])
            payload = b"".join(rows)
        (length,) = _LENGTH_HEADER.unpack_from(payload)
        capacity = self.data_shards * shard_size - _LENGTH_HEADER.size
        if length > capacity:
            raise DecodingError(
                f"decoded length header {length} exceeds shard capacity {capacity}"
            )
        return payload[_LENGTH_HEADER.size : _LENGTH_HEADER.size + length]

    def reencode(self, block: bytes) -> list[bytes]:
        """Alias of :meth:`encode`, named for the AVID-M retrieval check."""
        return self.encode(block)
