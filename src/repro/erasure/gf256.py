"""Arithmetic over the finite field GF(2^8).

The field is realised as GF(2)[x] modulo the AES polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B).  Scalar multiplication and division go
through exponential/logarithm tables keyed by the generator ``3``.

The bulk operations used by the Reed-Solomon hot path are table-driven and
fully vectorised:

* ``_MUL_TABLE`` is the complete 256 x 256 product table, built once at
  import time.  Multiplying a whole shard by a fixed coefficient is then a
  single table map — no logarithm lookups, no zero masking.
* The per-coefficient map runs through ``bytes.translate`` with the
  coefficient's 256-byte row of the product table: a tight C loop at close
  to one byte per nanosecond whose tables for an entire code matrix total a
  few kilobytes, so they stay L1-resident even when the protocol hashes and
  copies megabytes between encode calls.  (A 65536-entry byte-pair gather
  via ``np.take`` benchmarks the same speed in isolation, but its tables for
  one code matrix are several megabytes and fall out of cache under real
  workloads — measured 1.8x slower end-to-end; the full ``(m, k, width)``
  product-cube gather is 5-6x slower still.)

``mat_vec_bytes`` / ``mat_vec_rows`` — the Reed-Solomon encode/decode
kernels — therefore spend no Python time proportional to the data size: the
only remaining Python loop iterates over the ``m x k`` coefficient grid of
the (small) code matrix, while every O(bytes) operation is a translate map
or a numpy XOR.
"""

from __future__ import annotations

import numpy as np

_PRIMITIVE_POLY = 0x11B
_GENERATOR = 0x03
_FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(2 * _FIELD_SIZE, dtype=np.int32)
    log = np.zeros(_FIELD_SIZE, dtype=np.int32)
    value = 1
    for power in range(_FIELD_SIZE - 1):
        exp[power] = value
        log[value] = power
        # multiply value by the generator (0x03 == x + 1), i.e. value*2 ^ value
        doubled = value << 1
        if doubled & 0x100:
            doubled ^= _PRIMITIVE_POLY
        value = doubled ^ value
    # duplicate the table so that exp[a + b] never needs a modulo reduction
    for power in range(_FIELD_SIZE - 1, 2 * _FIELD_SIZE):
        exp[power] = exp[power - (_FIELD_SIZE - 1)]
    return exp, log


_EXP_TABLE, _LOG_TABLE = _build_tables()


def _build_mul_table() -> np.ndarray:
    a = np.arange(_FIELD_SIZE).reshape(-1, 1)
    b = np.arange(_FIELD_SIZE).reshape(1, -1)
    table = _EXP_TABLE[_LOG_TABLE[a] + _LOG_TABLE[b]].astype(np.uint8)
    table[0, :] = 0
    table[:, 0] = 0
    table.setflags(write=False)
    return table


#: Full product table: ``_MUL_TABLE[a, b] == a * b`` in GF(256).
_MUL_TABLE = _build_mul_table()

#: Lazily built 256-byte ``bytes.translate`` tables, one per coefficient:
#: ``_TRANSLATE_TABLES[c][x] == c * x`` in GF(256).
_TRANSLATE_TABLES: dict[int, bytes] = {}


def _translate_table(coeff: int) -> bytes:
    table = _TRANSLATE_TABLES.get(coeff)
    if table is None:
        table = _MUL_TABLE[coeff].tobytes()
        _TRANSLATE_TABLES[coeff] = table
    return table


class GF256:
    """Stateless helpers for GF(2^8) arithmetic on scalars, vectors and matrices."""

    exp_table = _EXP_TABLE
    log_table = _LOG_TABLE
    mul_table = _MUL_TABLE

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        """Field subtraction (identical to addition in characteristic 2)."""
        return a ^ b

    @staticmethod
    def mul(a: int, b: int) -> int:
        """Field multiplication via the product table."""
        return int(_MUL_TABLE[a, b])

    @staticmethod
    def inv(a: int) -> int:
        """Multiplicative inverse of a non-zero field element."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(_EXP_TABLE[(_FIELD_SIZE - 1) - _LOG_TABLE[a]])

    @staticmethod
    def div(a: int, b: int) -> int:
        """Field division ``a / b``."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(_EXP_TABLE[_LOG_TABLE[a] - _LOG_TABLE[b] + (_FIELD_SIZE - 1)])

    @staticmethod
    def pow(a: int, exponent: int) -> int:
        """Raise a field element to a non-negative integer power."""
        if exponent == 0:
            return 1
        if a == 0:
            return 0
        log_a = int(_LOG_TABLE[a])
        return int(_EXP_TABLE[(log_a * exponent) % (_FIELD_SIZE - 1)])

    # --- matrix helpers -------------------------------------------------

    @staticmethod
    def mat_vec_bytes(matrix: np.ndarray, rows: list[bytes]) -> list[bytes]:
        """Multiply ``matrix`` (m x k, uint8) by ``k`` equal-length byte rows.

        Every element product is carried out in GF(256); sums are XORs.  This
        is the hot kernel of Reed-Solomon encoding and decoding, operating
        directly on shard byte strings (no staging copies): each product is
        one ``bytes.translate`` pass, each sum one numpy XOR, and the Python
        loop only walks the m x k coefficient grid.
        """
        m, k = matrix.shape
        if len(rows) != k:
            raise ValueError(f"matrix has {k} columns but got {len(rows)} rows")
        if m == 0 or k == 0:
            return [b""] * m
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise ValueError("all rows must have the same length")
        if width == 0:
            return [b""] * m

        views = [np.frombuffer(row, dtype=np.uint8) for row in rows]
        coeffs = matrix.tolist()
        out: list[bytes] = []
        acc = np.empty(width, dtype=np.uint8)
        for row_coeffs in coeffs:
            started = False
            for col in range(k):
                coeff = row_coeffs[col]
                if coeff == 0:
                    continue
                if coeff == 1:
                    src = views[col]
                else:
                    src = np.frombuffer(
                        rows[col].translate(_translate_table(coeff)), dtype=np.uint8
                    )
                if not started:
                    started = True
                    np.copyto(acc, src)
                else:
                    np.bitwise_xor(acc, src, out=acc)
            out.append(acc.tobytes() if started else bytes(width))
        return out

    @staticmethod
    def mat_vec_rows(matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Multiply ``matrix`` (m x k, uint8) by ``data`` (k x width, uint8).

        Array-shaped wrapper around :meth:`mat_vec_bytes` (the byte-string
        kernel), kept for matrix algebra and tests.
        """
        m, k = matrix.shape
        if data.shape[0] != k:
            raise ValueError(f"matrix has {k} columns but data has {data.shape[0]} rows")
        width = data.shape[1]
        if m == 0 or width == 0 or k == 0:
            return np.zeros((m, width), dtype=np.uint8)
        if data.dtype != np.uint8:
            data = data.astype(np.uint8)
        rows = [data[col].tobytes() for col in range(k)]
        out = np.empty((m, width), dtype=np.uint8)
        for row, row_bytes in enumerate(GF256.mat_vec_bytes(matrix, rows)):
            out[row] = np.frombuffer(row_bytes, dtype=np.uint8)
        return out

    @staticmethod
    def mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply two matrices over GF(256) (used to build code matrices)."""
        if a.shape[1] != b.shape[0]:
            raise ValueError("incompatible matrix shapes")
        return GF256.mat_vec_rows(
            np.ascontiguousarray(a, dtype=np.uint8),
            np.ascontiguousarray(b, dtype=np.uint8),
        )

    @staticmethod
    def mat_inv(matrix: np.ndarray) -> np.ndarray:
        """Invert a square matrix over GF(256) by Gauss-Jordan elimination.

        Row scaling and elimination are whole-row table gathers, so the
        Python loop is only over pivot columns.
        """
        size = matrix.shape[0]
        if matrix.shape[1] != size:
            raise ValueError("only square matrices can be inverted")
        work = np.ascontiguousarray(matrix, dtype=np.uint8).copy()
        inverse = np.eye(size, dtype=np.uint8)
        for col in range(size):
            pivot_candidates = np.nonzero(work[col:, col])[0]
            if pivot_candidates.size == 0:
                raise ValueError("matrix is singular over GF(256)")
            pivot_row = col + int(pivot_candidates[0])
            if pivot_row != col:
                work[[col, pivot_row]] = work[[pivot_row, col]]
                inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
            pivot_inv = GF256.inv(int(work[col, col]))
            work[col] = _MUL_TABLE[pivot_inv][work[col]]
            inverse[col] = _MUL_TABLE[pivot_inv][inverse[col]]
            factors = work[:, col].copy()
            factors[col] = 0
            rows = np.nonzero(factors)[0]
            if rows.size:
                work[rows] ^= _MUL_TABLE[factors[rows][:, None], work[col][None, :]]
                inverse[rows] ^= _MUL_TABLE[factors[rows][:, None], inverse[col][None, :]]
        return inverse

    @staticmethod
    def vandermonde(rows: int, cols: int) -> np.ndarray:
        """Build a ``rows x cols`` Vandermonde matrix with evaluation points 0..rows-1.

        Row ``i`` is ``[i^0, i^1, ..., i^(cols-1)]`` in GF(256).  Any ``cols``
        distinct rows are linearly independent, which is what makes the
        derived Reed-Solomon code MDS.
        """
        if rows > 256:
            raise ValueError("GF(256) Vandermonde supports at most 256 rows")
        points = np.arange(rows, dtype=np.int64)
        exponents = np.arange(cols, dtype=np.int64)
        logs = (_LOG_TABLE[points][:, None] * exponents[None, :]) % (_FIELD_SIZE - 1)
        out = _EXP_TABLE[logs].astype(np.uint8)
        if rows > 0:
            # Evaluation point 0: 0^0 == 1, 0^j == 0 for j > 0 (the log table
            # has no entry for 0, so the vectorised formula is wrong there).
            out[0, :] = 0
            if cols > 0:
                out[0, 0] = 1
        return out
