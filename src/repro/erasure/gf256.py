"""Arithmetic over the finite field GF(2^8).

The field is realised as GF(2)[x] modulo the AES polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B).  Multiplication and division go through
exponential/logarithm tables keyed by the generator ``3``, which lets the
Reed-Solomon encoder vectorise products of whole shards with numpy.
"""

from __future__ import annotations

import numpy as np

_PRIMITIVE_POLY = 0x11B
_GENERATOR = 0x03
_FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(2 * _FIELD_SIZE, dtype=np.int32)
    log = np.zeros(_FIELD_SIZE, dtype=np.int32)
    value = 1
    for power in range(_FIELD_SIZE - 1):
        exp[power] = value
        log[value] = power
        # multiply value by the generator (0x03 == x + 1), i.e. value*2 ^ value
        doubled = value << 1
        if doubled & 0x100:
            doubled ^= _PRIMITIVE_POLY
        value = doubled ^ value
    # duplicate the table so that exp[a + b] never needs a modulo reduction
    for power in range(_FIELD_SIZE - 1, 2 * _FIELD_SIZE):
        exp[power] = exp[power - (_FIELD_SIZE - 1)]
    return exp, log


_EXP_TABLE, _LOG_TABLE = _build_tables()


class GF256:
    """Stateless helpers for GF(2^8) arithmetic on scalars, vectors and matrices."""

    exp_table = _EXP_TABLE
    log_table = _LOG_TABLE

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        """Field subtraction (identical to addition in characteristic 2)."""
        return a ^ b

    @staticmethod
    def mul(a: int, b: int) -> int:
        """Field multiplication via log/exp tables."""
        if a == 0 or b == 0:
            return 0
        return int(_EXP_TABLE[_LOG_TABLE[a] + _LOG_TABLE[b]])

    @staticmethod
    def inv(a: int) -> int:
        """Multiplicative inverse of a non-zero field element."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(_EXP_TABLE[(_FIELD_SIZE - 1) - _LOG_TABLE[a]])

    @staticmethod
    def div(a: int, b: int) -> int:
        """Field division ``a / b``."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(_EXP_TABLE[_LOG_TABLE[a] - _LOG_TABLE[b] + (_FIELD_SIZE - 1)])

    @staticmethod
    def pow(a: int, exponent: int) -> int:
        """Raise a field element to a non-negative integer power."""
        if exponent == 0:
            return 1
        if a == 0:
            return 0
        log_a = int(_LOG_TABLE[a])
        return int(_EXP_TABLE[(log_a * exponent) % (_FIELD_SIZE - 1)])

    # --- matrix helpers -------------------------------------------------

    @staticmethod
    def mat_vec_rows(matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Multiply ``matrix`` (m x k, uint8) by ``data`` (k x width, uint8).

        Every element product is carried out in GF(256); sums are XORs.  This
        is the hot path of Reed-Solomon encoding, so it is vectorised with
        numpy: for every non-zero matrix coefficient the whole data row is
        multiplied by a table lookup and XOR-accumulated.
        """
        m, k = matrix.shape
        if data.shape[0] != k:
            raise ValueError(f"matrix has {k} columns but data has {data.shape[0]} rows")
        width = data.shape[1]
        out = np.zeros((m, width), dtype=np.uint8)
        data_logs = _LOG_TABLE[data]
        nonzero_mask = data != 0
        for row in range(m):
            acc = np.zeros(width, dtype=np.uint8)
            for col in range(k):
                coeff = int(matrix[row, col])
                if coeff == 0:
                    continue
                if coeff == 1:
                    acc ^= data[col]
                    continue
                coeff_log = int(_LOG_TABLE[coeff])
                product = _EXP_TABLE[data_logs[col] + coeff_log].astype(np.uint8)
                product = np.where(nonzero_mask[col], product, 0).astype(np.uint8)
                acc ^= product
            out[row] = acc
        return out

    @staticmethod
    def mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply two small matrices over GF(256) (used to build code matrices)."""
        rows, inner = a.shape
        inner_b, cols = b.shape
        if inner != inner_b:
            raise ValueError("incompatible matrix shapes")
        out = np.zeros((rows, cols), dtype=np.uint8)
        for i in range(rows):
            for j in range(cols):
                acc = 0
                for t in range(inner):
                    acc ^= GF256.mul(int(a[i, t]), int(b[t, j]))
                out[i, j] = acc
        return out

    @staticmethod
    def mat_inv(matrix: np.ndarray) -> np.ndarray:
        """Invert a square matrix over GF(256) by Gauss-Jordan elimination."""
        size = matrix.shape[0]
        if matrix.shape[1] != size:
            raise ValueError("only square matrices can be inverted")
        work = matrix.astype(np.int32).copy()
        inverse = np.eye(size, dtype=np.int32)
        for col in range(size):
            pivot_row = None
            for row in range(col, size):
                if work[row, col] != 0:
                    pivot_row = row
                    break
            if pivot_row is None:
                raise ValueError("matrix is singular over GF(256)")
            if pivot_row != col:
                work[[col, pivot_row]] = work[[pivot_row, col]]
                inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
            pivot_inv = GF256.inv(int(work[col, col]))
            for j in range(size):
                work[col, j] = GF256.mul(int(work[col, j]), pivot_inv)
                inverse[col, j] = GF256.mul(int(inverse[col, j]), pivot_inv)
            for row in range(size):
                if row == col or work[row, col] == 0:
                    continue
                factor = int(work[row, col])
                for j in range(size):
                    work[row, j] ^= GF256.mul(factor, int(work[col, j]))
                    inverse[row, j] ^= GF256.mul(factor, int(inverse[col, j]))
        return inverse.astype(np.uint8)

    @staticmethod
    def vandermonde(rows: int, cols: int) -> np.ndarray:
        """Build a ``rows x cols`` Vandermonde matrix with evaluation points 0..rows-1.

        Row ``i`` is ``[i^0, i^1, ..., i^(cols-1)]`` in GF(256).  Any ``cols``
        distinct rows are linearly independent, which is what makes the
        derived Reed-Solomon code MDS.
        """
        if rows > 256:
            raise ValueError("GF(256) Vandermonde supports at most 256 rows")
        out = np.zeros((rows, cols), dtype=np.uint8)
        for i in range(rows):
            for j in range(cols):
                out[i, j] = GF256.pow(i, j)
        return out
