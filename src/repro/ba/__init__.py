"""Asynchronous binary Byzantine agreement (BA).

DispersedLedger uses one BA instance per proposer slot per epoch to agree
on whether that slot's dispersal completed (S4.1-4.2).  The paper adopts the
signature-free protocol of Mostefaoui, Hamouma and Raynal (PODC 2014),
which terminates in O(1) expected rounds given a common coin; this package
implements that protocol together with a deterministic hash-based common
coin (a documented substitution for threshold-signature coins — see
DESIGN.md) and a Bracha-style termination gadget so nodes can halt.
"""

from repro.ba.coin import CommonCoin
from repro.ba.mmr import BinaryAgreement

__all__ = ["BinaryAgreement", "CommonCoin"]
