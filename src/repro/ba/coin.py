"""Common coin for binary agreement.

The MMR binary agreement protocol needs a *common coin*: in every round all
correct nodes observe the same unpredictable bit.  Production systems build
it from threshold signatures; for this reproduction the adversary in our
experiments does not attack coin unpredictability, so a deterministic hash
of the instance id, the round number and a per-deployment seed gives every
node the same bit with the same statistical behaviour (documented
substitution, see DESIGN.md).
"""

from __future__ import annotations

import hashlib

from repro.common.ids import BAInstanceId
from repro.common.snapshot import SnapshotState


class CommonCoin(SnapshotState):
    """A deterministic, instance- and round-keyed common coin.

    The first two rounds use fixed values (1, then 0) instead of random ones
    — a standard optimisation in HoneyBadger-family implementations: the
    overwhelmingly common case is a unanimous ``1`` input ("this dispersal
    completed"), which then decides in the very first round, and the
    unanimous ``0`` case decides by round two.  Later rounds fall back to the
    pseudo-random coin, which is what guarantees termination for mixed
    inputs.
    """

    #: Fixed coin values for the first rounds (1 first, then 0).
    _BIASED_ROUNDS = (1, 0)

    _SNAPSHOT_FIELDS = ("_seed",)

    def __init__(self, seed: bytes = b"dispersedledger-coin"):
        self._seed = seed

    def flip(self, instance: BAInstanceId, round_number: int) -> int:
        """Return the shared coin value (0 or 1) for ``round_number``."""
        if round_number < len(self._BIASED_ROUNDS):
            return self._BIASED_ROUNDS[round_number]
        material = (
            self._seed
            + instance.epoch.to_bytes(8, "big", signed=False)
            + instance.slot.to_bytes(4, "big", signed=False)
            + round_number.to_bytes(4, "big", signed=False)
        )
        digest = hashlib.sha256(material).digest()
        return digest[0] & 1
