"""Signature-free asynchronous binary agreement (Mostefaoui et al., PODC 2014).

One :class:`BinaryAgreement` object is the automaton for one BA instance at
one node.  The interface matches the paper's abstraction (S4.1):

* ``input(b)`` — provide the node's binary input;
* the ``on_output`` callback fires exactly once with the decided bit.

Protocol sketch (per round ``r``):

1. broadcast ``BVAL(r, est)``;
2. after ``f + 1`` ``BVAL(r, v)`` from distinct senders, echo ``BVAL(r, v)``;
   after ``2f + 1``, add ``v`` to ``bin_values[r]``;
3. when ``bin_values[r]`` first becomes non-empty, broadcast ``AUX(r, v)``
   for one of its members;
4. once ``N - f`` ``AUX(r, *)`` messages carry values inside
   ``bin_values[r]``, flip the common coin ``s``; if the carried values are a
   single ``{v}`` then ``est = v`` and decide if ``v == s``; otherwise
   ``est = s``; move to round ``r + 1``.

A Bracha-style termination gadget is layered on top so instances can stop
sending messages: deciding nodes broadcast ``DECIDED(v)``; ``f + 1`` such
messages let a node adopt the decision, and ``2f + 1`` let it halt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.ids import BAInstanceId
from repro.common.params import ProtocolParams
from repro.common.snapshot import SnapshotState
from repro.sim.context import NodeContext
from repro.sim.messages import Message
from repro.ba.coin import CommonCoin
from repro.ba.messages import AuxMsg, BValMsg, DecidedMsg


@dataclass
class _RoundState:
    """Book-keeping for one round of the protocol."""

    bval_senders: dict[int, set[int]] = field(default_factory=lambda: {0: set(), 1: set()})
    aux_values: dict[int, int] = field(default_factory=dict)
    #: ``{sender: value}`` for AUX votes whose value is inside ``bin_values``
    #: — the dict the N - f quorum rule counts.  Maintained incrementally
    #: (on AUX arrival and on ``bin_values`` promotion) so the rule never
    #: rescans ``aux_values``.
    valid_aux: dict[int, int] = field(default_factory=dict)
    bval_sent: set[int] = field(default_factory=set)
    aux_sent: bool = False
    bin_values: set[int] = field(default_factory=set)
    advanced: bool = False


class BinaryAgreement(SnapshotState):
    """One binary-agreement instance at one node."""

    _SNAPSHOT_FIELDS = (
        "params",
        "instance",
        "ctx",
        "coin",
        "on_output",
        "round_number",
        "estimate",
        "decided",
        "halted",
        "_started",
        "_sent_decided",
        "_rounds",
        "_decided_senders",
        "rounds_taken",
        "probe",
    )

    def __init__(
        self,
        params: ProtocolParams,
        instance: BAInstanceId,
        ctx: NodeContext,
        coin: CommonCoin | None = None,
        on_output: Callable[[BAInstanceId, int], None] | None = None,
    ):
        self.params = params
        self.instance = instance
        self.ctx = ctx
        self.coin = coin or CommonCoin()
        self.on_output = on_output

        self.round_number = 0
        self.estimate: int | None = None
        self.decided: int | None = None
        self.halted = False
        self._started = False
        self._sent_decided = False
        self._rounds: dict[int, _RoundState] = {}
        self._decided_senders: dict[int, set[int]] = {0: set(), 1: set()}
        self.rounds_taken = 0
        #: Optional :class:`repro.trace.spans.SpanRecorder`, installed by the
        #: owning node as the instance is created; observes round boundaries.
        self.probe = None

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def has_input(self) -> bool:
        return self._started

    def input(self, value: int) -> None:
        """Provide this node's binary input (idempotent after the first call)."""
        if value not in (0, 1):
            raise ValueError(f"binary agreement input must be 0 or 1, got {value}")
        if self._started or self.halted:
            return
        self._started = True
        self.estimate = value
        if self.probe is not None:
            self.probe.on_ba_round(
                self.ctx.node_id, self.instance.epoch, self.instance.slot,
                self.round_number, self.ctx.now,
            )
        self._broadcast_bval(self.round_number, value)
        self._evaluate_round(self.round_number)

    def handle(self, src: int, msg: Message) -> None:
        """Dispatch one incoming message for this instance."""
        if self.halted:
            return
        kind = type(msg)
        if kind is BValMsg:
            self._on_bval(src, msg)
        elif kind is AuxMsg:
            self._on_aux(src, msg)
        elif kind is DecidedMsg:
            self._on_decided(src, msg)

    # ------------------------------------------------------------------
    # Round machinery
    # ------------------------------------------------------------------

    def _round(self, round_number: int) -> _RoundState:
        # Not ``setdefault(rn, _RoundState())``: that would build (and
        # usually discard) a fresh state object on every message.
        state = self._rounds.get(round_number)
        if state is None:
            state = self._rounds[round_number] = _RoundState()
        return state

    def _broadcast_bval(self, round_number: int, value: int) -> None:
        state = self._round(round_number)
        if value in state.bval_sent:
            return
        state.bval_sent.add(value)
        self.ctx.broadcast(
            BValMsg(instance=self.instance, round_number=round_number, value=value)
        )

    def _on_bval(self, src: int, msg: BValMsg) -> None:
        if msg.value not in (0, 1) or msg.round_number < self.round_number:
            return
        state = self._round(msg.round_number)
        senders = state.bval_senders[msg.value]
        if src in senders:
            return  # duplicate vote: no state change, nothing can fire
        senders.add(src)
        if not self._started:
            return
        # The echo and promote rules fire exactly when the supporter count
        # first reaches f + 1 resp. 2f + 1, and no other round state changed
        # here — between crossings the (idempotent) rule sweep is a no-op, so
        # skip it.  A crossing that happens while the round is not current is
        # picked up by the full sweep ``_advance_to`` runs on round entry.
        count = len(senders)
        if count != self.params.small_quorum and count != self.params.ready_threshold:
            return
        self._evaluate_round(msg.round_number)

    def _on_aux(self, src: int, msg: AuxMsg) -> None:
        if msg.value not in (0, 1) or msg.round_number < self.round_number:
            return
        state = self._round(msg.round_number)
        if src in state.aux_values:
            return  # one AUX per sender per round counts
        state.aux_values[src] = msg.value
        if msg.value not in state.bin_values:
            # Not (yet) a valid vote; it joins valid_aux if the value is
            # promoted later.  Nothing the quorum rule counts changed.
            return
        state.valid_aux[src] = msg.value
        if not self._started:
            return
        if len(state.valid_aux) < self.params.quorum:
            return
        self._evaluate_round(msg.round_number)

    def _evaluate_round(self, round_number: int) -> None:
        """Apply every enabled rule for ``round_number`` if it is the current round."""
        if round_number != self.round_number or self.halted:
            return
        state = self._round(round_number)

        # Rule: echo BVAL values supported by f + 1 nodes; promote at 2f + 1.
        for value in (0, 1):
            senders = state.bval_senders[value]
            if len(senders) >= self.params.small_quorum and value not in state.bval_sent:
                self._broadcast_bval(round_number, value)
            if len(senders) >= self.params.ready_threshold and value not in state.bin_values:
                state.bin_values.add(value)
                # AUX votes for this value, parked while it was outside
                # bin_values, become valid now.
                for sender, aux_value in state.aux_values.items():
                    if aux_value == value:
                        state.valid_aux[sender] = aux_value
                if not state.aux_sent:
                    state.aux_sent = True
                    self.ctx.broadcast(
                        AuxMsg(instance=self.instance, round_number=round_number, value=value)
                    )

        if not state.bin_values or state.advanced:
            return

        # Rule: once N - f AUX votes carry values inside bin_values, conclude
        # the round with the common coin.
        valid_aux = state.valid_aux
        if len(valid_aux) < self.params.quorum:
            return
        carried_values = set(valid_aux.values())
        coin_value = self.coin.flip(self.instance, round_number)
        state.advanced = True
        self.rounds_taken = round_number + 1
        if len(carried_values) == 1:
            (only_value,) = carried_values
            self.estimate = only_value
            if only_value == coin_value:
                self._decide(only_value)
        else:
            self.estimate = coin_value
        if self.halted:
            return
        self._advance_to(round_number + 1)

    def _advance_to(self, round_number: int) -> None:
        self.round_number = round_number
        if self.probe is not None:
            self.probe.on_ba_round(
                self.ctx.node_id, self.instance.epoch, self.instance.slot,
                round_number, self.ctx.now,
            )
        assert self.estimate is not None
        self._broadcast_bval(round_number, self.estimate)
        self._evaluate_round(round_number)

    # ------------------------------------------------------------------
    # Decision and termination gadget
    # ------------------------------------------------------------------

    def _decide(self, value: int) -> None:
        if self.decided is None:
            self.decided = value
            if self.probe is not None:
                self.probe.on_ba_decide(
                    self.ctx.node_id, self.instance.epoch, self.instance.slot,
                    bool(value), self.ctx.now,
                )
            if self.on_output is not None:
                self.on_output(self.instance, value)
        if not self._sent_decided:
            self._sent_decided = True
            self.ctx.broadcast(DecidedMsg(instance=self.instance, value=value))

    def _on_decided(self, src: int, msg: DecidedMsg) -> None:
        if msg.value not in (0, 1):
            return
        senders = self._decided_senders[msg.value]
        if src in senders:
            return  # duplicate: counts unchanged, rules re-check nothing new
        senders.add(src)
        if len(senders) >= self.params.small_quorum and self.decided is None:
            self._decide(msg.value)
        if len(senders) >= self.params.ready_threshold and self.decided == msg.value:
            self.halted = True
