"""Wire messages of the MMR binary agreement protocol."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import BAInstanceId
from repro.sim.messages import HEADER_SIZE, Message, Priority

#: Extra bytes carried by a BA vote beyond the framing header (round, value).
_VOTE_BODY = 8


@dataclass
class BValMsg(Message):
    """``BVAL(round, value)``: the binary-value broadcast of MMR."""

    instance: BAInstanceId = field(kw_only=True)
    round_number: int = field(kw_only=True)
    value: int = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE + _VOTE_BODY
        self.priority = Priority.DISPERSAL


@dataclass
class AuxMsg(Message):
    """``AUX(round, value)``: second-phase vote over the binary value set."""

    instance: BAInstanceId = field(kw_only=True)
    round_number: int = field(kw_only=True)
    value: int = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE + _VOTE_BODY
        self.priority = Priority.DISPERSAL


@dataclass
class DecidedMsg(Message):
    """Termination gadget: a node announces its decision so peers can halt."""

    instance: BAInstanceId = field(kw_only=True)
    value: int = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE + _VOTE_BODY
        self.priority = Priority.DISPERSAL


BA_MESSAGE_TYPES = (BValMsg, AuxMsg, DecidedMsg)
