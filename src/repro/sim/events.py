"""The discrete-event loop.

A :class:`Simulator` owns virtual time and a priority queue of scheduled
callbacks.  Everything in an experiment — message transmissions, bandwidth
changes, protocol timers, workload arrivals — is a callback on this queue,
so a whole wide-area deployment runs deterministically in one thread.

Two scheduling flavours share one queue:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — fire-and-forget.
  The queue entry is a bare ``(when, seq, callback)`` tuple; nothing else is
  allocated, which keeps the pipe/network hot path lean.
* :meth:`Simulator.schedule_event` / :meth:`Simulator.schedule_event_at` —
  return a slotted :class:`Event` handle with O(1) :meth:`Event.cancel`.
  Cancellation is *lazy*: the heap entry stays put with its callback cleared
  and is discarded when it surfaces (or when a compaction sweep rebuilds the
  heap once more than half the queue is dead), so protocol timers and abort
  paths never pay for heap deletion.

Ordering is strict ``(time, FIFO sequence)``: ties at the same virtual time
run in scheduling order, and both flavours draw from the same sequence
counter so they interleave exactly as scheduled.
"""

from __future__ import annotations

import gc
import math
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Callable

from repro.common.snapshot import SnapshotState
from repro.sim.profiler import callback_kind

#: Lazy deletion compacts the heap only past this many dead entries (and only
#: when they outnumber the live ones), so small simulations never pay for it.
_COMPACT_MIN_STALE = 64


class Event(SnapshotState):
    """A cancellable scheduled callback (slotted, lazily deleted).

    Returned by the ``schedule_event`` family.  ``cancel()`` is O(1): it
    clears the callback and leaves the dead heap entry for the run loop (or
    a compaction sweep) to discard.  Executing an event also clears the
    callback, so cancelling an already-executed — or already-cancelled —
    event is a harmless no-op.
    """

    __slots__ = ("_owner", "when", "callback")
    _SNAPSHOT_FIELDS = ("_owner", "when", "callback")

    def __init__(self, owner: "Simulator", when: float, callback: Callable[[], None]):
        self._owner = owner
        self.when = when
        self.callback = callback

    @property
    def cancelled(self) -> bool:
        """True once the event can no longer fire (cancelled or executed)."""
        return self.callback is None

    def cancel(self) -> bool:
        """Prevent the callback from running.  Returns True if it was pending."""
        if self.callback is None:
            return False
        self.callback = None
        self._owner._note_cancelled()
        return True


class InternalCallback(SnapshotState):
    """A reusable scheduler hand-off excluded from event accounting.

    Used for internal bookkeeping (e.g. a pipe kicking off service for a
    newly-submitted transfer at the current instant): it runs in strict
    ``(time, sequence)`` order like any event but does not count toward
    ``processed_events`` or a ``run(max_events=...)`` budget, so performance
    accounting stays comparable across scheduler-internals changes.  The
    wrapper is allocated once by its owner and re-scheduled, never per call.
    """

    __slots__ = ("callback",)
    _SNAPSHOT_FIELDS = ("callback",)

    def __init__(self, callback: Callable[[], None]):
        self.callback = callback


class Simulator(SnapshotState):
    """A deterministic discrete-event simulator with floating-point seconds."""

    _SNAPSHOT_FIELDS = (
        "_now",
        "_queue",
        "_next_seq",
        "_processed_events",
        "_stale",
        "_in_internal",
        "_compact_deferred",
        "profiler",
    )

    def __init__(self) -> None:
        self._now = 0.0
        #: Optional :class:`repro.sim.profiler.SimProfiler`; when set (and no
        #: event budget is in play) ``run`` takes a timed twin of the fast
        #: loop that attributes host seconds per callback kind.
        self.profiler = None
        #: Heap entries are ``(when, seq, item)`` where ``item`` is a bare
        #: callback (fire-and-forget), an :class:`Event` (cancellable), or an
        #: :class:`InternalCallback` (uncounted bookkeeping).
        self._queue: list[tuple[float, int, Callable[[], None] | Event | InternalCallback]] = []
        self._next_seq = 0
        self._processed_events = 0
        #: Cancelled events still occupying heap slots (lazy deletion debt).
        self._stale = 0
        #: True while the run loop is inside an :class:`InternalCallback`
        #: hand-off; heap compaction is deferred until the hand-off returns.
        self._in_internal = False
        #: A compaction became due mid-hand-off and is owed at the next
        #: quiescent point.
        self._compact_deferred = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for performance reporting).

        Cancelled events are skipped, not executed, so they never count.
        """
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Number of live events still waiting in the queue.

        Lazily-deleted (cancelled) entries still sitting in the heap are
        excluded.
        """
        return len(self._queue) - self._stale

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (``delay`` must be >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        self._next_seq = seq = self._next_seq + 1
        heappush(self._queue, (self._now + delay, seq, callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: t={when} < now={self._now}")
        self._next_seq = seq = self._next_seq + 1
        heappush(self._queue, (when, seq, callback))

    def schedule_internal(self, delay: float, internal: InternalCallback) -> int:
        """Schedule a preallocated :class:`InternalCallback` ``delay`` from now.

        Returns the sequence number the entry occupies.  The caller may later
        hand that slot to a real event via :meth:`reschedule_at` (after this
        internal callback has fired), which keeps same-instant tie-breaking
        identical to code that scheduled the event directly — the pipes use
        this so deferred service starts cannot reorder anything.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        self._next_seq = seq = self._next_seq + 1
        heappush(self._queue, (self._now + delay, seq, internal))
        return seq

    def reschedule_at(self, when: float, seq: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at ``when`` under an already-retired ``seq``.

        Only valid for a sequence number whose original entry has already
        been popped (e.g. from inside the :class:`InternalCallback` that owned
        it); reusing a live sequence number would create duplicate heap keys.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: t={when} < now={self._now}")
        heappush(self._queue, (when, seq, callback))

    def count_inline_event(self) -> None:
        """Account for a semantic event a subsystem executed inline.

        Subsystems that complete work without a scheduler round-trip (e.g. a
        pipe draining a zero-duration transfer in batch) call this so
        ``processed_events`` keeps counting semantic events, comparable
        across batching optimisations.
        """
        self._processed_events += 1

    def count_inline_events(self, count: int) -> None:
        """Batch form of :meth:`count_inline_event` for fan-out deliveries."""
        self._processed_events += count

    def schedule_event(self, delay: float, callback: Callable[[], None]) -> Event:
        """Like :meth:`schedule`, but returns a cancellable :class:`Event`."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_event_at(self._now + delay, callback)

    def schedule_event_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable :class:`Event`."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: t={when} < now={self._now}")
        event = Event(self, when, callback)
        self._next_seq = seq = self._next_seq + 1
        heappush(self._queue, (when, seq, event))
        return event

    def _note_cancelled(self) -> None:
        self._stale += 1
        if self._stale > _COMPACT_MIN_STALE and self._stale * 2 > len(self._queue):
            if self._in_internal:
                # An InternalCallback hand-off is mid-flight (it may hold a
                # retired sequence number it is about to reuse, and it may be
                # the checkpoint timer pickling this very queue).  Rebuilding
                # the heap here would reorder lazily-deleted slots under it;
                # defer to the quiescent point right after the hand-off.
                self._compact_deferred = True
                return
            self._compact()

    def _compact(self) -> None:
        # Compact in place: ``run`` holds a reference to this list.
        self._queue[:] = [
            entry
            for entry in self._queue
            if not (type(entry[2]) is Event and entry[2].callback is None)
        ]
        heapify(self._queue)
        self._stale = 0

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` events have run.  Returns the virtual time at which the
        run stopped.  Cancelled events are discarded without executing (and
        without counting against ``max_events``).

        Python's cyclic garbage collector is suspended for the duration of
        the loop (and restored after, even on an exception).  The loop
        allocates at enormous rates but its garbage is acyclic — messages,
        transfers and heap entries die by refcount as soon as the queue
        drops them — so collector passes never free anything here; they
        only pause the run to rescan every live object, which at
        million-object scenario scales costs ~20% of the whole run.
        Callers that were already running with the collector disabled are
        left untouched.
        """
        resume_gc = gc.isenabled()
        if resume_gc:
            gc.disable()
        try:
            profiler = getattr(self, "profiler", None)
            if profiler is not None and max_events is None:
                return self._run_loop_profiled(until, profiler)
            return self._run_loop(until, max_events)
        finally:
            if resume_gc:
                gc.enable()

    def _run_loop(self, until: float | None, max_events: int | None) -> float:
        queue = self._queue
        if max_events is None:
            # The two hot shapes (drain everything / run to a horizon) skip
            # the per-iteration budget arithmetic, and batch the processed
            # counter into a local (written back on every exit path, so the
            # count is exact after ``run`` returns or raises).
            processed = 0
            try:
                while queue:
                    entry = queue[0]
                    when = entry[0]
                    if until is not None and when > until:
                        self._now = until
                        return until
                    heappop(queue)
                    item = entry[2]
                    cls = type(item)
                    if cls is Event:
                        callback = item.callback
                        if callback is None:
                            self._stale -= 1
                            continue
                        item.callback = None  # executed: later cancel() is a no-op
                    elif cls is InternalCallback:
                        # Internal bookkeeping: runs in order, not an event.
                        # Sync the batched counter first so a checkpoint taken
                        # inside the hand-off captures an exact
                        # ``processed_events``, and defer heap compaction
                        # until the hand-off returns (quiescent point).
                        self._now = when
                        self._processed_events += processed
                        processed = 0
                        self._in_internal = True
                        item.callback()
                        self._in_internal = False
                        if self._compact_deferred:
                            self._compact_deferred = False
                            self._compact()
                        continue
                    else:
                        callback = item
                    self._now = when
                    callback()
                    processed += 1
            finally:
                self._processed_events += processed
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        horizon = math.inf if until is None else until
        executed = 0
        while queue:
            entry = queue[0]
            when = entry[0]
            if when > horizon:
                self._now = until  # type: ignore[assignment]  # horizon finite => until set
                return self._now
            if executed >= max_events:
                return self._now
            heappop(queue)
            item = entry[2]
            cls = type(item)
            if cls is Event:
                callback = item.callback
                if callback is None:
                    self._stale -= 1
                    continue
                item.callback = None  # executed: later cancel() is a no-op
            elif cls is InternalCallback:
                self._now = when
                self._in_internal = True
                item.callback()
                self._in_internal = False
                if self._compact_deferred:
                    self._compact_deferred = False
                    self._compact()
                continue
            else:
                callback = item
            self._now = when
            callback()
            executed += 1
            self._processed_events += 1
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def _run_loop_profiled(self, until: float | None, profiler) -> float:
        """The no-budget fast loop with per-callback wall-time attribution.

        A structural twin of ``_run_loop``'s ``max_events is None`` branch —
        identical ``_now``/counter/stale/compaction semantics, so a profiled
        run is behaviour-identical to an unprofiled one — plus two
        ``perf_counter`` reads and a kind lookup around every callback.
        """
        queue = self._queue
        record = profiler.record
        processed = 0
        try:
            while queue:
                entry = queue[0]
                when = entry[0]
                if until is not None and when > until:
                    self._now = until
                    return until
                heappop(queue)
                item = entry[2]
                cls = type(item)
                if cls is Event:
                    callback = item.callback
                    if callback is None:
                        self._stale -= 1
                        continue
                    item.callback = None  # executed: later cancel() is a no-op
                    kind = "event:" + callback_kind(callback)
                elif cls is InternalCallback:
                    self._now = when
                    self._processed_events += processed
                    processed = 0
                    self._in_internal = True
                    callback = item.callback
                    started = perf_counter()
                    callback()
                    record("internal:" + callback_kind(callback), perf_counter() - started)
                    self._in_internal = False
                    if self._compact_deferred:
                        self._compact_deferred = False
                        self._compact()
                    continue
                else:
                    callback = item
                    kind = "event:" + callback_kind(callback)
                self._now = when
                started = perf_counter()
                callback()
                record(kind, perf_counter() - started)
                processed += 1
        finally:
            self._processed_events += processed
        if until is not None:
            self._now = max(self._now, until)
        return self._now
