"""The discrete-event loop.

A :class:`Simulator` owns virtual time and a priority queue of scheduled
callbacks.  Everything in an experiment — message transmissions, bandwidth
changes, protocol timers, workload arrivals — is a callback on this queue,
so a whole wide-area deployment runs deterministically in one thread.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class Simulator:
    """A deterministic discrete-event simulator with floating-point seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed_events = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for performance reporting)."""
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (``delay`` must be >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: t={when} < now={self._now}")
        heapq.heappush(self._queue, (when, next(self._sequence), callback))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` events have run.  Returns the virtual time at which the
        run stopped."""
        executed = 0
        while self._queue:
            when, _seq, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            if max_events is not None and executed >= max_events:
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            callback()
            executed += 1
            self._processed_events += 1
        if until is not None:
            self._now = max(self._now, until)
        return self._now
