"""The simulated wide-area network.

``Network`` connects ``N`` protocol automata.  Every message travels:

1. through the sender's **egress pipe** (charged ``wire_size`` bytes at the
   sender's current egress bandwidth, after any higher-priority traffic),
2. across the link's **propagation delay**,
3. through the receiver's **ingress pipe** (charged again at the receiver's
   ingress bandwidth),

and is then handed to the receiver's ``on_message``.  Loopback messages are
delivered after a negligible local delay and are not charged bandwidth,
matching the paper's setup where a node's own chunk never crosses the WAN.

The network keeps per-node traffic statistics split by priority class; the
dispersal-traffic fraction of Fig. 13 is read straight from these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.sim.bandwidth import BandwidthTrace, ConstantBandwidth
from repro.sim.events import Simulator
from repro.sim.messages import Message, Priority
from repro.sim.pipe import Pipe
from repro.sim.process import Process

#: Delivery delay for messages a node sends to itself (seconds).
LOOPBACK_DELAY = 1e-4


@dataclass
class TrafficStats:
    """Per-node byte counters split by traffic class."""

    sent: dict[Priority, int] = field(
        default_factory=lambda: {priority: 0 for priority in Priority}
    )
    received: dict[Priority, int] = field(
        default_factory=lambda: {priority: 0 for priority in Priority}
    )

    @property
    def total_sent(self) -> int:
        return sum(self.sent.values())

    @property
    def total_received(self) -> int:
        return sum(self.received.values())

    @property
    def dispersal_fraction(self) -> float:
        """Fraction of received bytes that belong to the dispersal phase."""
        total = self.total_received
        if total == 0:
            return 0.0
        return self.received[Priority.DISPERSAL] / total


@dataclass
class NetworkConfig:
    """Configuration of the simulated network.

    Attributes:
        num_nodes: number of nodes.
        propagation_delay: one-way delay in seconds, either a scalar applied
            to every ordered pair or a matrix ``delay[src][dst]``.
        egress_traces: per-node egress bandwidth traces (bytes/s); ``None``
            entries mean unlimited.
        ingress_traces: per-node ingress bandwidth traces; same convention.
    """

    num_nodes: int
    propagation_delay: float | list[list[float]] = 0.1
    egress_traces: list[BandwidthTrace | None] | None = None
    ingress_traces: list[BandwidthTrace | None] | None = None

    def delay(self, src: int, dst: int) -> float:
        if isinstance(self.propagation_delay, (int, float)):
            return float(self.propagation_delay)
        return self.propagation_delay[src][dst]

    def egress_trace(self, node: int) -> BandwidthTrace:
        if self.egress_traces is None or self.egress_traces[node] is None:
            return ConstantBandwidth(None)
        return self.egress_traces[node]

    def ingress_trace(self, node: int) -> BandwidthTrace:
        if self.ingress_traces is None or self.ingress_traces[node] is None:
            return ConstantBandwidth(None)
        return self.ingress_traces[node]


class Network:
    """Connects protocol automata through bandwidth-limited pipes."""

    def __init__(self, sim: Simulator, config: NetworkConfig):
        if config.num_nodes < 1:
            raise ConfigurationError("network needs at least one node")
        for traces_name in ("egress_traces", "ingress_traces"):
            traces = getattr(config, traces_name)
            if traces is not None and len(traces) != config.num_nodes:
                raise ConfigurationError(
                    f"{traces_name} has {len(traces)} entries for {config.num_nodes} nodes"
                )
        self._sim = sim
        self._config = config
        self._handlers: list[Process | None] = [None] * config.num_nodes
        self._egress = [
            Pipe(sim, config.egress_trace(i)) for i in range(config.num_nodes)
        ]
        self._ingress = [
            Pipe(sim, config.ingress_trace(i)) for i in range(config.num_nodes)
        ]
        self.stats = [TrafficStats() for _ in range(config.num_nodes)]
        self.messages_delivered = 0

    @property
    def num_nodes(self) -> int:
        return self._config.num_nodes

    @property
    def sim(self) -> Simulator:
        return self._sim

    def attach(self, node_id: int, handler: Process) -> None:
        """Register the protocol automaton running at ``node_id``."""
        self._handlers[node_id] = handler

    def start(self) -> None:
        """Invoke ``start()`` on every attached automaton at time zero."""
        for handler in self._handlers:
            if handler is not None:
                self._sim.schedule(0.0, handler.start)

    def send(
        self,
        src: int,
        dst: int,
        msg: Message,
        rank: float = 0.0,
        abort: "Callable[[], bool] | None" = None,
    ) -> None:
        """Send ``msg`` from ``src`` to ``dst``, charging bandwidth on both ends.

        ``abort`` (optional) is checked when the message reaches the head of
        the sender's egress queue and again at the receiver's ingress queue;
        if it returns True the transfer is dropped without consuming
        bandwidth.  Senders use it to cancel retrieval chunks the receiver no
        longer needs (S6.3's "stop sending more chunks" optimisation).
        """
        if not 0 <= dst < self.num_nodes:
            raise ConfigurationError(f"destination {dst} out of range")
        if src == dst:
            self.stats[src].sent[msg.priority] += msg.wire_size
            self._sim.schedule(LOOPBACK_DELAY, lambda: self._deliver(src, dst, msg))
            return

        def after_egress() -> None:
            self.stats[src].sent[msg.priority] += msg.wire_size
            delay = self._config.delay(src, dst)
            self._sim.schedule(delay, lambda: self._enter_ingress(src, dst, msg, rank, abort))

        self._egress[src].submit(msg.wire_size, msg.priority, after_egress, rank, abort)

    def _enter_ingress(
        self,
        src: int,
        dst: int,
        msg: Message,
        rank: float,
        abort: "Callable[[], bool] | None" = None,
    ) -> None:
        # Receiver-side cancellation: before the transfer is charged against
        # the receiver's ingress bandwidth, the receiving automaton may
        # decline it (e.g. a retrieval chunk for a block it already decoded).
        # This models receiver-driven stream cancellation (QUIC STOP_SENDING
        # / flow control): the bytes are neither transmitted in full nor
        # charged to the receiver's scarce download capacity.
        handler = self._handlers[dst]
        decline = getattr(handler, "declines_transfer", None)

        def should_abort() -> bool:
            if abort is not None and abort():
                return True
            return decline is not None and decline(msg)

        self._ingress[dst].submit(
            msg.wire_size, msg.priority, lambda: self._deliver(src, dst, msg), rank, should_abort
        )

    def _deliver(self, src: int, dst: int, msg: Message) -> None:
        if src != dst:
            self.stats[dst].received[msg.priority] += msg.wire_size
        self.messages_delivered += 1
        handler = self._handlers[dst]
        if handler is not None:
            handler.on_message(src, msg)
