"""The simulated wide-area network.

``Network`` connects ``N`` protocol automata.  Every message travels:

1. through the sender's **egress pipe** (charged ``wire_size`` bytes at the
   sender's current egress bandwidth, after any higher-priority traffic),
2. across the link's **propagation delay**,
3. through the receiver's **ingress pipe** (charged again at the receiver's
   ingress bandwidth),

and is then handed to the receiver's ``on_message``.  Loopback messages are
delivered after a negligible local delay and are not charged bandwidth,
matching the paper's setup where a node's own chunk never crosses the WAN.

Per-message state along that journey lives in one slotted
:class:`_MessageTransfer` record whose bound methods are the pipe and timer
callbacks — the hop-per-hop closures this replaces dominated allocation
profiles at high message rates.  Scalar propagation delays and the
receivers' ``declines_transfer`` hooks are resolved once instead of per
message.

The network keeps per-node traffic statistics split by priority class; the
dispersal-traffic fraction of Fig. 13 is read straight from these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.common.snapshot import SnapshotState
from repro.sim.bandwidth import BandwidthTrace, ConstantBandwidth
from repro.sim.events import Simulator
from repro.sim.messages import Message, Priority
from repro.sim.pipe import Pipe
from repro.sim.process import Process

#: Delivery delay for messages a node sends to itself (seconds).
LOOPBACK_DELAY = 1e-4


@dataclass
class TrafficStats:
    """Per-node byte counters split by traffic class.

    The counters are lists indexed by :class:`Priority` value (IntEnum
    members index them directly); list indexing keeps the per-message
    accounting off the dict hash path.
    """

    sent: list[int] = field(default_factory=lambda: [0] * len(Priority))
    received: list[int] = field(default_factory=lambda: [0] * len(Priority))

    @property
    def total_sent(self) -> int:
        return sum(self.sent)

    @property
    def total_received(self) -> int:
        return sum(self.received)

    @property
    def dispersal_fraction(self) -> float:
        """Fraction of received bytes that belong to the dispersal phase."""
        total = self.total_received
        if total == 0:
            return 0.0
        return self.received[Priority.DISPERSAL] / total


@dataclass
class NetworkConfig:
    """Configuration of the simulated network.

    Attributes:
        num_nodes: number of nodes.
        propagation_delay: one-way delay in seconds, either a scalar applied
            to every ordered pair or a matrix ``delay[src][dst]``.
        egress_traces: per-node egress bandwidth traces (bytes/s); ``None``
            entries mean unlimited.
        ingress_traces: per-node ingress bandwidth traces; same convention.
        express: opt-in broadcast fast path for protocol-scalability studies.
            A broadcast schedules **one** fan-out event that delivers the
            message to every recipient inline, instead of one three-hop pipe
            journey per recipient — collapsing the O(N) scheduler entries per
            broadcast that dominate large-N runs.  Only valid with unlimited
            bandwidth and a scalar propagation delay (there are no pipes to
            queue in and every copy arrives together); per-delivery work is
            still counted via ``Simulator.count_inline_event`` so events/s
            stays comparable.  Express delivery changes event interleaving
            relative to the per-message path (identical arrival *times*,
            different ordering within a timestamp), so pinned golden
            scenarios never enable it.
    """

    num_nodes: int
    propagation_delay: float | list[list[float]] = 0.1
    egress_traces: list[BandwidthTrace | None] | None = None
    ingress_traces: list[BandwidthTrace | None] | None = None
    express: bool = False

    def delay(self, src: int, dst: int) -> float:
        if isinstance(self.propagation_delay, (int, float)):
            return float(self.propagation_delay)
        return self.propagation_delay[src][dst]

    def egress_trace(self, node: int) -> BandwidthTrace:
        if self.egress_traces is None or self.egress_traces[node] is None:
            return ConstantBandwidth(None)
        return self.egress_traces[node]

    def ingress_trace(self, node: int) -> BandwidthTrace:
        if self.ingress_traces is None or self.ingress_traces[node] is None:
            return ConstantBandwidth(None)
        return self.ingress_traces[node]


#: Journey phases of a :class:`_MessageTransfer`.
_EGRESS_DONE = 0
_PROPAGATED = 1
_DELIVER = 2


class _MessageTransfer(SnapshotState):
    """Slotted per-message journey state (egress -> propagation -> ingress).

    One record per message replaces the seed's four per-message closures.
    The record is itself the callback for every hop — ``__call__`` advances
    through the phases above — so the pipes and the simulator hold the
    record directly instead of a fresh bound method per hop.
    """

    __slots__ = ("network", "src", "dst", "msg", "rank", "abort", "phase")
    _SNAPSHOT_FIELDS = ("network", "src", "dst", "msg", "rank", "abort", "phase")

    def __init__(
        self,
        network: "Network",
        src: int,
        dst: int,
        msg: Message,
        rank: float,
        abort: Callable[[], bool] | None,
        phase: int = _EGRESS_DONE,
    ):
        self.network = network
        self.src = src
        self.dst = dst
        self.msg = msg
        self.rank = rank
        self.abort = abort
        self.phase = phase

    def __call__(self) -> None:
        net = self.network
        msg = self.msg
        phase = self.phase
        if phase == _DELIVER:
            src = self.src
            dst = self.dst
            if src != dst:
                net.stats[dst].received[msg.priority] += msg.wire_size
            net.messages_delivered += 1
            deliver = net._on_message[dst]
            if deliver is not None:
                deliver(src, msg)
        elif phase == _EGRESS_DONE:
            net.stats[self.src].sent[msg.priority] += msg.wire_size
            delay = net._scalar_delay
            if delay is None:
                delay = net._config.delay(self.src, self.dst)
            self.phase = _PROPAGATED
            net._sim.schedule(delay, self)
        else:
            # Arrived at the receiver: charge its ingress pipe.  If neither a
            # sender-side abort nor a receiver-side decline hook exists, skip
            # the ``should_abort`` wrapper entirely.
            dst = self.dst
            if self.abort is None and net._declines[dst] is None:
                abort = None
            else:
                abort = self.should_abort
            self.phase = _DELIVER
            net._ingress[dst].submit(msg.wire_size, msg.priority, self, self.rank, abort)

    def should_abort(self) -> bool:
        # Receiver-side cancellation: before the transfer is charged against
        # the receiver's ingress bandwidth, the receiving automaton may
        # decline it (e.g. a retrieval chunk for a block it already decoded).
        # This models receiver-driven stream cancellation (QUIC STOP_SENDING
        # / flow control): the bytes are neither transmitted in full nor
        # charged to the receiver's scarce download capacity.
        abort = self.abort
        if abort is not None and abort():
            return True
        net = self.network
        dst = self.dst
        decline = net._declines[dst]
        if decline is None:
            return False
        scope = net._decline_types[dst]
        if scope is not None and type(self.msg) not in scope:
            return False  # the hook guarantees False for this type
        return decline(self.msg)


def _decline_scope(handler: object) -> tuple | None:
    """Message types ``handler.declines_transfer`` can ever decline.

    A handler advertises the scope of its decline hook through a
    ``DECLINE_TYPES`` class attribute — a tuple of message types outside
    which the hook is guaranteed to return False.  To stay safe under
    subclassing, the attribute only counts when it is declared on the same
    class that defines ``declines_transfer``: a subclass overriding the hook
    without restating its scope gets ``None`` (hook always consulted).
    """
    for klass in type(handler).__mro__:
        if "declines_transfer" in klass.__dict__:
            scope = klass.__dict__.get("DECLINE_TYPES")
            return tuple(scope) if scope is not None else None
    return None


class _BroadcastFanout(SnapshotState):
    """One scheduled event delivering an express broadcast to all recipients."""

    __slots__ = ("network", "src", "msg")
    _SNAPSHOT_FIELDS = ("network", "src", "msg")

    def __init__(self, network: "Network", src: int, msg: Message):
        self.network = network
        self.src = src
        self.msg = msg

    def __call__(self) -> None:
        net = self.network
        src = self.src
        msg = self.msg
        wire = msg.wire_size
        priority = msg.priority
        mtype = type(msg)
        on_message = net._on_message
        stats = net.stats
        num_nodes = net._num_nodes
        if net._fanout_skips_declines(mtype):
            # No attached node can decline this type: decline-free tight loop.
            for dst in range(num_nodes):
                if dst == src:
                    continue
                stats[dst].received[priority] += wire
                deliver = on_message[dst]
                if deliver is not None:
                    deliver(src, msg)
            delivered = num_nodes - 1
        else:
            declines = net._declines
            decline_types = net._decline_types
            delivered = 0
            for dst in range(num_nodes):
                if dst == src:
                    continue
                decline = declines[dst]
                if decline is not None:
                    scope = decline_types[dst]
                    if (scope is None or mtype in scope) and decline(msg):
                        continue  # dropped before delivery, like the ingress path
                stats[dst].received[priority] += wire
                delivered += 1
                deliver = on_message[dst]
                if deliver is not None:
                    deliver(src, msg)
        net.messages_delivered += delivered
        net._sim.count_inline_events(delivered)


class Network(SnapshotState):
    """Connects protocol automata through bandwidth-limited pipes."""

    #: The attach-time resolved hooks (``_on_message``, ``_declines``) are
    #: bound methods of the attached processes; they pickle by reference and
    #: re-resolve to the restored processes, so they are snapshotted rather
    #: than rebuilt.
    _SNAPSHOT_FIELDS = (
        "_sim",
        "_config",
        "_num_nodes",
        "_scalar_delay",
        "_handlers",
        "_on_message",
        "_declines",
        "_decline_types",
        "_no_decline_cache",
        "_egress",
        "_ingress",
        "stats",
        "messages_delivered",
        "_span_probe",
    )

    def __init__(self, sim: Simulator, config: NetworkConfig):
        if config.num_nodes < 1:
            raise ConfigurationError("network needs at least one node")
        for traces_name in ("egress_traces", "ingress_traces"):
            traces = getattr(config, traces_name)
            if traces is not None and len(traces) != config.num_nodes:
                raise ConfigurationError(
                    f"{traces_name} has {len(traces)} entries for {config.num_nodes} nodes"
                )
        if config.express:
            if not isinstance(config.propagation_delay, (int, float)):
                raise ConfigurationError(
                    "express broadcast requires a scalar propagation delay"
                )
            for traces_name in ("egress_traces", "ingress_traces"):
                traces = getattr(config, traces_name)
                if traces is not None and any(trace is not None for trace in traces):
                    raise ConfigurationError(
                        "express broadcast requires unlimited bandwidth "
                        f"(got {traces_name})"
                    )
        self._sim = sim
        self._config = config
        self._num_nodes = config.num_nodes
        delay = config.propagation_delay
        self._scalar_delay: float | None = (
            float(delay) if isinstance(delay, (int, float)) else None
        )
        self._handlers: list[Process | None] = [None] * config.num_nodes
        #: Per-node bound ``on_message`` methods, resolved at attach time so
        #: the delivery hot paths skip a per-message attribute lookup.
        self._on_message: list[Callable[[int, Message], None] | None] = (
            [None] * config.num_nodes
        )
        #: Per-node ``declines_transfer`` hooks, resolved at attach time.
        self._declines: list[Callable[[Message], bool] | None] = [None] * config.num_nodes
        #: Per node: the message types its decline hook can ever return True
        #: for (``None`` = unknown, always consult the hook).  Lets the hot
        #: delivery paths skip the Python call for the overwhelming majority
        #: of messages, which are not declinable at all.
        self._decline_types: list[tuple | None] = [None] * config.num_nodes
        #: ``message type -> True`` when *no* attached node can ever decline
        #: that type (every decline hook is absent or scoped away from it).
        #: Lets the broadcast fan-out take a decline-free tight loop; rebuilt
        #: lazily per type and invalidated on attach.
        self._no_decline_cache: dict[type, bool] = {}
        self._egress = [
            Pipe(sim, config.egress_trace(i)) for i in range(config.num_nodes)
        ]
        self._ingress = [
            Pipe(sim, config.ingress_trace(i)) for i in range(config.num_nodes)
        ]
        self.stats = [TrafficStats() for _ in range(config.num_nodes)]
        self.messages_delivered = 0
        #: Optional :class:`repro.trace.spans.SpanRecorder`, installed by its
        #: ``attach``; observes sends to open chunk-transfer spans.
        self._span_probe = None

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def sim(self) -> Simulator:
        return self._sim

    def link_snapshot(self, node_id: int) -> dict:
        """A read-only snapshot of one node's link state (telemetry hook).

        Queue depths count waiting *and* in-flight bytes; busy times (the
        in-flight transfer's elapsed portion included, so interval deltas
        are exact) and transferred bytes are cumulative since the start of
        the run.  The :class:`repro.trace.recorder.TraceRecorder` samples
        this on a virtual-time grid; reading it never perturbs the
        simulation.
        """
        now = self._sim.now
        egress = self._egress[node_id]
        ingress = self._ingress[node_id]
        return {
            "egress_queue": egress.queued_bytes + egress.in_flight_bytes,
            "ingress_queue": ingress.queued_bytes + ingress.in_flight_bytes,
            "egress_busy_time": egress.busy_time_at(now),
            "ingress_busy_time": ingress.busy_time_at(now),
            "egress_bytes": egress.bytes_transferred,
            "ingress_bytes": ingress.bytes_transferred,
        }

    def attach(self, node_id: int, handler: Process) -> None:
        """Register the protocol automaton running at ``node_id``."""
        self._handlers[node_id] = handler
        self._on_message[node_id] = handler.on_message
        self._declines[node_id] = getattr(handler, "declines_transfer", None)
        self._decline_types[node_id] = _decline_scope(handler)
        self._no_decline_cache.clear()

    def _fanout_skips_declines(self, mtype: type) -> bool:
        """True when no attached node's decline hook can fire for ``mtype``.

        A node is decline-free for a type when it has no hook at all, or its
        advertised ``DECLINE_TYPES`` scope excludes the type.  Any node with
        an unscoped hook (``None`` scope) forces the conservative answer.
        The verdict is cached per type; :meth:`attach` invalidates the cache.
        """
        cached = self._no_decline_cache.get(mtype)
        if cached is None:
            cached = all(
                decline is None or (scope is not None and mtype not in scope)
                for decline, scope in zip(self._declines, self._decline_types)
            )
            self._no_decline_cache[mtype] = cached
        return cached

    def start(self) -> None:
        """Invoke ``start()`` on every attached automaton at time zero."""
        for handler in self._handlers:
            if handler is not None:
                self._sim.schedule(0.0, handler.start)

    def send(
        self,
        src: int,
        dst: int,
        msg: Message,
        rank: float = 0.0,
        abort: "Callable[[], bool] | None" = None,
    ) -> None:
        """Send ``msg`` from ``src`` to ``dst``, charging bandwidth on both ends.

        ``abort`` (optional) is checked when the message reaches the head of
        the sender's egress queue and again at the receiver's ingress queue;
        if it returns True the transfer is dropped without consuming
        bandwidth.  Senders use it to cancel retrieval chunks the receiver no
        longer needs (S6.3's "stop sending more chunks" optimisation).
        """
        if not 0 <= dst < self._num_nodes:
            raise ConfigurationError(f"destination {dst} out of range")
        if self._span_probe is not None:
            self._span_probe.on_message_send(src, dst, msg, self._sim.now)
        if src == dst:
            self.stats[src].sent[msg.priority] += msg.wire_size
            transfer = _MessageTransfer(self, src, dst, msg, rank, abort, _DELIVER)
            self._sim.schedule(LOOPBACK_DELAY, transfer)
            return
        if self._config.express:
            # Unlimited bandwidth: the pipes would pass the message through
            # untouched, so skip them — one scheduled event per unicast.  A
            # C-constructed partial replaces the transfer record: at N=256 the
            # retrieval plane schedules N^3 of these per epoch, so the two
            # Python frames this saves (``__init__`` + the ``should_abort``
            # wrapper) are a measurable slice of the whole run.
            self.stats[src].sent[msg.priority] += msg.wire_size
            self._sim.schedule(
                self._scalar_delay, partial(self._express_unicast, src, dst, msg, abort)
            )
            return
        transfer = _MessageTransfer(self, src, dst, msg, rank, abort)
        self._egress[src].submit(msg.wire_size, msg.priority, transfer, rank, abort)

    def _express_unicast(
        self,
        src: int,
        dst: int,
        msg: Message,
        abort: Callable[[], bool] | None,
    ) -> None:
        """Arrival of an express unicast: abort/decline checks, then deliver.

        Same semantics as the ingress leg of the pipe path — the sender-side
        abort and the receiver's scoped ``declines_transfer`` hook both run
        before the receiver is charged — but flattened into one callback so
        the per-message cost is a single Python frame.
        """
        if abort is not None and abort():
            return
        decline = self._declines[dst]
        if decline is not None:
            scope = self._decline_types[dst]
            if (scope is None or type(msg) in scope) and decline(msg):
                return
        self.stats[dst].received[msg.priority] += msg.wire_size
        self.messages_delivered += 1
        deliver = self._on_message[dst]
        if deliver is not None:
            deliver(src, msg)

    def broadcast(
        self, src: int, msg: Message, include_self: bool = True, rank: float = 0.0
    ) -> None:
        """Send ``msg`` from ``src`` to every node.

        On an express network (``NetworkConfig.express``) the off-node copies
        share one scheduled fan-out event; otherwise this is exactly a loop
        of :meth:`send`.  The loopback copy always takes the normal local
        path so self-delivery ordering matches the per-message network.
        """
        if not self._config.express:
            for dst in range(self._num_nodes):
                if dst == src and not include_self:
                    continue
                self.send(src, dst, msg, rank)
            return
        if include_self:
            self.send(src, src, msg, rank)
        if self._num_nodes > 1:
            self.stats[src].sent[msg.priority] += msg.wire_size * (self._num_nodes - 1)
            self._sim.schedule(self._scalar_delay, _BroadcastFanout(self, src, msg))
