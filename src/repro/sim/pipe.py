"""A bandwidth-limited pipe with priority queueing.

Each simulated node owns two pipes: an egress pipe that all of its outgoing
messages pass through, and an ingress pipe for incoming messages.  A pipe
serves one message at a time at the instantaneous rate of its bandwidth
trace; when it becomes free, it picks the next message from the
highest-priority non-empty queue (dispersal-phase traffic before retrieval
traffic).  Within a priority class, queueing is FIFO except that retrieval
traffic can be sub-prioritised by a caller-supplied rank (the paper serves
the QUIC stream with the lowest epoch number first, S5).

Hot-path structure (the event loop and these pipes dominate scenario
profiles):

* Each priority class keeps a plain ``deque`` while every submission uses
  the default rank, falling back to a ``(rank, seq, ...)`` heap only once a
  caller actually ranks its traffic — dispersal-class traffic never pays for
  heap ordering it does not use.  Both containers are int-indexed lists,
  not enum-keyed dicts.
* The in-flight transfer lives in slots on the pipe itself and completes
  through one prebound method scheduled on the simulator, instead of a
  fresh ``complete()`` closure per transfer.
* Constant-rate traces are detected once at construction and finish times
  are computed arithmetically (``now + size / rate``), skipping the trace
  integration entirely.
* Zero-duration transfers (unlimited-bandwidth pipes, empty messages) drain
  in batches: the serve loop completes every same-instant transfer inline
  without re-entering the scheduler per message.  This is the one deliberate
  ordering deviation from the seed core: a zero-duration backlog completes
  consecutively instead of interleaving with other same-instant events by
  FIFO sequence (virtual times are unchanged).  Finite-rate pipes — every
  catalog scenario — are ordering-identical to a synchronous start.

``submit`` never serves synchronously in the caller's frame; an idle pipe
hands off to the scheduler at the current virtual time, so a transfer
submitted from inside another transfer's ``on_done`` (or any other callback)
always observes consistent pipe state.  The transfer that found the pipe
idle is the one that starts serving — exactly the selection a synchronous
start would have made, with the hand-off's sequence slot reused for the
completion event so same-instant tie-breaking is unchanged too — and
everything else submitted at the same instant queues behind it under the
usual ``(priority, rank, FIFO)`` order.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from typing import Callable

from repro.common.snapshot import SnapshotState
from repro.sim.bandwidth import BandwidthTrace, ConstantBandwidth
from repro.sim.events import InternalCallback, Simulator
from repro.sim.messages import Priority

#: Priority classes in service order (lower value served first), as plain
#: ints so the per-class containers are list-indexed.
_PRIORITY_ORDER = tuple(sorted(int(p) for p in Priority))
_NUM_CLASSES = max(_PRIORITY_ORDER) + 1

_OnDone = Callable[[], None]

_INF = math.inf


class Pipe(SnapshotState):
    """Serialises byte transfers through a time-varying bandwidth limit."""

    #: The prebound ``_drain_cb``/``_kick_entry`` are part of the snapshot:
    #: bound methods pickle as (instance, name) references, so the restored
    #: queue entries resolve to the restored pipe.
    _SNAPSHOT_FIELDS = (
        "_sim",
        "_trace",
        "_rate",
        "_fifo",
        "_heap",
        "_ranked",
        "_next_seq",
        "_busy",
        "_kick_head",
        "_cur_size",
        "_cur_on_done",
        "_cur_start",
        "_drain_cb",
        "_kick_entry",
        "bytes_transferred",
        "bytes_aborted",
        "busy_time",
    )

    def __init__(self, sim: Simulator, trace: BandwidthTrace):
        self._sim = sim
        self._trace = trace
        # Constant-rate fast path: resolve the rate once (math.inf for an
        # unlimited pipe, None for genuinely time-varying traces).
        if isinstance(trace, ConstantBandwidth):
            self._rate: float | None = _INF if trace.rate is None else trace.rate
        else:
            self._rate = None
        #: Per-class FIFO backlog: ``(size, on_done, abort)`` deques.
        self._fifo: list[deque] = [deque() for _ in range(_NUM_CLASSES)]
        #: Per-class ranked backlog: ``(rank, seq, size, on_done, abort)`` heaps.
        self._heap: list[list] = [[] for _ in range(_NUM_CLASSES)]
        #: Whether a class has ever seen a non-default rank (heap mode).
        self._ranked: list[bool] = [False] * _NUM_CLASSES
        self._next_seq = 0
        #: True from the moment a transfer is stashed or serving begins until
        #: the queues drain: a single flag covers both "kick scheduled" and
        #: "transfer in flight", so ``submit`` makes one check.
        self._busy = False
        #: The transfer that found the pipe idle and is about to start
        #: serving: ``(size, on_done, abort, reserved seq)``.
        self._kick_head: "tuple[int, _OnDone, Callable[[], bool] | None, int] | None" = None
        # The in-flight transfer, slotted on the pipe (exactly one at a time).
        self._cur_size = 0
        self._cur_on_done: _OnDone | None = None
        self._cur_start = 0.0
        self._drain_cb = self._drain
        self._kick_entry = InternalCallback(self._kick)
        self.bytes_transferred = 0
        self.bytes_aborted = 0
        self.busy_time = 0.0

    def submit(
        self,
        size: int,
        priority: Priority,
        on_done: Callable[[], None],
        rank: float = 0.0,
        abort: Callable[[], bool] | None = None,
    ) -> None:
        """Enqueue a transfer of ``size`` bytes; call ``on_done`` when it drains.

        ``rank`` orders transfers within the same priority class (lower rank
        first); ties fall back to FIFO arrival order.  ``abort`` (if given) is
        evaluated when the transfer is about to start serving: if it returns
        True the transfer is dropped without consuming any bandwidth and
        ``on_done`` is never called — this models the paper's "stop sending
        chunks once the block is decodable" cancellation (S6.3).

        Serving starts via the simulator (at the current virtual time), never
        synchronously inside the caller's frame.
        """
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size}")
        if self._busy:
            if rank != 0.0 or self._ranked[priority]:
                self._push_ranked(priority, rank, size, on_done, abort)
            else:
                self._fifo[priority].append((size, on_done, abort))
            return
        # This transfer found the pipe idle (all queues drained): it is the
        # one that starts serving, exactly as if service had begun at
        # submission — but the hand-off goes through the scheduler so the
        # caller's frame never runs pipe-serving code.  Same-instant
        # submissions that arrive before the kick queue up behind it, and the
        # kick's sequence slot is handed to the completion event so
        # tie-breaking at the finish instant matches a synchronous start.
        self._busy = True
        seq = self._sim.schedule_internal(0.0, self._kick_entry)
        self._kick_head = (size, on_done, abort, seq)

    def _push_ranked(
        self, priority: int, rank: float, size: int, on_done: _OnDone, abort
    ) -> None:
        heap = self._heap[priority]
        if not self._ranked[priority]:
            # First ranked submission for this class: spill the FIFO backlog
            # into the heap (rank 0.0, original order) and stay in heap mode.
            self._ranked[priority] = True
            fifo = self._fifo[priority]
            while fifo:
                entry = fifo.popleft()
                self._next_seq = seq = self._next_seq + 1
                heappush(heap, (0.0, seq) + entry)
        self._next_seq = seq = self._next_seq + 1
        heappush(heap, (rank, seq, size, on_done, abort))

    @property
    def queued_bytes(self) -> int:
        """Bytes waiting in the pipe (not counting any transfer in flight)."""
        total = 0 if self._kick_head is None else self._kick_head[0]
        for priority in _PRIORITY_ORDER:
            total += sum(entry[0] for entry in self._fifo[priority])
            total += sum(entry[2] for entry in self._heap[priority])
        return total

    @property
    def in_flight_bytes(self) -> int:
        """Size of the transfer currently being served (0 when idle).

        Telemetry sampling hook: together with :attr:`queued_bytes` this is
        the pipe's instantaneous backlog; reading it never mutates state.
        """
        return self._cur_size if self._cur_on_done is not None else 0

    def busy_time_at(self, now: float) -> float:
        """Cumulative service time as of ``now``, in-flight transfer included.

        :attr:`busy_time` only accrues when a transfer *completes*; a sampler
        reading it mid-transfer would see utilisation stuck at zero for the
        whole span and then a jump past 1.0 at completion.  This accessor
        adds the elapsed portion of the transfer in flight, so interval
        deltas are exact.  Read-only (telemetry sampling hook).
        """
        if self._cur_on_done is not None:
            return self.busy_time + (now - self._cur_start)
        return self.busy_time

    def _kick(self) -> None:
        head = self._kick_head
        assert head is not None
        self._kick_head = None
        size, on_done, abort, seq = head
        if abort is not None and abort():
            self.bytes_aborted += size
            self._drain()
            return
        if not self._serve(size, on_done, seq):
            self._drain()

    def _serve(self, size: int, on_done: _OnDone, seq: int | None = None) -> bool:
        """Start serving one transfer.  Returns False if it completed inline
        (zero duration), True if its completion was scheduled.  ``seq`` is the
        retired sequence slot of the kick that started this transfer, if any;
        reusing it keeps completion tie-breaking identical to a synchronous
        start."""
        sim = self._sim
        now = sim._now
        rate = self._rate
        if rate is not None:
            finish = now if rate == _INF else now + size / rate
        else:
            finish = self._trace.finish_time(now, size)
            if finish == _INF:
                raise RuntimeError(
                    "bandwidth trace never completes a transfer (zero trailing rate)"
                )
        self._busy = True
        if finish <= now:
            # Zero-duration transfer: complete inline in the current frame
            # (for a kick, that frame *is* the slot a synchronous completion
            # would have occupied) and count the semantic event.
            sim.count_inline_event()
            self.bytes_transferred += size
            on_done()
            return False
        self._cur_size = size
        self._cur_on_done = on_done
        self._cur_start = now
        if seq is None:
            sim.schedule_at(finish, self._drain_cb)
        else:
            sim.reschedule_at(finish, seq, self._drain_cb)
        return True

    def _drain(self) -> None:
        # The single hot function, scheduled as the in-flight transfer's
        # completion callback and also used by the kick paths (with no
        # transfer in flight) to start service.  One merged loop: finish the
        # completed transfer if any, pop the next serveable one (dropping
        # aborted entries), compute its finish time, and either schedule the
        # single completion callback or — for zero-duration transfers —
        # complete inline and keep draining, batching same-instant backlogs
        # without a scheduler round-trip per message.
        sim = self._sim
        on_done = self._cur_on_done
        if on_done is not None:
            # A transfer just finished: account for it and notify.
            self._cur_on_done = None
            self.bytes_transferred += self._cur_size
            self.busy_time += sim._now - self._cur_start
            on_done()
        rate = self._rate
        fifos = self._fifo
        heaps = self._heap
        # Claim the pipe for the whole drain so submissions made by inline
        # ``on_done`` callbacks (or abort predicates) enqueue instead of
        # stashing a second head; cleared again if the queues turn out empty.
        self._busy = True
        while True:
            size = -1
            for priority in _PRIORITY_ORDER:
                fifo = fifos[priority]
                while fifo:
                    entry = fifo.popleft()
                    abort = entry[2]
                    if abort is not None and abort():
                        self.bytes_aborted += entry[0]
                        continue
                    size = entry[0]
                    on_done = entry[1]
                    break
                if size >= 0:
                    break
                heap = heaps[priority]
                while heap:
                    entry = heappop(heap)
                    abort = entry[4]
                    if abort is not None and abort():
                        self.bytes_aborted += entry[2]
                        continue
                    size = entry[2]
                    on_done = entry[3]
                    break
                if size >= 0:
                    break
            if size < 0:
                self._busy = False
                return
            now = sim._now
            if rate is not None:
                finish = now if rate == _INF else now + size / rate
            else:
                finish = self._trace.finish_time(now, size)
                if finish == _INF:
                    raise RuntimeError(
                        "bandwidth trace never completes a transfer (zero trailing rate)"
                    )
            if finish > now:
                self._cur_size = size
                self._cur_on_done = on_done
                self._cur_start = now
                sim.schedule_at(finish, self._drain_cb)
                return
            # Zero-duration: complete inline and continue the drain.
            sim.count_inline_event()
            self.bytes_transferred += size
            on_done()
