"""A bandwidth-limited pipe with priority queueing.

Each simulated node owns two pipes: an egress pipe that all of its outgoing
messages pass through, and an ingress pipe for incoming messages.  A pipe
serves one message at a time at the instantaneous rate of its bandwidth
trace; when it becomes free, it picks the next message from the
highest-priority non-empty queue (dispersal-phase traffic before retrieval
traffic).  Within a priority class, queueing is FIFO except that retrieval
traffic can be sub-prioritised by a caller-supplied rank (the paper serves
the QUIC stream with the lowest epoch number first, S5).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.sim.bandwidth import BandwidthTrace
from repro.sim.events import Simulator
from repro.sim.messages import Priority


class Pipe:
    """Serialises byte transfers through a time-varying bandwidth limit."""

    def __init__(self, sim: Simulator, trace: BandwidthTrace):
        self._sim = sim
        self._trace = trace
        self._queues: dict[
            Priority,
            list[tuple[float, int, int, Callable[[], None], Callable[[], bool] | None]],
        ] = {priority: [] for priority in Priority}
        self._sequence = itertools.count()
        self._busy = False
        self.bytes_transferred = 0
        self.bytes_aborted = 0
        self.busy_time = 0.0

    def submit(
        self,
        size: int,
        priority: Priority,
        on_done: Callable[[], None],
        rank: float = 0.0,
        abort: Callable[[], bool] | None = None,
    ) -> None:
        """Enqueue a transfer of ``size`` bytes; call ``on_done`` when it drains.

        ``rank`` orders transfers within the same priority class (lower rank
        first); ties fall back to FIFO arrival order.  ``abort`` (if given) is
        evaluated when the transfer is about to start serving: if it returns
        True the transfer is dropped without consuming any bandwidth and
        ``on_done`` is never called — this models the paper's "stop sending
        chunks once the block is decodable" cancellation (S6.3).
        """
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size}")
        entry = (rank, next(self._sequence), size, on_done, abort)
        heapq.heappush(self._queues[priority], entry)
        if not self._busy:
            self._serve_next()

    @property
    def queued_bytes(self) -> int:
        """Bytes waiting in the pipe (not counting the transfer in flight)."""
        return sum(size for queue in self._queues.values() for _, _, size, _, _ in queue)

    def _serve_next(self) -> None:
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            while queue:
                _rank, _seq, size, on_done, abort = heapq.heappop(queue)
                if abort is not None and abort():
                    self.bytes_aborted += size
                    continue
                self._start_transfer(size, on_done)
                return
        self._busy = False

    def _start_transfer(self, size: int, on_done: Callable[[], None]) -> None:
        self._busy = True
        start = self._sim.now
        finish = self._trace.finish_time(start, size)
        if finish == float("inf"):
            raise RuntimeError(
                "bandwidth trace never completes a transfer (zero trailing rate)"
            )

        def complete() -> None:
            self.bytes_transferred += size
            self.busy_time += finish - start
            on_done()
            self._serve_next()

        self._sim.schedule_at(finish, complete)
