"""Host wall-time attribution for the simulator hot loop.

The event loop in :mod:`repro.sim.events` processes millions of callbacks
per run; when a perf PR asks "where does the time go?", this module is the
answer.  A :class:`SimProfiler` installed on ``Simulator.profiler`` makes
the loop time every callback with ``time.perf_counter()`` and bucket the
elapsed host seconds by **callback kind** — the qualified name of the
function or callable class behind the event, prefixed with whether it
arrived as a regular event or an internal (telemetry-style) callback.

The cost model is deliberately asymmetric: with a profiler installed every
dispatch pays two clock reads plus a name lookup (fine for a profiling
run); with it absent the simulator takes its normal fast loop and the only
overhead is one attribute read per ``run()`` call — effectively zero, which
the spans bench report (``benchmarks/bench_spans_report.py``) pins.

Aggregates serialise as ``repro-profile-v1`` JSON (:meth:`SimProfiler.as_dict`),
which ``trace flame`` can lower to a Chrome trace-event file.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.common.snapshot import SnapshotState

#: Serialisation format tag for profiler payloads.
PROFILE_FORMAT = "repro-profile-v1"


def callback_kind(callback: Callable[[], None]) -> str:
    """A stable, human-readable bucket name for one scheduled callback."""
    if isinstance(callback, functools.partial):
        target = callback.func
        return getattr(target, "__qualname__", type(target).__qualname__)
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return qualname
    return type(callback).__qualname__


class SimProfiler(SnapshotState):
    """Accumulates per-kind event counts and host seconds."""

    _SNAPSHOT_FIELDS = ("counts", "seconds")

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.seconds: dict[str, float] = {}

    def record(self, kind: str, elapsed: float) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.seconds[kind] = self.seconds.get(kind, 0.0) + elapsed

    def as_dict(self) -> dict[str, Any]:
        """The ``repro-profile-v1`` payload: kinds ranked by host seconds."""
        kinds = [
            {"kind": kind, "events": self.counts[kind], "seconds": self.seconds[kind]}
            for kind in sorted(
                self.counts, key=lambda name: (-self.seconds[name], name)
            )
        ]
        return {
            "format": PROFILE_FORMAT,
            "kinds": kinds,
            "total_events": sum(self.counts.values()),
            "total_seconds": sum(self.seconds.values()),
        }


__all__ = ["PROFILE_FORMAT", "SimProfiler", "callback_kind"]
