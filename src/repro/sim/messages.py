"""Message base types and traffic classes.

Every protocol message declares its wire size in bytes (charged against the
bandwidth pipes) and a traffic :class:`Priority`.  The paper sends
dispersal-phase traffic (chunks, GotChunk/Ready votes, binary agreement) on
an aggressive connection that wins against retrieval traffic at shared
bottlenecks (S4.5, S5); the simulator reproduces this with a strict
priority order inside each pipe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Priority(enum.IntEnum):
    """Traffic classes, lower value = served first."""

    #: Dispersal-phase traffic: chunks, VID votes, binary agreement messages.
    DISPERSAL = 0
    #: Block retrieval traffic (lazy downloads of committed blocks).
    RETRIEVAL = 1


#: Fixed per-message framing overhead in bytes (type tag, instance id, sender).
HEADER_SIZE = 24


@dataclass
class Message:
    """Base class for every protocol message.

    Subclasses set ``wire_size`` (total bytes on the wire, including the
    framing header) and may override ``priority``.
    """

    wire_size: int = field(default=HEADER_SIZE, kw_only=True)
    priority: Priority = field(default=Priority.DISPERSAL, kw_only=True)
