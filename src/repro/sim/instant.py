"""Instant-delivery message router for unit and property tests.

Protocol automata built for the discrete-event simulator also run here:
messages are appended to a queue and delivered by an explicit pump loop, so
tests can exercise arbitrary asynchronous schedules (FIFO, seeded random
interleavings, selective drops for Byzantine nodes) without any bandwidth
or latency modelling.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from repro.sim.messages import Message
from repro.sim.process import Process


class _InstantTimer:
    """Cancellable timer handle mirroring :class:`repro.sim.events.Event`."""

    __slots__ = ("when", "callback")

    def __init__(self, when: float, callback: Callable[[], None]):
        self.when = when
        self.callback = callback

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> bool:
        """Prevent the callback from running.  Returns True if it was pending."""
        if self.callback is None:
            return False
        self.callback = None
        return True


class InstantNetwork:
    """A zero-latency router with an explicit, controllable delivery loop."""

    def __init__(self, num_nodes: int, seed: int | None = None):
        self._num_nodes = num_nodes
        self._handlers: list[Process | None] = [None] * num_nodes
        self._pending: deque[tuple[int, int, Message]] = deque()
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._rng = random.Random(seed)
        self._random_order = seed is not None
        self._now = 0.0
        self._timer_sequence = 0
        #: Optional filter called for every message; return False to drop it.
        self.delivery_filter: Callable[[int, int, Message], bool] | None = None
        self.messages_delivered = 0

    # --- Router / Clock protocol ----------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def now(self) -> float:
        return self._now

    def send(
        self,
        src: int,
        dst: int,
        msg: Message,
        rank: float = 0.0,
        abort: Callable[[], bool] | None = None,
    ) -> None:
        # The instant router ignores cancellation: it has no bandwidth to
        # save, and delivering "unnecessary" chunks exercises more code paths
        # in the tests.
        self._pending.append((src, dst, msg))

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        self._timer_sequence += 1
        self._timers.append((self._now + delay, self._timer_sequence, callback))

    def schedule_event(self, delay: float, callback: Callable[[], None]) -> _InstantTimer:
        """Like :meth:`schedule`, but returns a cancellable timer handle."""
        timer = _InstantTimer(self._now + delay, callback)
        self._timer_sequence += 1
        self._timers.append((timer.when, self._timer_sequence, timer))
        return timer

    # --- test-facing API --------------------------------------------------

    def attach(self, node_id: int, handler: Process) -> None:
        self._handlers[node_id] = handler

    def start(self) -> None:
        for handler in self._handlers:
            if handler is not None:
                handler.start()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def deliver_one(self) -> bool:
        """Deliver a single pending message.  Returns False if none remain."""
        if not self._pending:
            return False
        if self._random_order and len(self._pending) > 1:
            index = self._rng.randrange(len(self._pending))
            self._pending.rotate(-index)
            src, dst, msg = self._pending.popleft()
            self._pending.rotate(index)
        else:
            src, dst, msg = self._pending.popleft()
        if self.delivery_filter is not None and not self.delivery_filter(src, dst, msg):
            return True
        handler = self._handlers[dst]
        if handler is not None:
            handler.on_message(src, msg)
            self.messages_delivered += 1
        return True

    def run(self, max_messages: int = 1_000_000) -> int:
        """Deliver messages (and fire due timers) until everything quiesces.

        Returns the number of messages delivered.  Raises if the message
        budget is exhausted, which usually indicates a protocol livelock.
        """
        delivered = 0
        while self._pending or self._timers:
            while self._pending:
                if delivered >= max_messages:
                    raise RuntimeError(
                        f"message budget of {max_messages} exhausted; possible livelock"
                    )
                self.deliver_one()
                delivered += 1
            if self._timers:
                self._timers.sort()
                when, _seq, item = self._timers.pop(0)
                if isinstance(item, _InstantTimer):
                    callback = item.callback
                    if callback is None:
                        continue  # lazily-deleted (cancelled) timer
                    item.callback = None
                else:
                    callback = item
                self._now = max(self._now, when)
                callback()
        return delivered
