"""Simulation checkpoints: the ``repro-ckpt-v1`` on-disk format.

A checkpoint captures a *running* experiment — the event queue with its
sequence counters and lazily-deleted slots, every pipe's in-flight
transfers, node protocol state, RNG streams, telemetry rows, and workload
cursors — such that restoring it in a fresh process and continuing produces
byte-identical summaries to the uninterrupted run.

Three layers live here:

* :class:`SnapshotState` (defined in :mod:`repro.common.snapshot`,
  re-exported here) — a mixin giving a stateful class an explicit
  ``snapshot_state()/restore_state()`` pair driven by a declared
  ``_SNAPSHOT_FIELDS`` tuple.  The pair is also wired into pickling
  (``__getstate__``/``__setstate__``), so one deep ``pickle`` of the
  experiment graph goes through the explicit, reviewed field lists; an
  attribute that is not declared raises :class:`SnapshotError` instead of
  silently leaking into (or dropping out of) the format.
* The envelope: :func:`write_snapshot_file` / :func:`read_snapshot_file`
  wrap a pickled payload in a one-line JSON header carrying the format
  version, a scenario fingerprint, and payload length + CRC, so truncated
  files, version skew, and foreign-scenario restores all fail with a typed
  :class:`SnapshotError` before any pickle byte is touched.
* :class:`SimulationState` + :class:`CheckpointTimer` — the container the
  experiment runner snapshots, and the uncounted-:class:`InternalCallback`
  timer that periodically writes it to disk without perturbing event counts.

Checkpoints are taken only at :class:`InternalCallback` boundaries, where
the run loop has synchronised its batched ``processed_events`` counter and
deferred heap compaction has settled — the queue is quiescent, so the
captured state is exactly what an uninterrupted run would carry forward.
"""

from __future__ import annotations

import gc
import json
import os
import pickle
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.errors import SnapshotError
from repro.common.snapshot import SnapshotState
from repro.sim.events import InternalCallback

__all__ = [
    "FORMAT_VERSION",
    "KIND_SIMULATION",
    "KIND_SWEEP_POINT",
    "SnapshotState",
    "SimulationState",
    "CheckpointTimer",
    "write_snapshot_file",
    "read_snapshot_header",
    "read_snapshot_file",
    "save_checkpoint",
    "load_checkpoint",
]

#: On-disk checkpoint format version.  Bump when the envelope or any
#: ``_SNAPSHOT_FIELDS`` list changes incompatibly.
FORMAT_VERSION = "repro-ckpt-v1"

#: ``kind`` header value for a full simulation checkpoint.
KIND_SIMULATION = "simulation"

#: ``kind`` header value for a completed sweep-point result journal entry.
KIND_SWEEP_POINT = "sweep-point"


# ---------------------------------------------------------------------------
# The envelope
# ---------------------------------------------------------------------------


@contextmanager
def _gc_paused():
    """Suspend the cyclic garbage collector around (un)pickling a large graph.

    A mid-run simulation state is millions of small objects; with the
    collector armed, the allocations made while pickling or unpickling keep
    re-triggering full generational scans of the graph being serialised,
    roughly doubling checkpoint save/load wall time.  Nothing inside a
    single ``pickle.dumps``/``loads`` call needs cycle collection, so pause
    the collector for its duration (and only restore it if it was running).
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def write_snapshot_file(
    path: str | Path,
    payload_obj: Any,
    *,
    kind: str,
    fingerprint: str,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Atomically write ``payload_obj`` to ``path`` in ``repro-ckpt-v1`` form.

    The file is a one-line JSON header (format version, ``kind``, scenario
    ``fingerprint``, payload length and CRC-32, plus ``extra`` metadata)
    followed by the raw pickle payload.  The write goes to a temporary file
    in the same directory and is renamed into place, so a crash mid-write
    never leaves a truncated file under the final name.
    """
    path = Path(path)
    with _gc_paused():
        payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "format": FORMAT_VERSION,
        "kind": kind,
        "fingerprint": fingerprint,
        "payload_bytes": len(payload),
        "payload_crc32": zlib.crc32(payload),
    }
    if extra:
        header.update(extra)
    blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return path


def read_snapshot_header(path: str | Path) -> dict[str, Any]:
    """Parse and validate only the JSON header of a snapshot file."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read checkpoint {path}: {exc}") from None
    newline = blob.find(b"\n")
    if newline < 0:
        raise SnapshotError(f"{path} is not a {FORMAT_VERSION} checkpoint (no header)")
    try:
        header = json.loads(blob[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise SnapshotError(
            f"{path} is not a {FORMAT_VERSION} checkpoint (unparseable header)"
        ) from None
    if not isinstance(header, dict) or "format" not in header:
        raise SnapshotError(
            f"{path} is not a {FORMAT_VERSION} checkpoint (missing format field)"
        )
    version = header["format"]
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"{path} has checkpoint format {version!r}; this build reads "
            f"{FORMAT_VERSION!r}"
        )
    return header


def read_snapshot_file(
    path: str | Path,
    *,
    kind: str | None = None,
    expect_fingerprint: str | None = None,
) -> tuple[dict[str, Any], Any]:
    """Read, validate, and unpickle a snapshot file.

    Raises :class:`SnapshotError` for a missing/unparseable header, a format
    version mismatch, a truncated or corrupted payload, the wrong ``kind``,
    or — when ``expect_fingerprint`` is given — a checkpoint written by a
    different scenario.
    """
    path = Path(path)
    header = read_snapshot_header(path)
    blob = path.read_bytes()
    payload = blob[blob.find(b"\n") + 1 :]
    declared = header.get("payload_bytes")
    if not isinstance(declared, int) or len(payload) != declared:
        raise SnapshotError(
            f"{path} is truncated: header declares {declared} payload bytes, "
            f"found {len(payload)}"
        )
    if zlib.crc32(payload) != header.get("payload_crc32"):
        raise SnapshotError(f"{path} is corrupted: payload checksum mismatch")
    if kind is not None and header.get("kind") != kind:
        raise SnapshotError(
            f"{path} holds a {header.get('kind')!r} snapshot, expected {kind!r}"
        )
    if expect_fingerprint is not None and header.get("fingerprint") != expect_fingerprint:
        raise SnapshotError(
            f"{path} was written by a different scenario (fingerprint "
            f"{header.get('fingerprint')!r}, expected {expect_fingerprint!r}); "
            "refusing a foreign-scenario restore"
        )
    try:
        with _gc_paused():
            obj = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(f"cannot unpickle checkpoint {path}: {exc}") from None
    return header, obj


# ---------------------------------------------------------------------------
# The experiment-level state container and the auto-checkpoint timer
# ---------------------------------------------------------------------------


@dataclass
class SimulationState:
    """Everything a running experiment needs to continue after a restore.

    Built by the experiment runner's build phase and consumed by its run and
    summarise phases, so a fresh run and a restored checkpoint follow exactly
    the same code path.  Fields are deliberately loosely typed: this module
    sits below ``repro.experiments`` in the layering.
    """

    fingerprint: str
    protocol: str
    duration: float
    warmup: float
    seed: int
    sim: Any
    network: Any
    collector: Any
    nodes: list[Any]
    generators: list[Any]
    recorder: Any = None
    adversary: Any = None
    placement: tuple[int, ...] = ()
    #: Optional :class:`repro.trace.spans.SpanRecorder` riding the checkpoint
    #: (the deep pickle keeps it the same object the probes reference).
    spans: Any = None
    #: Scenario-level metadata (spec dict + overrides) carried through the
    #: checkpoint so ``repro.experiments resume`` can rebuild a summary.
    meta: dict[str, Any] = field(default_factory=dict)


def save_checkpoint(path: str | Path, state: SimulationState) -> Path:
    """Write ``state`` as a ``repro-ckpt-v1`` simulation checkpoint."""
    return write_snapshot_file(
        path,
        state,
        kind=KIND_SIMULATION,
        fingerprint=state.fingerprint,
        extra={
            "virtual_time": state.sim.now,
            "events_processed": state.sim.processed_events,
            "protocol": state.protocol,
            "duration": state.duration,
        },
    )


def load_checkpoint(
    path: str | Path, *, expect_fingerprint: str | None = None
) -> SimulationState:
    """Load a simulation checkpoint written by :func:`save_checkpoint`."""
    _header, state = read_snapshot_file(
        path, kind=KIND_SIMULATION, expect_fingerprint=expect_fingerprint
    )
    if not isinstance(state, SimulationState):
        raise SnapshotError(
            f"{path} does not contain a SimulationState payload"
        )
    return state


class CheckpointTimer:
    """Periodic auto-checkpointing via an uncounted :class:`InternalCallback`.

    Each firing captures the state *after* its own queue entry has been
    popped (so the snapshot never contains the timer), writes the checkpoint
    file, then re-arms.  Internal callbacks are excluded from event
    accounting and consume sequence numbers monotonically, so enabling
    checkpointing changes neither event counts nor the relative order of any
    two scheduled events — summaries stay byte-identical with checkpointing
    on or off, and across a resume.
    """

    def __init__(self, state: SimulationState, path: str | Path, every: float):
        if every <= 0:
            raise SnapshotError(f"checkpoint_every must be positive, got {every}")
        self._state = state
        self._path = Path(path)
        self._every = every
        self._tick = InternalCallback(self._fire)
        self.checkpoints_written = 0

    def arm(self) -> None:
        """Schedule the first checkpoint ``every`` seconds from now."""
        self._state.sim.schedule_internal(self._every, self._tick)

    def _fire(self) -> None:
        save_checkpoint(self._path, self._state)
        self.checkpoints_written += 1
        self._state.sim.schedule_internal(self._every, self._tick)
