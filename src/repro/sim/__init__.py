"""Discrete-event wide-area network simulator.

This package replaces the paper's AWS/Vultr testbeds and Mahimahi emulation
(S6.1).  Protocol automata exchange messages through a :class:`Network`
whose per-node ingress and egress pipes enforce time-varying bandwidth
limits and whose links add propagation delay.  Dispersal-phase traffic is
given strict priority over retrieval traffic, mirroring the MulTcp-style
prioritisation of the paper's implementation (S5).

Two drivers are provided:

* :class:`Simulator` + :class:`Network` — the bandwidth-accurate
  discrete-event engine used by every experiment.
* :class:`repro.sim.instant.InstantNetwork` — an instant-delivery router
  used by unit and property tests to exercise protocol logic (including
  adversarial message orderings) without bandwidth modelling.
"""

from repro.sim.bandwidth import BandwidthTrace, ConstantBandwidth, PiecewiseConstantBandwidth
from repro.sim.context import NodeContext
from repro.sim.events import Simulator
from repro.sim.messages import Message, Priority
from repro.sim.network import Network, NetworkConfig, TrafficStats
from repro.sim.process import Process

__all__ = [
    "BandwidthTrace",
    "ConstantBandwidth",
    "Message",
    "Network",
    "NetworkConfig",
    "NodeContext",
    "PiecewiseConstantBandwidth",
    "Priority",
    "Process",
    "Simulator",
    "TrafficStats",
]
