"""The interface every simulated node implements."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.sim.messages import Message


@runtime_checkable
class Process(Protocol):
    """A protocol automaton attached to one simulated node."""

    def start(self) -> None:
        """Called once when the simulation begins."""
        ...

    def on_message(self, src: int, msg: Message) -> None:
        """Called when a message from node ``src`` is delivered to this node."""
        ...
