"""Time-varying bandwidth traces for the simulated pipes.

The paper throttles each node's ingress and egress independently, either to
a constant (spatial-variation experiment, S6.3), or following a
Gauss-Markov process sampled every second (temporal-variation experiment).
Traces here are piecewise-constant rate functions; the pipe integrates them
exactly to find when a transfer finishes.
"""

from __future__ import annotations

import bisect
import math
from typing import Protocol, Sequence


class BandwidthTrace(Protocol):
    """A piecewise-constant rate function in bytes per second."""

    def rate_at(self, time: float) -> float:
        """Instantaneous rate at ``time`` (bytes/second)."""
        ...

    def finish_time(self, start: float, size: int) -> float:
        """Earliest time at which ``size`` bytes complete if started at ``start``."""
        ...


class ConstantBandwidth:
    """A trace with a single constant rate (or unlimited if ``rate`` is None)."""

    def __init__(self, rate: float | None):
        if rate is not None and rate <= 0:
            raise ValueError(f"bandwidth must be positive, got {rate}")
        self._rate = rate

    @property
    def rate(self) -> float | None:
        """The constant rate in bytes/second (None means unlimited).

        Exposed so the pipe can detect constant traces once at construction
        and compute finish times arithmetically instead of integrating.
        """
        return self._rate

    def rate_at(self, time: float) -> float:
        return math.inf if self._rate is None else self._rate

    def finish_time(self, start: float, size: int) -> float:
        if self._rate is None:
            return start
        return start + size / self._rate


class PiecewiseConstantBandwidth:
    """A trace defined by breakpoints ``[(t0, r0), (t1, r1), ...]``.

    The rate is ``r_i`` on ``[t_i, t_{i+1})`` and ``r_last`` after the final
    breakpoint.  Rates of zero are allowed (the transfer simply waits).
    """

    def __init__(self, breakpoints: Sequence[tuple[float, float]]):
        if not breakpoints:
            raise ValueError("need at least one breakpoint")
        times = [t for t, _ in breakpoints]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("breakpoint times must be strictly increasing")
        if any(rate < 0 for _, rate in breakpoints):
            raise ValueError("rates must be non-negative")
        self._times = times
        self._rates = [r for _, r in breakpoints]

    def rate_at(self, time: float) -> float:
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            index = 0
        return self._rates[index]

    def finish_time(self, start: float, size: int) -> float:
        remaining = float(size)
        if remaining <= 0:
            return start
        index = bisect.bisect_right(self._times, start) - 1
        if index < 0:
            index = 0
        current = max(start, self._times[0])
        while True:
            rate = self._rates[index]
            if index + 1 < len(self._times):
                segment_end = self._times[index + 1]
                if rate > 0:
                    needed = remaining / rate
                    if current + needed <= segment_end:
                        return current + needed
                    remaining -= rate * (segment_end - current)
                current = segment_end
                index += 1
            else:
                if rate <= 0:
                    # No more breakpoints and zero rate: the transfer never
                    # finishes.  Return infinity so callers can detect it.
                    return math.inf
                return current + remaining / rate
