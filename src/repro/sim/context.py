"""Node-local handle that protocol automata use to talk to the outside world.

A :class:`NodeContext` hides whether the automaton is running on the
bandwidth-accurate :class:`repro.sim.network.Network` or on the instant
in-memory router used by tests — the protocol code is identical in both
cases, mirroring the paper's nested IO-automata structure (S5).
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.common.snapshot import SnapshotState
from repro.sim.events import Event
from repro.sim.messages import Message


class Router(Protocol):
    """Anything that can carry a message from one node to another."""

    @property
    def num_nodes(self) -> int: ...

    def send(
        self,
        src: int,
        dst: int,
        msg: Message,
        rank: float = 0.0,
        abort: Callable[[], bool] | None = None,
    ) -> None: ...


class Clock(Protocol):
    """Anything that can tell time and schedule callbacks.

    ``schedule_event`` (returning a cancellable handle) is optional: clocks
    that lack it still work, at the price of non-cancellable timers.
    """

    @property
    def now(self) -> float: ...

    def schedule(self, delay: float, callback: Callable[[], None]) -> None: ...


class NodeContext(SnapshotState):
    """The sending/timing interface handed to every protocol automaton."""

    _SNAPSHOT_FIELDS = ("node_id", "_router", "_clock")

    def __init__(self, node_id: int, router: Router, clock: Clock):
        self.node_id = node_id
        self._router = router
        self._clock = clock

    @property
    def num_nodes(self) -> int:
        return self._router.num_nodes

    @property
    def now(self) -> float:
        return self._clock.now

    def send(
        self,
        dst: int,
        msg: Message,
        rank: float = 0.0,
        abort: Callable[[], bool] | None = None,
    ) -> None:
        """Send ``msg`` to node ``dst``.

        ``abort`` lets bandwidth-accurate routers drop the transfer before it
        consumes bandwidth if it is no longer needed (chunk cancellation).
        """
        self._router.send(self.node_id, dst, msg, rank, abort)

    def broadcast(self, msg: Message, include_self: bool = True, rank: float = 0.0) -> None:
        """Send ``msg`` to every node (including ourselves unless disabled).

        The paper's pseudocode has servers send broadcast messages to
        themselves as well (Fig. 3 caption), which this mirrors.  Routers
        that implement a native ``broadcast`` (the bandwidth-accurate
        network, including its express fan-out fast path) receive the whole
        broadcast in one call; anything else gets the plain send loop.
        """
        router = self._router
        node_id = self.node_id
        native = getattr(router, "broadcast", None)
        if native is not None:
            native(node_id, msg, include_self=include_self, rank=rank)
            return
        for dst in range(router.num_nodes):
            if dst == node_id and not include_self:
                continue
            router.send(node_id, dst, msg, rank)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Event | None:
        """Run ``callback`` after ``delay`` seconds of virtual time.

        Returns a cancellable :class:`~repro.sim.events.Event` handle when the
        underlying clock supports one (the discrete-event simulator and the
        instant router both do), else None.  Cancelling a timer that already
        fired is a no-op, so callers may cancel unconditionally.
        """
        schedule_event = getattr(self._clock, "schedule_event", None)
        if schedule_event is not None:
            return schedule_event(delay, callback)
        self._clock.schedule(delay, callback)
        return None
