"""Render recorded telemetry to PNG/SVG charts with no plotting stack.

The telemetry JSONL written by :mod:`repro.trace.recorder` is the run as it
unfolded; this module turns it into the three pictures a person actually
looks at:

* **queue-depth heatmaps** — one pixel row per node, one column per sample
  tick, colour mapped to queued + in-flight bytes (PNG);
* **utilisation-vs-commit overlays** — per-node link-utilisation curves
  with the cluster mean emphasised and every epoch commit marked on the
  time axis (SVG);
* **epoch-frontier progress curves** — each node's delivered-epoch frontier
  against virtual time, the Fig. 9 shape, straight from telemetry (SVG).

The pinned container and the CI boxes carry numpy but no matplotlib, so the
renderers write both formats directly: PNGs through a minimal encoder
(stdlib ``zlib``/``struct``, 8-bit RGB, filter 0) and SVGs as hand-assembled
markup.  Everything is deterministic — the same JSONL renders byte-identical
files, so plots can be diffed like any other artifact.

Colour is assigned by job, not taste: heatmaps use a single-hue sequential
ramp (light = near zero, dark = deep queues), per-node curves take a fixed
eight-slot categorical order chosen for colour-vision-deficiency separation,
and nodes past the eighth fold into a muted neutral instead of cycling hues.
Text and grid stay in recessive inks so the data carries the chart.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.common.errors import TraceError

#: Sample-row series that can be rendered as a heatmap (value semantics:
#: instantaneous snapshots, bytes or fractions — anything non-negative).
HEATMAP_SERIES = (
    "egress_queue",
    "ingress_queue",
    "egress_util",
    "ingress_util",
)

#: Sequential one-hue ramp (light -> dark blue): near-zero recedes toward
#: the surface, deep values read as ink.  Interpolated linearly in RGB.
_SEQUENTIAL_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: Fixed categorical slot order for per-node curves (identity encoding).
#: The order is the colour-vision-safety mechanism — never cycled: nodes
#: past the eighth fold into the muted neutral below.
_CATEGORICAL = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
_FOLDED = "#b0afa9"  # nodes 8+ (identity folded to "other")

_SURFACE = "#fcfcfb"
_TEXT = "#0b0b0b"
_TEXT_MUTED = "#52514e"
_GRID = "#e7e6e2"
_AXIS = "#b0afa9"


# --------------------------------------------------------------------------
# Telemetry -> arrays


@dataclass
class TelemetryFrame:
    """Sample rows reshaped onto a (node x tick) grid, plus commit times.

    ``series[name]`` is a float matrix with one row per node and one column
    per grid tick; a node missing a tick carries its previous value forward
    (telemetry grids are uniform in practice, so this is a robustness
    affordance, not a resampler).
    """

    times: np.ndarray
    nodes: tuple[int, ...]
    series: dict[str, np.ndarray]
    commits: tuple[tuple[float, int, int], ...]  # (t, node, epoch)
    #: ``(t, latency)`` for commit rows that carry a per-epoch latency
    #: (recorder-written streams do; hand-rolled rows may not).
    commit_latencies: tuple[tuple[float, float], ...] = ()
    meta: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return float(self.times[-1]) if self.times.size else 0.0


def build_frame(rows: Iterable[Mapping[str, Any]]) -> TelemetryFrame:
    """Reshape telemetry rows (as from ``read_jsonl``) into a frame.

    Raises:
        TraceError: if the rows contain no ``sample`` rows (recording off,
            or the file is not a telemetry stream).
    """
    meta: Mapping[str, Any] = {}
    samples: list[Mapping[str, Any]] = []
    commits: list[tuple[float, int, int]] = []
    commit_latencies: list[tuple[float, float]] = []
    for row in rows:
        kind = row.get("kind")
        if kind == "meta" and not meta:
            meta = row
        elif kind == "sample":
            samples.append(row)
        elif kind == "commit":
            commits.append((float(row["t"]), int(row["node"]), int(row["epoch"])))
            if "latency" in row:
                commit_latencies.append((float(row["t"]), float(row["latency"])))
    if not samples:
        raise TraceError("no sample rows in telemetry (was recording enabled?)")

    times = np.asarray(sorted({float(row["t"]) for row in samples}), dtype=np.float64)
    index = {t: i for i, t in enumerate(times.tolist())}
    nodes = tuple(sorted({int(row["node"]) for row in samples}))
    node_index = {node: i for i, node in enumerate(nodes)}

    names = [name for name in HEATMAP_SERIES if any(name in row for row in samples)]
    for extra in ("delivered_epoch", "current_epoch"):
        if any(extra in row for row in samples):
            names.append(extra)
    series = {name: np.zeros((len(nodes), times.size)) for name in names}
    seen = {name: np.zeros((len(nodes), times.size), dtype=bool) for name in names}
    for row in samples:
        i = node_index[int(row["node"])]
        j = index[float(row["t"])]
        for name in names:
            if name in row:
                series[name][i, j] = float(row[name])
                seen[name][i, j] = True
    # Forward-fill ticks a node never reported (irregular or truncated grids).
    for name in names:
        matrix, present = series[name], seen[name]
        for j in range(1, times.size):
            missing = ~present[:, j]
            matrix[missing, j] = matrix[missing, j - 1]
    return TelemetryFrame(
        times=times,
        nodes=nodes,
        series=series,
        commits=tuple(sorted(commits)),
        commit_latencies=tuple(sorted(commit_latencies)),
        meta=meta,
    )


# --------------------------------------------------------------------------
# PNG encoding (no imaging library: 8-bit RGB, filter 0, one IDAT)


def write_png(path: str | Path, pixels: np.ndarray) -> Path:
    """Write an ``(H, W, 3)`` uint8 array as a PNG file."""
    pixels = np.ascontiguousarray(pixels, dtype=np.uint8)
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise ValueError(f"expected an (H, W, 3) array, got {pixels.shape}")
    height, width, _ = pixels.shape
    # Every scanline is prefixed with filter type 0 (None).
    raw = (
        np.concatenate([np.zeros((height, 1), dtype=np.uint8),
                        pixels.reshape(height, width * 3)], axis=1)
        .tobytes()
    )

    def chunk(tag: bytes, data: bytes) -> bytes:
        return (
            struct.pack(">I", len(data))
            + tag
            + data
            + struct.pack(">I", zlib.crc32(tag + data) & 0xFFFFFFFF)
        )

    header = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    payload = (
        b"\x89PNG\r\n\x1a\n"
        + chunk(b"IHDR", header)
        + chunk(b"IDAT", zlib.compress(raw, 6))
        + chunk(b"IEND", b"")
    )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(payload)
    return target


def _hex_rgb(colour: str) -> tuple[int, int, int]:
    return int(colour[1:3], 16), int(colour[3:5], 16), int(colour[5:7], 16)


def sequential_colormap(values: np.ndarray) -> np.ndarray:
    """Map values in ``[0, 1]`` onto the sequential ramp; returns uint8 RGB."""
    anchors = np.asarray([_hex_rgb(c) for c in _SEQUENTIAL_RAMP], dtype=np.float64)
    clipped = np.clip(values, 0.0, 1.0)
    position = clipped * (len(anchors) - 1)
    low = np.floor(position).astype(int)
    high = np.minimum(low + 1, len(anchors) - 1)
    frac = (position - low)[..., None]
    rgb = anchors[low] * (1.0 - frac) + anchors[high] * frac
    return np.round(rgb).astype(np.uint8)


def heatmap_pixels(
    matrix: np.ndarray, *, max_width: int = 1024, max_height: int = 512
) -> np.ndarray:
    """Upscale a (node x tick) value matrix to RGB pixels.

    Values are normalised by the matrix maximum (an all-zero matrix renders
    as the ramp's near-surface end), each cell becomes an integer pixel
    block sized to fit the bounds, and a 1-px surface gap separates node
    rows so adjacent nodes never read as one band.
    """
    peak = float(matrix.max())
    normalised = matrix / peak if peak > 0 else np.zeros_like(matrix)
    rgb = sequential_colormap(normalised)
    n_nodes, n_ticks = matrix.shape
    cell_w = max(2, min(16, max_width // max(1, n_ticks)))
    cell_h = max(4, min(24, max_height // max(1, n_nodes)))
    scaled = np.repeat(np.repeat(rgb, cell_h, axis=0), cell_w, axis=1)
    surface = np.asarray(_hex_rgb(_SURFACE), dtype=np.uint8)
    for i in range(1, n_nodes):
        scaled[i * cell_h, :, :] = surface
    return scaled


def render_heatmap(frame: TelemetryFrame, series: str, out: str | Path) -> Path:
    """Render one series' per-node heatmap (nodes top-to-bottom) as PNG."""
    if series not in frame.series:
        raise TraceError(
            f"telemetry has no {series!r} series (available: "
            f"{', '.join(sorted(frame.series))})"
        )
    return write_png(out, heatmap_pixels(frame.series[series]))


# --------------------------------------------------------------------------
# SVG line charts


def _nice_ticks(low: float, high: float, target: int = 5) -> list[float]:
    """A small 'nice numbers' axis: steps of 1/2/5 x 10^k covering the span."""
    span = high - low
    if span <= 0:
        return [low]
    raw = span / max(1, target)
    magnitude = 10.0 ** np.floor(np.log10(raw))
    for factor in (1.0, 2.0, 5.0, 10.0):
        step = factor * magnitude
        if span / step <= target:
            break
    first = np.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-9 * span:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _fmt(value: float) -> str:
    """Compact numeric formatting for SVG coordinates and labels."""
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _si(value: float) -> str:
    """Human axis labels: 1500000 -> '1.5M'."""
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return f"{value / factor:g}{suffix}"
    return f"{value:g}"


def _node_colour(position: int) -> str:
    return _CATEGORICAL[position] if position < len(_CATEGORICAL) else _FOLDED


class _SvgCanvas:
    """A tiny SVG assembler: one fixed plot area, helpers for marks."""

    WIDTH, HEIGHT = 760, 420
    LEFT, RIGHT, TOP, BOTTOM = 64, 150, 48, 44

    def __init__(self, title: str, subtitle: str):
        self.parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.WIDTH}" '
            f'height="{self.HEIGHT}" viewBox="0 0 {self.WIDTH} {self.HEIGHT}" '
            f'font-family="system-ui, sans-serif">',
            f'<rect width="{self.WIDTH}" height="{self.HEIGHT}" fill="{_SURFACE}"/>',
            f'<text x="{self.LEFT}" y="22" font-size="15" font-weight="600" '
            f'fill="{_TEXT}">{title}</text>',
            f'<text x="{self.LEFT}" y="38" font-size="11" '
            f'fill="{_TEXT_MUTED}">{subtitle}</text>',
        ]
        self.plot_w = self.WIDTH - self.LEFT - self.RIGHT
        self.plot_h = self.HEIGHT - self.TOP - self.BOTTOM
        self.x_span = (0.0, 1.0)
        self.y_span = (0.0, 1.0)

    def set_spans(self, x: tuple[float, float], y: tuple[float, float]) -> None:
        self.x_span = (x[0], x[1] if x[1] > x[0] else x[0] + 1.0)
        self.y_span = (y[0], y[1] if y[1] > y[0] else y[0] + 1.0)

    def px(self, x: float) -> float:
        lo, hi = self.x_span
        return self.LEFT + (x - lo) / (hi - lo) * self.plot_w

    def py(self, y: float) -> float:
        lo, hi = self.y_span
        return self.TOP + self.plot_h - (y - lo) / (hi - lo) * self.plot_h

    def axes(self, x_label: str, y_label: str, y_format=_fmt) -> None:
        bottom = self.TOP + self.plot_h
        for tick in _nice_ticks(*self.y_span):
            y = self.py(tick)
            self.parts.append(
                f'<line x1="{self.LEFT}" y1="{_fmt(y)}" '
                f'x2="{self.LEFT + self.plot_w}" y2="{_fmt(y)}" '
                f'stroke="{_GRID}" stroke-width="1"/>'
            )
            self.parts.append(
                f'<text x="{self.LEFT - 8}" y="{_fmt(y + 3.5)}" font-size="10" '
                f'text-anchor="end" fill="{_TEXT_MUTED}">{y_format(tick)}</text>'
            )
        for tick in _nice_ticks(*self.x_span, target=7):
            x = self.px(tick)
            self.parts.append(
                f'<line x1="{_fmt(x)}" y1="{bottom}" x2="{_fmt(x)}" '
                f'y2="{bottom + 4}" stroke="{_AXIS}" stroke-width="1"/>'
            )
            self.parts.append(
                f'<text x="{_fmt(x)}" y="{bottom + 16}" font-size="10" '
                f'text-anchor="middle" fill="{_TEXT_MUTED}">{_fmt(tick)}</text>'
            )
        self.parts.append(
            f'<line x1="{self.LEFT}" y1="{bottom}" '
            f'x2="{self.LEFT + self.plot_w}" y2="{bottom}" '
            f'stroke="{_AXIS}" stroke-width="1"/>'
        )
        self.parts.append(
            f'<text x="{self.LEFT + self.plot_w / 2}" y="{self.HEIGHT - 8}" '
            f'font-size="11" text-anchor="middle" fill="{_TEXT_MUTED}">{x_label}</text>'
        )
        self.parts.append(
            f'<text x="16" y="{self.TOP + self.plot_h / 2}" font-size="11" '
            f'fill="{_TEXT_MUTED}" text-anchor="middle" '
            f'transform="rotate(-90 16 {self.TOP + self.plot_h / 2})">{y_label}</text>'
        )

    def polyline(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        colour: str,
        width: float = 1.5,
        opacity: float = 1.0,
        step: bool = False,
    ) -> None:
        points: list[str] = []
        last_y: float | None = None
        for x, y in zip(xs, ys):
            if step and last_y is not None:
                points.append(f"{_fmt(self.px(x))},{_fmt(self.py(last_y))}")
            points.append(f"{_fmt(self.px(x))},{_fmt(self.py(y))}")
            last_y = y
        self.parts.append(
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="{colour}" stroke-width="{width}" stroke-opacity="{opacity}" '
            f'stroke-linejoin="round"/>'
        )

    def commit_marks(self, times: Sequence[float]) -> None:
        """Epoch commits as short ticks hanging from the top of the plot."""
        for t in times:
            x = _fmt(self.px(t))
            self.parts.append(
                f'<line x1="{x}" y1="{self.TOP}" x2="{x}" y2="{self.TOP + 8}" '
                f'stroke="{_TEXT_MUTED}" stroke-width="1" stroke-opacity="0.65"/>'
            )

    def legend(self, entries: Sequence[tuple[str, str, float]]) -> None:
        """(label, colour, line-width) rows down the right margin."""
        x = self.LEFT + self.plot_w + 14
        y = self.TOP + 4
        for label, colour, width in entries:
            self.parts.append(
                f'<line x1="{x}" y1="{y}" x2="{x + 18}" y2="{y}" '
                f'stroke="{colour}" stroke-width="{width}"/>'
            )
            self.parts.append(
                f'<text x="{x + 24}" y="{y + 3.5}" font-size="10" '
                f'fill="{_TEXT}">{label}</text>'
            )
            y += 16

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.parts) + "\n</svg>\n", encoding="utf-8")
        return target


def _legend_entries(frame: TelemetryFrame) -> list[tuple[str, str, float]]:
    entries = [
        (f"node {node}", _node_colour(i), 1.5)
        for i, node in enumerate(frame.nodes[: len(_CATEGORICAL)])
    ]
    if len(frame.nodes) > len(_CATEGORICAL):
        entries.append((f"nodes {frame.nodes[len(_CATEGORICAL)]}+", _FOLDED, 1.5))
    return entries


def render_utilisation(frame: TelemetryFrame, out: str | Path, side: str = "egress") -> Path:
    """Per-node link utilisation over time, commits overlaid on the top edge."""
    name = f"{side}_util"
    if name not in frame.series:
        raise TraceError(f"telemetry has no {name!r} series")
    matrix = frame.series[name]
    canvas = _SvgCanvas(
        f"Link utilisation ({side})",
        f"{len(frame.nodes)} node(s), {frame.duration:g} s virtual; "
        f"ticks at the top mark epoch commits",
    )
    canvas.set_spans((0.0, frame.duration), (0.0, 1.0))
    canvas.axes("virtual time (s)", "busy fraction per interval")
    for i in range(len(frame.nodes)):
        canvas.polyline(frame.times, matrix[i], _node_colour(i), 1.5, 0.85)
    canvas.polyline(frame.times, matrix.mean(axis=0), _TEXT, 2.5)
    canvas.commit_marks([t for t, _, _ in frame.commits])
    canvas.legend([("cluster mean", _TEXT, 2.5), *_legend_entries(frame)])
    return canvas.save(out)


def render_commit_overlay(
    frame: TelemetryFrame, out: str | Path, side: str = "egress"
) -> Path:
    """Cluster-mean utilisation with commit latencies lowered onto the grid.

    One chart, one question: *does commit latency track link pressure?*  The
    mean busy fraction is drawn against the left axis; every commit row that
    carries a latency becomes a dot, snapped to the nearest sample tick so
    the two populations share the recorder's time grid, scaled against a
    right-hand latency axis.

    Raises:
        TraceError: if the utilisation series is missing, or no commit row
            carries a ``latency`` field (hand-rolled streams may not).
    """
    name = f"{side}_util"
    if name not in frame.series:
        raise TraceError(f"telemetry has no {name!r} series")
    if not frame.commit_latencies:
        raise TraceError(
            "no commit row carries a latency (recorder-written telemetry does)"
        )
    mean = frame.series[name].mean(axis=0)
    canvas = _SvgCanvas(
        f"Utilisation vs commit latency ({side})",
        f"{len(frame.nodes)} node(s), {frame.duration:g} s virtual; dots are "
        f"epoch commits on the sample grid, read against the right axis",
    )
    canvas.set_spans((0.0, frame.duration), (0.0, 1.0))
    canvas.axes("virtual time (s)", "mean busy fraction per interval")
    canvas.polyline(frame.times, mean, _TEXT, 2.5)

    # Right-hand latency axis: nice ticks over [0, max latency], rendered by
    # reusing the unit y-span (latency / top maps onto the busy-fraction
    # scale, so dots and ticks agree by construction).
    lat_max = max(lat for _, lat in frame.commit_latencies)
    ticks = _nice_ticks(0.0, lat_max if lat_max > 0 else 1.0)
    top = max(ticks[-1], lat_max) if ticks[-1] > 0 else 1.0
    right = canvas.LEFT + canvas.plot_w
    for tick in ticks:
        y = canvas.py(tick / top)
        canvas.parts.append(
            f'<line x1="{right}" y1="{_fmt(y)}" x2="{right + 4}" y2="{_fmt(y)}" '
            f'stroke="{_AXIS}" stroke-width="1"/>'
        )
        canvas.parts.append(
            f'<text x="{right + 7}" y="{_fmt(y + 3.5)}" font-size="10" '
            f'fill="{_TEXT_MUTED}">{_fmt(tick)}</text>'
        )
    accent = _CATEGORICAL[1]
    for t, lat in frame.commit_latencies:
        snapped = float(frame.times[int(np.argmin(np.abs(frame.times - t)))])
        canvas.parts.append(
            f'<circle cx="{_fmt(canvas.px(snapped))}" '
            f'cy="{_fmt(canvas.py(lat / top))}" r="3.5" '
            f'fill="{accent}" fill-opacity="0.85"/>'
        )
    canvas.commit_marks([t for t, _, _ in frame.commits])
    canvas.legend(
        [("mean utilisation", _TEXT, 2.5), ("commit latency (s)", accent, 3.5)]
    )
    return canvas.save(out)


def render_progress(frame: TelemetryFrame, out: str | Path) -> Path:
    """Delivered-epoch frontiers over time (the Fig. 9 progress shape)."""
    if "delivered_epoch" not in frame.series:
        raise TraceError("telemetry has no 'delivered_epoch' series")
    matrix = frame.series["delivered_epoch"]
    canvas = _SvgCanvas(
        "Epoch-frontier progress",
        f"delivered-epoch frontier per node over {frame.duration:g} s virtual",
    )
    canvas.set_spans((0.0, frame.duration), (0.0, max(1.0, float(matrix.max()))))
    canvas.axes("virtual time (s)", "delivered epoch")
    for i in range(len(frame.nodes)):
        canvas.polyline(frame.times, matrix[i], _node_colour(i), 1.5, 0.9, step=True)
    canvas.legend(_legend_entries(frame))
    return canvas.save(out)


def render_queue_curves(frame: TelemetryFrame, out: str | Path, side: str = "egress") -> Path:
    """Per-node queue depth over time (the heatmap's line-chart companion)."""
    name = f"{side}_queue"
    if name not in frame.series:
        raise TraceError(f"telemetry has no {name!r} series")
    matrix = frame.series[name]
    canvas = _SvgCanvas(
        f"Queue depth ({side})",
        f"queued + in-flight bytes per node over {frame.duration:g} s virtual",
    )
    canvas.set_spans((0.0, frame.duration), (0.0, max(1.0, float(matrix.max()))))
    canvas.axes("virtual time (s)", "bytes", y_format=_si)
    for i in range(len(frame.nodes)):
        canvas.polyline(frame.times, matrix[i], _node_colour(i), 1.5, 0.85)
    canvas.legend(_legend_entries(frame))
    return canvas.save(out)


# --------------------------------------------------------------------------
# The one-call bundle the CLI and CI use


def plot_telemetry(
    rows: Iterable[Mapping[str, Any]],
    out_dir: str | Path,
    stem: str,
    heatmap_series: Sequence[str] = ("egress_queue", "ingress_queue"),
) -> list[Path]:
    """Render the standard chart set for one telemetry stream.

    Writes ``<stem>-<series>-heatmap.png`` per requested series, plus
    ``<stem>-utilisation.svg``, ``<stem>-queue.svg`` and (when the stream
    carries epoch frontiers) ``<stem>-progress.svg``; commit rows with
    latencies additionally produce ``<stem>-commit-overlay.svg``.  Returns
    the paths.
    """
    frame = build_frame(rows)
    out = Path(out_dir)
    written: list[Path] = []
    for series in heatmap_series:
        written.append(render_heatmap(frame, series, out / f"{stem}-{series}-heatmap.png"))
    written.append(render_utilisation(frame, out / f"{stem}-utilisation.svg"))
    written.append(render_queue_curves(frame, out / f"{stem}-queue.svg"))
    if "delivered_epoch" in frame.series:
        written.append(render_progress(frame, out / f"{stem}-progress.svg"))
    if frame.commit_latencies:
        written.append(render_commit_overlay(frame, out / f"{stem}-commit-overlay.svg"))
    return written


__all__ = [
    "HEATMAP_SERIES",
    "TelemetryFrame",
    "build_frame",
    "heatmap_pixels",
    "plot_telemetry",
    "render_commit_overlay",
    "render_heatmap",
    "render_progress",
    "render_queue_curves",
    "render_utilisation",
    "sequential_colormap",
    "write_png",
]
