"""Causal span tracing: nested per-block lifecycle spans as JSONL.

Telemetry (:mod:`repro.trace.recorder`) answers *what* the cluster looked
like over time; spans answer *why* one block was slow.  A
:class:`SpanRecorder` observes the protocol through hooks planted in the
node base class, the VID and BA automata, and the network send path, and
emits one **span row** per completed lifecycle phase:

* ``commit`` — the root, one per ``(node, epoch)``: opens at the node's
  first recorded activity for that epoch and closes when the epoch is fully
  delivered;
* ``dispersal`` — at the proposer, from block cut to VID completion;
* ``chunk-transfer`` — one per chunk/return-chunk message, from
  ``Network.send`` to arrival at the receiving automaton;
* ``retrieval`` — per ``(node, epoch, slot)``, request broadcast to decode;
* ``ba-round`` — per ``(node, epoch, slot, round)``, ending when the round
  advances or the instance decides.

Rows are appended only when a span **closes**, so the file order is the
deterministic close order — per-window segments written by the windowed
engine concatenate byte-identically to a monolithic run's file.  The
recorder schedules nothing and never mutates protocol state: summaries are
bit-identical with recording on or off, and the open-span bookkeeping is
snapshot-declared so checkpoints carry it across resume.

The module also holds the reductions the ``trace spans`` / ``trace flame``
CLI uses: :func:`summarise_spans` (per-phase latency percentiles, critical
path and slowest-commit drill-down) and :func:`spans_to_chrome` /
:func:`profile_to_chrome` (Chrome trace-event JSON, loadable in Perfetto
or ``chrome://tracing``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.common.errors import ConfigurationError, TraceError
from repro.common.snapshot import SnapshotState
from repro.vid.messages import ChunkMsg, ReturnChunkMsg


@dataclass(frozen=True)
class SpanSpec:
    """Per-spec switch for span recording (sibling of ``TelemetrySpec``).

    Attributes:
        enabled: record spans for this run.
        out_dir: directory the span JSONL is written into.
    """

    enabled: bool = False
    out_dir: str = "spans"

    def __post_init__(self) -> None:
        if not self.out_dir:
            raise ConfigurationError("span out_dir must be a non-empty path")


class SpanRecorder(SnapshotState):
    """Collects nested lifecycle spans; behaviour-neutral and hook-driven.

    Every hook takes the virtual ``now`` explicitly, so the recorder holds
    no simulator or network references — its whole state is the closed rows
    plus the open-span bookkeeping, all snapshot-declared.
    """

    _SNAPSHOT_FIELDS = (
        "rows",
        "_next_id",
        "_open_commit",
        "_open_dispersal",
        "_open_retrieval",
        "_open_ba",
        "_open_transfers",
        "_ba_decided",
    )

    def __init__(self) -> None:
        self.rows: list[dict[str, Any]] = []
        self._next_id = 0
        # (node, epoch) -> (span_id, start)
        self._open_commit: dict[tuple[int, int], tuple[int, float]] = {}
        # (node, epoch) -> (span_id, start)
        self._open_dispersal: dict[tuple[int, int], tuple[int, float]] = {}
        # (node, epoch, slot) -> (span_id, start)
        self._open_retrieval: dict[tuple[int, int, int], tuple[int, float]] = {}
        # (node, epoch, slot) -> (span_id, round, start)
        self._open_ba: dict[tuple[int, int, int], tuple[int, int, float]] = {}
        # (src, dst, kind, epoch, proposer) -> FIFO of (span_id, parent, start)
        self._open_transfers: dict[
            tuple[int, int, str, int, int], list[tuple[int, int | None, float]]
        ] = {}
        self._ba_decided: set[tuple[int, int, int]] = set()

    # -- lifecycle ---------------------------------------------------------

    def attach(self, sim, network, nodes) -> None:
        """Install the recorder as the probe on the network and every node.

        Crash-replacement stand-ins aren't protocol nodes and carry no
        probe slot; they simply stay untraced.
        """
        self.rows.append(
            {"kind": "meta", "t": sim.now, "num_nodes": network.num_nodes}
        )
        network._span_probe = self
        for node in nodes:
            if hasattr(node, "span_probe"):
                node.span_probe = self

    def finish(self) -> None:
        """End of run: drop still-open spans (aborted work emits no rows)."""
        self._open_commit.clear()
        self._open_dispersal.clear()
        self._open_retrieval.clear()
        self._open_ba.clear()
        self._open_transfers.clear()
        self._ba_decided.clear()

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the recorded rows as JSON-lines; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for row in self.rows:
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
        return target

    # -- span bookkeeping --------------------------------------------------

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _commit_id(self, node: int, epoch: int, now: float) -> int:
        """The root span for ``(node, epoch)``, opened at first activity."""
        key = (node, epoch)
        open_span = self._open_commit.get(key)
        if open_span is None:
            open_span = (self._new_id(), now)
            self._open_commit[key] = open_span
        return open_span[0]

    def _close(
        self,
        name: str,
        span_id: int,
        parent: int | None,
        node: int,
        epoch: int,
        start: float,
        end: float,
        **extra: Any,
    ) -> None:
        row = {
            "kind": "span",
            "id": span_id,
            "parent": parent,
            "name": name,
            "node": node,
            "epoch": epoch,
            "start": start,
            "end": end,
        }
        row.update(extra)
        self.rows.append(row)

    # -- protocol hooks (called with explicit virtual `now`) ---------------

    def on_dispersal_start(self, node: int, epoch: int, now: float) -> None:
        self._open_dispersal[(node, epoch)] = (self._new_id(), now)

    def on_dispersal_complete(self, node: int, epoch: int, now: float) -> None:
        open_span = self._open_dispersal.pop((node, epoch), None)
        if open_span is None:
            return
        span_id, start = open_span
        parent = self._commit_id(node, epoch, start)
        self._close("dispersal", span_id, parent, node, epoch, start, now)

    def on_retrieval_start(self, node: int, epoch: int, slot: int, now: float) -> None:
        self._open_retrieval[(node, epoch, slot)] = (self._new_id(), now)

    def on_retrieval_done(self, node: int, epoch: int, slot: int, now: float) -> None:
        open_span = self._open_retrieval.pop((node, epoch, slot), None)
        if open_span is None:
            return
        span_id, start = open_span
        parent = self._commit_id(node, epoch, start)
        self._close(
            "retrieval", span_id, parent, node, epoch, start, now, slot=slot
        )

    def on_ba_round(
        self, node: int, epoch: int, slot: int, round_number: int, now: float
    ) -> None:
        key = (node, epoch, slot)
        if key in self._ba_decided:
            return
        self._close_ba_round(key, now)
        self._open_ba[key] = (self._new_id(), round_number, now)

    def on_ba_decide(
        self, node: int, epoch: int, slot: int, value: bool, now: float
    ) -> None:
        key = (node, epoch, slot)
        if key in self._ba_decided:
            return
        self._close_ba_round(key, now, decision=int(value))
        self._ba_decided.add(key)

    def _close_ba_round(
        self, key: tuple[int, int, int], now: float, **extra: Any
    ) -> None:
        open_span = self._open_ba.pop(key, None)
        if open_span is None:
            return
        span_id, round_number, start = open_span
        node, epoch, slot = key
        parent = self._commit_id(node, epoch, start)
        self._close(
            "ba-round",
            span_id,
            parent,
            node,
            epoch,
            start,
            now,
            slot=slot,
            round=round_number,
            **extra,
        )

    def on_commit(self, node: int, epoch: int, now: float) -> None:
        open_span = self._open_commit.pop((node, epoch), None)
        if open_span is None:
            return
        span_id, start = open_span
        self._close("commit", span_id, None, node, epoch, start, now)

    # -- network hooks -----------------------------------------------------

    def on_message_send(self, src: int, dst: int, msg: Any, now: float) -> None:
        """Open a chunk-transfer span for dispersal and retrieval payloads.

        The parent is resolved at open time: a ``ChunkMsg`` rides the
        proposer's open dispersal, a ``ReturnChunkMsg`` the requester's open
        retrieval.  Linked retrievals (no open retrieval span) parent to the
        root-less ``None`` and are tolerated by every consumer.
        """
        msg_type = type(msg)
        if msg_type is ChunkMsg:
            instance = msg.instance
            open_parent = self._open_dispersal.get((src, instance.epoch))
            key = (src, dst, "chunk", instance.epoch, instance.proposer)
        elif msg_type is ReturnChunkMsg:
            instance = msg.instance
            open_parent = self._open_retrieval.get(
                (dst, instance.epoch, instance.proposer)
            )
            key = (src, dst, "return-chunk", instance.epoch, instance.proposer)
        else:
            return
        parent = open_parent[0] if open_parent is not None else None
        self._open_transfers.setdefault(key, []).append(
            (self._new_id(), parent, now)
        )

    def _transfer_done(
        self, src: int, dst: int, kind: str, epoch: int, proposer: int, now: float
    ) -> None:
        fifo = self._open_transfers.get((src, dst, kind, epoch, proposer))
        if not fifo:
            return
        span_id, parent, start = fifo.pop(0)
        node = src if kind == "chunk" else dst
        self._close(
            "chunk-transfer",
            span_id,
            parent,
            node,
            epoch,
            start,
            now,
            src=src,
            dst=dst,
            proposer=proposer,
            transfer=kind,
        )

    def on_chunk_arrived(
        self, src: int, dst: int, epoch: int, proposer: int, now: float
    ) -> None:
        self._transfer_done(src, dst, "chunk", epoch, proposer, now)

    def on_return_chunk_arrived(
        self, src: int, dst: int, epoch: int, proposer: int, now: float
    ) -> None:
        self._transfer_done(src, dst, "return-chunk", epoch, proposer, now)


# ---------------------------------------------------------------------------
# Reductions: span rows -> summaries / Chrome trace events

#: Lifecycle phases in causal order (used for stable summary ordering).
SPAN_PHASES = ("dispersal", "chunk-transfer", "retrieval", "ba-round", "commit")


def _percentile(durations: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted duration list."""
    if not durations:
        return 0.0
    rank = min(len(durations) - 1, max(0, int(round(fraction * (len(durations) - 1)))))
    return durations[rank]


def _span_rows(rows: Iterable[Mapping[str, Any]]) -> list[Mapping[str, Any]]:
    spans = [row for row in rows if row.get("kind") == "span"]
    if not spans:
        raise TraceError("no span rows (was span recording enabled?)")
    return spans


def critical_path(
    commit: Mapping[str, Any], children: Mapping[int, list[Mapping[str, Any]]]
) -> list[dict[str, Any]]:
    """The latest-finishing child chain under one commit span.

    At each level the child whose ``end`` is largest is the one the commit
    actually waited for; ties break on span id, which is deterministic.
    """
    path: list[dict[str, Any]] = []
    current = commit
    while True:
        below = children.get(current["id"])
        if not below:
            return path
        current = max(below, key=lambda row: (row["end"], row["id"]))
        step = {
            "name": current["name"],
            "node": current["node"],
            "start": current["start"],
            "end": current["end"],
            "duration": current["end"] - current["start"],
        }
        for extra in ("slot", "round", "src", "dst", "transfer"):
            if extra in current:
                step[extra] = current[extra]
        path.append(step)


def summarise_spans(rows: Iterable[Mapping[str, Any]], top: int = 5) -> dict[str, Any]:
    """Reduce span rows to phase statistics and a slowest-commit drill-down.

    Returns a dict with:

    * ``phases`` — per span name: count and duration mean/p50/p90/p99/max;
    * ``commits`` — committed-block count and latency stats;
    * ``slowest`` — the ``top`` slowest commits, each with its critical
      path and per-phase time under that block.
    """
    spans = _span_rows(rows)
    by_name: dict[str, list[float]] = {}
    children: dict[int, list[Mapping[str, Any]]] = {}
    commits: list[Mapping[str, Any]] = []
    for row in spans:
        by_name.setdefault(row["name"], []).append(row["end"] - row["start"])
        parent = row.get("parent")
        if parent is not None:
            children.setdefault(parent, []).append(row)
        if row["name"] == "commit":
            commits.append(row)

    phases = {}
    ordered = [name for name in SPAN_PHASES if name in by_name]
    ordered += sorted(set(by_name) - set(SPAN_PHASES))
    for name in ordered:
        durations = sorted(by_name[name])
        phases[name] = {
            "count": len(durations),
            "mean": sum(durations) / len(durations),
            "p50": _percentile(durations, 0.50),
            "p90": _percentile(durations, 0.90),
            "p99": _percentile(durations, 0.99),
            "max": durations[-1],
        }

    slowest = []
    ranked = sorted(
        commits, key=lambda row: (row["start"] - row["end"], row["id"])
    )
    for commit in ranked[:top]:
        per_phase: dict[str, float] = {}
        stack = list(children.get(commit["id"], ()))
        while stack:
            row = stack.pop()
            per_phase[row["name"]] = (
                per_phase.get(row["name"], 0.0) + row["end"] - row["start"]
            )
            stack.extend(children.get(row["id"], ()))
        slowest.append(
            {
                "node": commit["node"],
                "epoch": commit["epoch"],
                "start": commit["start"],
                "end": commit["end"],
                "latency": commit["end"] - commit["start"],
                "phase_seconds": dict(sorted(per_phase.items())),
                "critical_path": critical_path(commit, children),
            }
        )

    commit_durations = sorted(row["end"] - row["start"] for row in commits)
    return {
        "num_spans": len(spans),
        "phases": phases,
        "commits": {
            "count": len(commit_durations),
            "mean_latency": (
                sum(commit_durations) / len(commit_durations)
                if commit_durations
                else 0.0
            ),
            "p50_latency": _percentile(commit_durations, 0.50),
            "p90_latency": _percentile(commit_durations, 0.90),
            "max_latency": commit_durations[-1] if commit_durations else 0.0,
        },
        "slowest": slowest,
    }


def spans_to_chrome(rows: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Lower span rows to Chrome trace-event JSON (Perfetto-loadable).

    Complete events (``ph: "X"``), one track (``tid``) per node, virtual
    seconds scaled to trace microseconds.
    """
    events = []
    for row in _span_rows(rows):
        args = {"id": row["id"], "epoch": row["epoch"]}
        for extra in ("slot", "round", "src", "dst", "transfer", "decision"):
            if extra in row:
                args[extra] = row[extra]
        if row.get("parent") is not None:
            args["parent"] = row["parent"]
        events.append(
            {
                "name": row["name"],
                "cat": "lifecycle",
                "ph": "X",
                "ts": row["start"] * 1e6,
                "dur": (row["end"] - row["start"]) * 1e6,
                "pid": 0,
                "tid": row["node"],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def profile_to_chrome(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Lower a ``repro-profile-v1`` payload to Chrome trace-event JSON.

    The profiler keeps aggregates, not a timeline, so each callback kind
    renders as one sequential complete event sized by its total host
    seconds — a flame-graph-shaped view of where the wall clock went.
    """
    if payload.get("format") != "repro-profile-v1":
        raise TraceError("not a repro-profile-v1 payload")
    events = []
    cursor = 0.0
    for entry in payload.get("kinds", ()):
        duration = entry["seconds"] * 1e6
        events.append(
            {
                "name": entry["kind"],
                "cat": "profile",
                "ph": "X",
                "ts": cursor,
                "dur": duration,
                "pid": 0,
                "tid": 0,
                "args": {"events": entry["events"], "seconds": entry["seconds"]},
            }
        )
        cursor += duration
    return {"traceEvents": events, "displayTimeUnit": "ms"}


__all__ = [
    "SPAN_PHASES",
    "SpanRecorder",
    "SpanSpec",
    "critical_path",
    "profile_to_chrome",
    "spans_to_chrome",
    "summarise_spans",
]
