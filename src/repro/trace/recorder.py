"""Per-run telemetry: a time-series recorder hooked into the simulator.

End-of-run summaries answer *how much*; the :class:`TraceRecorder` answers
*when and where*.  While a scenario runs it samples every node's links on a
fixed virtual-time grid — pipe queue depths, link utilisation, cumulative
traffic, epoch frontiers, confirmed bytes — and after the run it derives
per-epoch commit rows (and adversary-delivery rows when Byzantine nodes
were placed) from the ledgers.  The rows are written as JSONL next to the
summary, one self-describing object per line, so plots and ad-hoc analysis
need nothing beyond ``json.loads`` per line.

Recording is **behaviour-neutral**: the sampling callback is an
:class:`~repro.sim.events.InternalCallback` (excluded from event accounting)
that only *reads* simulator state, so a run with telemetry enabled produces
a summary bit-identical to the same run with it disabled — the golden
suite's guarantees survive turning it on.

Row kinds:

* ``meta`` — one header row: scenario name, node count, sampling interval.
* ``sample`` — per node, every ``interval`` virtual seconds: egress/ingress
  queue depth (queued + in-flight bytes), utilisation (busy-time fraction of
  the elapsed interval), cumulative transferred bytes, the node's dispersal
  and delivery epoch frontiers, and cumulative confirmed payload bytes.
* ``commit`` — per node and delivered-in epoch, after the run: the virtual
  time the epoch's retrieval phase finished delivering, the gap since the
  previous commit (the per-epoch commit latency), and what it delivered.
* ``adversary-delivery`` — one row per honest-ledger entry proposed by an
  adversarial node (placeholder deliveries included), when adversaries were
  placed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.common.snapshot import SnapshotState
from repro.sim.events import InternalCallback, Simulator
from repro.sim.network import Network


@dataclass(frozen=True)
class TelemetrySpec:
    """Opt-in per-scenario telemetry recording (rides in the spec JSON).

    Attributes:
        enabled: record a telemetry time-series for this run (default off;
            disabled runs are byte-identical to specs without the field).
        interval: virtual seconds between samples.
        out_dir: directory the per-point JSONL files are written under
            (created on demand; relative paths resolve against the working
            directory of the run).
    """

    enabled: bool = False
    interval: float = 1.0
    out_dir: str = "telemetry"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("telemetry interval must be positive")
        if not self.out_dir:
            raise ConfigurationError("telemetry out_dir must be non-empty")


class TraceRecorder(SnapshotState):
    """Samples link and protocol state on a virtual-time grid.

    Usage (the engine does this when ``spec.telemetry.enabled``):

    1. :meth:`attach` after the cluster is built — schedules the first
       sample at ``t = 0`` through an uncounted internal callback;
    2. run the simulation;
    3. :meth:`finish` — derives the post-run rows from the ledgers;
    4. :meth:`write_jsonl` (or read :attr:`rows` directly).
    """

    _SNAPSHOT_FIELDS = (
        "interval",
        "rows",
        "_sim",
        "_network",
        "_nodes",
        "_collector",
        "_tick",
        "_busy",
        "_last_sample_at",
    )

    def __init__(self, interval: float = 1.0):
        if interval <= 0:
            raise ConfigurationError("sampling interval must be positive")
        self.interval = interval
        self.rows: list[dict] = []
        self._sim: Simulator | None = None
        self._network: Network | None = None
        self._nodes: Sequence = ()
        self._collector = None
        self._tick = InternalCallback(self._sample)
        #: Last-seen ``(egress_busy, ingress_busy)`` per node, for utilisation.
        self._busy: list[tuple[float, float]] = []
        self._last_sample_at = 0.0

    def attach(self, sim: Simulator, network: Network, nodes: Sequence, collector) -> None:
        """Start sampling ``nodes`` on ``sim``'s clock (first sample at now)."""
        self._sim = sim
        self._network = network
        self._nodes = nodes
        self._collector = collector
        self._busy = [(0.0, 0.0)] * network.num_nodes
        self._last_sample_at = sim.now
        self.rows.append(
            {
                "kind": "meta",
                "t": sim.now,
                "num_nodes": network.num_nodes,
                "interval": self.interval,
            }
        )
        sim.schedule_internal(0.0, self._tick)

    def _sample(self) -> None:
        sim = self._sim
        network = self._network
        assert sim is not None and network is not None
        now = sim.now
        elapsed = now - self._last_sample_at
        for node_id in range(network.num_nodes):
            snap = network.link_snapshot(node_id)
            egress_busy, ingress_busy = self._busy[node_id]
            if elapsed > 0:
                egress_util = (snap["egress_busy_time"] - egress_busy) / elapsed
                ingress_util = (snap["ingress_busy_time"] - ingress_busy) / elapsed
            else:
                egress_util = ingress_util = 0.0
            self._busy[node_id] = (snap["egress_busy_time"], snap["ingress_busy_time"])
            row = {
                "kind": "sample",
                "t": now,
                "node": node_id,
                "egress_queue": snap["egress_queue"],
                "ingress_queue": snap["ingress_queue"],
                "egress_util": egress_util,
                "ingress_util": ingress_util,
                "egress_bytes": snap["egress_bytes"],
                "ingress_bytes": snap["ingress_bytes"],
            }
            if node_id < len(self._nodes):
                node = self._nodes[node_id]
                row["current_epoch"] = node.current_epoch
                row["delivered_epoch"] = node.delivered_epoch
            if self._collector is not None:
                row["confirmed_bytes"] = self._collector.per_node[node_id].confirmed_bytes
            self.rows.append(row)
        self._last_sample_at = now
        # Re-arm for the next grid point; the run loop simply never fires it
        # once the horizon is reached.
        sim.schedule_internal(self.interval, self._tick)

    def finish(self, nodes: Sequence, adversarial: Sequence[int] = ()) -> None:
        """Derive the post-run rows (commits, adversary deliveries) from ledgers."""
        adversarial_set = set(adversarial)
        for node in nodes:
            ledger = getattr(node, "ledger", None)
            if ledger is None:
                continue
            by_epoch: dict[int, dict] = {}
            for entry in ledger.entries:
                stats = by_epoch.setdefault(
                    entry.delivered_in_epoch,
                    {"t": 0.0, "blocks": 0, "payload_bytes": 0, "linked": 0},
                )
                stats["t"] = max(stats["t"], entry.delivered_at)
                stats["blocks"] += 1
                stats["payload_bytes"] += entry.payload_bytes
                stats["linked"] += 1 if entry.via_linking else 0
                if adversarial_set and entry.proposer in adversarial_set:
                    self.rows.append(
                        {
                            "kind": "adversary-delivery",
                            "t": entry.delivered_at,
                            "node": node.node_id,
                            "epoch": entry.epoch,
                            "delivered_in_epoch": entry.delivered_in_epoch,
                            "proposer": entry.proposer,
                            "via_linking": entry.via_linking,
                            "label": entry.block.label,
                        }
                    )
            previous = 0.0
            for epoch in sorted(by_epoch):
                stats = by_epoch[epoch]
                self.rows.append(
                    {
                        "kind": "commit",
                        "t": stats["t"],
                        "node": node.node_id,
                        "epoch": epoch,
                        "latency": stats["t"] - previous,
                        "blocks": stats["blocks"],
                        "payload_bytes": stats["payload_bytes"],
                        "linked_blocks": stats["linked"],
                    }
                )
                previous = stats["t"]

    def write_jsonl(self, path: str | Path) -> Path:
        """Write every recorded row as one JSON object per line."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for row in self.rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        return target


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a telemetry JSONL file back into its rows (analysis helper)."""
    rows = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


__all__ = ["TelemetrySpec", "TraceRecorder", "read_jsonl"]
