"""Measured-bandwidth trace replay and per-run telemetry.

Two halves, both new layers over the simulator:

* **Replay** (:mod:`repro.trace.model`, :mod:`repro.trace.io`) — a file
  format for measured per-node bandwidth breakpoints
  (``time,node,up_bps,down_bps`` CSV, or the equivalent JSON), a validating
  loader, transform utilities (scale / clip / resample), and the bridge that
  lowers a trace onto the simulator's piecewise-constant bandwidth
  functions.  The scenario engine's ``trace-replay`` bandwidth model
  (:mod:`repro.experiments.scenario`) is built on this, so any
  :class:`~repro.experiments.scenario.ScenarioSpec` can replay a recorded
  trace by path; bundled examples live under ``traces/``.
* **Telemetry** (:mod:`repro.trace.recorder`) — a
  :class:`TraceRecorder` that samples per-node link state (queue depth,
  utilisation, traffic counters, epoch frontiers) on a virtual-time grid
  and derives per-epoch commit and adversary-delivery rows after the run,
  writing JSONL next to the summary.  Recording is opt-in per spec
  (:class:`TelemetrySpec`) and behaviour-neutral: summaries are
  bit-identical with it on or off.  :mod:`repro.trace.analysis` reduces a
  recorded JSONL to time-weighted queue-depth and utilisation statistics;
  :mod:`repro.trace.plot` renders it to heatmaps and progress curves;
  :mod:`repro.trace.diff` compares recordings (and pinned golden
  envelopes) with per-series tolerances; :mod:`repro.trace.importers`
  converts third-party recordings (Mahimahi, cloud-probe logs) into the
  trace format.
* **Spans** (:mod:`repro.trace.spans`) — a :class:`SpanRecorder` that
  observes the per-block lifecycle (dispersal → chunk transfers →
  retrieval → BA rounds → commit) through protocol hooks and emits nested
  causal spans as JSONL, plus the reductions behind ``trace spans``
  (:func:`summarise_spans`) and ``trace flame`` (:func:`spans_to_chrome`,
  :func:`profile_to_chrome`).  Like telemetry, span recording is opt-in
  per spec (:class:`SpanSpec`) and behaviour-neutral.

CLI: ``python -m repro.experiments trace
{inspect,convert,export,summarise,plot,diff,import,spans,flame}``
(:mod:`repro.trace.cli`).
"""

from repro.common.errors import TraceError
from repro.trace.analysis import summarise_node_samples, summarise_telemetry
from repro.trace.diff import (
    SeriesDelta,
    check_envelope,
    diff_telemetry,
    envelope_from_summary,
    is_envelope,
)
from repro.trace.importers import (
    import_cloudprobe,
    import_mahimahi,
    parse_cloudprobe,
    parse_mahimahi,
)
from repro.trace.io import (
    load_trace,
    load_trace_cached,
    parse_csv,
    parse_json,
    resolve_trace_path,
    save_trace,
    to_csv_text,
    to_json_text,
)
from repro.trace.model import REPLAY_RATE_FLOOR, MeasuredTrace, NodeTrace, TracePoint
from repro.trace.plot import build_frame, plot_telemetry
from repro.trace.recorder import TelemetrySpec, TraceRecorder, read_jsonl
from repro.trace.spans import (
    SpanRecorder,
    SpanSpec,
    profile_to_chrome,
    spans_to_chrome,
    summarise_spans,
)

__all__ = [
    "MeasuredTrace",
    "NodeTrace",
    "REPLAY_RATE_FLOOR",
    "SeriesDelta",
    "SpanRecorder",
    "SpanSpec",
    "TelemetrySpec",
    "TraceError",
    "TracePoint",
    "TraceRecorder",
    "build_frame",
    "check_envelope",
    "diff_telemetry",
    "envelope_from_summary",
    "import_cloudprobe",
    "import_mahimahi",
    "is_envelope",
    "load_trace",
    "load_trace_cached",
    "parse_cloudprobe",
    "parse_csv",
    "parse_json",
    "parse_mahimahi",
    "plot_telemetry",
    "profile_to_chrome",
    "read_jsonl",
    "resolve_trace_path",
    "save_trace",
    "spans_to_chrome",
    "summarise_node_samples",
    "summarise_spans",
    "summarise_telemetry",
    "to_csv_text",
    "to_json_text",
]
