"""Importing third-party link recordings into the ``repro-trace-v1`` model.

The trace model (:mod:`repro.trace.model`) speaks piecewise-constant
bytes/second breakpoints; measurement tools mostly don't.  This module holds
the converters, starting with the **Mahimahi packet-delivery format** used
by ``mm-link`` and by the Pacer/Vantage-style capacity probes distributed
with it: a text file with one integer millisecond timestamp per line, each
line one delivery opportunity for a single MTU-sized (1504-byte) packet.
The timestamps are non-decreasing; a burst of opportunities at one instant
is simply the same millisecond repeated.

Import lowers that to rates by binning: count the opportunities in each
``bin_seconds`` window, multiply by the MTU, divide by the bin — then
coalesce runs of equal-rate bins into single breakpoints (the model holds a
rate until the next breakpoint, so equal neighbours are redundant).  A bin
with no opportunities is a genuine measured outage and becomes rate 0; the
replay floor (:data:`~repro.trace.model.REPLAY_RATE_FLOOR`) is applied at
simulation time, not here, so the file preserves what was measured.

A Mahimahi file records one direction of one link.  A full
:class:`~repro.trace.model.MeasuredTrace` therefore takes one downlink file
per node and, optionally, matching uplink files; without uplinks the link
is treated as symmetric (up mirrors down), which is how the saturator logs
are usually replayed.

The second format is the **cloud-probe log** written by Pacer-style
cross-datacentre capacity probes: one ``time,rate_bps`` sample per line
(seconds since probe start, instantaneous achievable bytes/second), strictly
increasing times, ``#`` comment lines allowed.  Each reading holds until
the next one (piecewise constant), so import is a time-weighted resample
onto the bin grid rather than opportunity counting — see
:func:`samples_to_rates`.

The CLI front-end is ``python -m repro.experiments trace import``; bundled
examples live at ``traces/mahimahi-cellular.down`` (imported form
``traces/cellular-lte.json``) and ``traces/cloudprobe-wan.probe`` (imported
form ``traces/cloudprobe-wan.json``) — see ``traces/README.md``.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

from repro.common.errors import TraceError
from repro.trace.io import resolve_trace_path
from repro.trace.model import MeasuredTrace, NodeTrace, TracePoint

#: Bytes delivered per Mahimahi opportunity (the MTU ``mm-link`` assumes).
MTU_BYTES = 1504

#: Default binning window for lowering opportunities to rates.
DEFAULT_BIN_SECONDS = 1.0


def parse_mahimahi(text: str, name: str = "trace") -> tuple[int, ...]:
    """Parse a Mahimahi packet-delivery file into millisecond timestamps.

    Validates what the format promises: one non-negative integer per
    non-empty line, non-decreasing.  Lines starting with ``#`` are skipped
    (some probe tools prepend a provenance comment).
    """
    stamps: list[int] = []
    previous = -1
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            stamp = int(line)
        except ValueError:
            raise TraceError(
                f"mahimahi trace {name!r} line {number}: expected an integer "
                f"millisecond timestamp, got {line!r}"
            ) from None
        if stamp < 0:
            raise TraceError(
                f"mahimahi trace {name!r} line {number}: negative timestamp {stamp}"
            )
        if stamp < previous:
            raise TraceError(
                f"mahimahi trace {name!r} line {number}: timestamps must be "
                f"non-decreasing (got {stamp} after {previous})"
            )
        stamps.append(stamp)
        previous = stamp
    if not stamps:
        raise TraceError(f"mahimahi trace {name!r}: no delivery opportunities")
    return tuple(stamps)


def opportunities_to_rates(
    stamps_ms: Sequence[int],
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    mtu_bytes: int = MTU_BYTES,
) -> tuple[tuple[float, float], ...]:
    """Lower delivery opportunities to ``(time, bytes_per_second)`` breakpoints.

    Bins cover ``[0, ceil(span / bin))`` so the trailing partial window still
    gets a rate; empty bins are measured outages (rate 0).  Runs of
    equal-rate bins coalesce into one breakpoint.
    """
    if bin_seconds <= 0 or not math.isfinite(bin_seconds):
        raise TraceError(f"bin width must be positive and finite, got {bin_seconds}")
    if mtu_bytes <= 0:
        raise TraceError(f"MTU must be positive, got {mtu_bytes}")
    bin_ms = bin_seconds * 1000.0
    num_bins = max(1, math.ceil((stamps_ms[-1] + 1) / bin_ms))
    counts = [0] * num_bins
    for stamp in stamps_ms:
        counts[min(num_bins - 1, int(stamp / bin_ms))] += 1
    points: list[tuple[float, float]] = []
    for index, count in enumerate(counts):
        rate = count * mtu_bytes / bin_seconds
        if not points or points[-1][1] != rate:
            points.append((index * bin_seconds, rate))
    return tuple(points)


def _read_direction(path: str | Path) -> tuple[int, ...]:
    resolved = resolve_trace_path(path)
    try:
        text = resolved.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"cannot read mahimahi file {str(resolved)!r}: {exc}") from exc
    return parse_mahimahi(text, name=resolved.name)


def import_mahimahi(
    name: str,
    down_files: Sequence[str | Path],
    up_files: Sequence[str | Path] | None = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    mtu_bytes: int = MTU_BYTES,
) -> MeasuredTrace:
    """Build a :class:`MeasuredTrace` from Mahimahi recordings.

    One downlink file per node; ``up_files`` (same length, same order) are
    optional — omitted, every link is symmetric.  Nodes are numbered in
    argument order.
    """
    if not down_files:
        raise TraceError("need at least one mahimahi downlink file")
    if up_files is not None and len(up_files) != len(down_files):
        raise TraceError(
            f"uplink file count ({len(up_files)}) must match downlink "
            f"file count ({len(down_files)})"
        )
    nodes = []
    for node_id, down_path in enumerate(down_files):
        down = opportunities_to_rates(_read_direction(down_path), bin_seconds, mtu_bytes)
        if up_files is None:
            up = down
        else:
            up = opportunities_to_rates(
                _read_direction(up_files[node_id]), bin_seconds, mtu_bytes
            )
        points = _merge_directions(up, down)
        nodes.append(NodeTrace(node=node_id, points=points))
    return MeasuredTrace(name=name, nodes=tuple(nodes))


def _merge_directions(
    up: Sequence[tuple[float, float]], down: Sequence[tuple[float, float]]
) -> tuple[TracePoint, ...]:
    """Zip two single-direction breakpoint series onto one time axis."""
    times = sorted({t for t, _ in up} | {t for t, _ in down})
    points: list[TracePoint] = []
    ui = di = 0
    up_rate = down_rate = 0.0
    for t in times:
        while ui < len(up) and up[ui][0] <= t:
            up_rate = up[ui][1]
            ui += 1
        while di < len(down) and down[di][0] <= t:
            down_rate = down[di][1]
            di += 1
        points.append((t, up_rate, down_rate))
    return tuple(points)


# ---------------------------------------------------------------------------
# Cloud-probe logs: (time, rate) samples rather than delivery opportunities
# ---------------------------------------------------------------------------


def parse_cloudprobe(text: str, name: str = "probe") -> tuple[tuple[float, float], ...]:
    """Parse a cloud-probe log into ``(seconds, bytes_per_second)`` samples.

    Validates what the format promises: each non-empty, non-comment line is
    ``time,rate_bps`` with a finite non-negative time (strictly increasing
    across lines) and a finite non-negative rate.
    """
    samples: list[tuple[float, float]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) != 2:
            raise TraceError(
                f"cloudprobe log {name!r} line {number}: expected "
                f"'time,rate_bps', got {line!r}"
            )
        try:
            t, rate = float(parts[0]), float(parts[1])
        except ValueError:
            raise TraceError(
                f"cloudprobe log {name!r} line {number}: expected two "
                f"numbers, got {line!r}"
            ) from None
        if not math.isfinite(t) or t < 0:
            raise TraceError(
                f"cloudprobe log {name!r} line {number}: bad sample time {parts[0]}"
            )
        if samples and t <= samples[-1][0]:
            raise TraceError(
                f"cloudprobe log {name!r} line {number}: sample times must be "
                f"strictly increasing (got {t:g} after {samples[-1][0]:g})"
            )
        if not math.isfinite(rate) or rate < 0:
            raise TraceError(
                f"cloudprobe log {name!r} line {number}: bad rate {parts[1]}"
            )
        samples.append((t, rate))
    if not samples:
        raise TraceError(f"cloudprobe log {name!r}: no samples")
    return tuple(samples)


def samples_to_rates(
    samples: Sequence[tuple[float, float]],
    bin_seconds: float = DEFAULT_BIN_SECONDS,
) -> tuple[tuple[float, float], ...]:
    """Time-weighted resample of probe samples onto a regular bin grid.

    Each reading holds until the next one; the first also covers the time
    before it, and the last holds for one extra bin so it is represented in
    the output span.  Every bin's rate is the time-weighted mean of the
    readings it overlaps, and runs of equal-rate bins coalesce into single
    breakpoints, exactly as :func:`opportunities_to_rates` does.
    """
    if bin_seconds <= 0 or not math.isfinite(bin_seconds):
        raise TraceError(f"bin width must be positive and finite, got {bin_seconds}")
    num_bins = max(1, math.ceil((samples[-1][0] + bin_seconds) / bin_seconds))
    end = num_bins * bin_seconds
    # Step function: segment i covers [starts[i], bounds[i]) at rates[i].
    starts = [0.0] + [t for t, _ in samples[1:]]
    bounds = starts[1:] + [end]
    rates = [rate for _, rate in samples]
    points: list[tuple[float, float]] = []
    seg = 0
    for index in range(num_bins):
        b0 = index * bin_seconds
        b1 = (index + 1) * bin_seconds
        total = 0.0
        j = seg
        while j < len(starts):
            overlap = min(bounds[j], b1) - max(starts[j], b0)
            if overlap > 0:
                total += rates[j] * overlap
            if bounds[j] <= b1:
                j += 1
            else:
                break
        seg = min(j, len(starts) - 1)
        rate = total / bin_seconds
        if not points or points[-1][1] != rate:
            points.append((b0, rate))
    return tuple(points)


def _read_probe(path: str | Path) -> tuple[tuple[float, float], ...]:
    resolved = resolve_trace_path(path)
    try:
        text = resolved.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"cannot read cloudprobe file {str(resolved)!r}: {exc}") from exc
    return parse_cloudprobe(text, name=resolved.name)


def import_cloudprobe(
    name: str,
    down_files: Sequence[str | Path],
    up_files: Sequence[str | Path] | None = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    mtu_bytes: int = MTU_BYTES,
) -> MeasuredTrace:
    """Build a :class:`MeasuredTrace` from cloud-probe logs.

    Same file-per-node/direction convention as :func:`import_mahimahi`.
    ``mtu_bytes`` is accepted for CLI-signature uniformity but unused: probe
    logs already carry rates, not packet opportunities.
    """
    del mtu_bytes  # rates are measured directly; nothing to multiply
    if not down_files:
        raise TraceError("need at least one cloudprobe downlink file")
    if up_files is not None and len(up_files) != len(down_files):
        raise TraceError(
            f"uplink file count ({len(up_files)}) must match downlink "
            f"file count ({len(down_files)})"
        )
    nodes = []
    for node_id, down_path in enumerate(down_files):
        down = samples_to_rates(_read_probe(down_path), bin_seconds)
        if up_files is None:
            up = down
        else:
            up = samples_to_rates(_read_probe(up_files[node_id]), bin_seconds)
        points = _merge_directions(up, down)
        nodes.append(NodeTrace(node=node_id, points=points))
    return MeasuredTrace(name=name, nodes=tuple(nodes))


#: Importer registry keyed by the CLI's ``--format`` value.  Every importer
#: shares the ``(name, down_files, up_files=, bin_seconds=, mtu_bytes=)``
#: signature the CLI calls with.
IMPORTERS = {"mahimahi": import_mahimahi, "cloudprobe": import_cloudprobe}


__all__ = [
    "DEFAULT_BIN_SECONDS",
    "IMPORTERS",
    "MTU_BYTES",
    "import_cloudprobe",
    "import_mahimahi",
    "opportunities_to_rates",
    "parse_cloudprobe",
    "parse_mahimahi",
    "samples_to_rates",
]
