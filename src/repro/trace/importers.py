"""Importing third-party link recordings into the ``repro-trace-v1`` model.

The trace model (:mod:`repro.trace.model`) speaks piecewise-constant
bytes/second breakpoints; measurement tools mostly don't.  This module holds
the converters, starting with the **Mahimahi packet-delivery format** used
by ``mm-link`` and by the Pacer/Vantage-style capacity probes distributed
with it: a text file with one integer millisecond timestamp per line, each
line one delivery opportunity for a single MTU-sized (1504-byte) packet.
The timestamps are non-decreasing; a burst of opportunities at one instant
is simply the same millisecond repeated.

Import lowers that to rates by binning: count the opportunities in each
``bin_seconds`` window, multiply by the MTU, divide by the bin — then
coalesce runs of equal-rate bins into single breakpoints (the model holds a
rate until the next breakpoint, so equal neighbours are redundant).  A bin
with no opportunities is a genuine measured outage and becomes rate 0; the
replay floor (:data:`~repro.trace.model.REPLAY_RATE_FLOOR`) is applied at
simulation time, not here, so the file preserves what was measured.

A Mahimahi file records one direction of one link.  A full
:class:`~repro.trace.model.MeasuredTrace` therefore takes one downlink file
per node and, optionally, matching uplink files; without uplinks the link
is treated as symmetric (up mirrors down), which is how the saturator logs
are usually replayed.

The CLI front-end is ``python -m repro.experiments trace import``; a
bundled example lives at ``traces/mahimahi-cellular.down`` with its
imported form at ``traces/cellular-lte.json`` (see ``traces/README.md``).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

from repro.common.errors import TraceError
from repro.trace.io import resolve_trace_path
from repro.trace.model import MeasuredTrace, NodeTrace, TracePoint

#: Bytes delivered per Mahimahi opportunity (the MTU ``mm-link`` assumes).
MTU_BYTES = 1504

#: Default binning window for lowering opportunities to rates.
DEFAULT_BIN_SECONDS = 1.0


def parse_mahimahi(text: str, name: str = "trace") -> tuple[int, ...]:
    """Parse a Mahimahi packet-delivery file into millisecond timestamps.

    Validates what the format promises: one non-negative integer per
    non-empty line, non-decreasing.  Lines starting with ``#`` are skipped
    (some probe tools prepend a provenance comment).
    """
    stamps: list[int] = []
    previous = -1
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            stamp = int(line)
        except ValueError:
            raise TraceError(
                f"mahimahi trace {name!r} line {number}: expected an integer "
                f"millisecond timestamp, got {line!r}"
            ) from None
        if stamp < 0:
            raise TraceError(
                f"mahimahi trace {name!r} line {number}: negative timestamp {stamp}"
            )
        if stamp < previous:
            raise TraceError(
                f"mahimahi trace {name!r} line {number}: timestamps must be "
                f"non-decreasing (got {stamp} after {previous})"
            )
        stamps.append(stamp)
        previous = stamp
    if not stamps:
        raise TraceError(f"mahimahi trace {name!r}: no delivery opportunities")
    return tuple(stamps)


def opportunities_to_rates(
    stamps_ms: Sequence[int],
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    mtu_bytes: int = MTU_BYTES,
) -> tuple[tuple[float, float], ...]:
    """Lower delivery opportunities to ``(time, bytes_per_second)`` breakpoints.

    Bins cover ``[0, ceil(span / bin))`` so the trailing partial window still
    gets a rate; empty bins are measured outages (rate 0).  Runs of
    equal-rate bins coalesce into one breakpoint.
    """
    if bin_seconds <= 0 or not math.isfinite(bin_seconds):
        raise TraceError(f"bin width must be positive and finite, got {bin_seconds}")
    if mtu_bytes <= 0:
        raise TraceError(f"MTU must be positive, got {mtu_bytes}")
    bin_ms = bin_seconds * 1000.0
    num_bins = max(1, math.ceil((stamps_ms[-1] + 1) / bin_ms))
    counts = [0] * num_bins
    for stamp in stamps_ms:
        counts[min(num_bins - 1, int(stamp / bin_ms))] += 1
    points: list[tuple[float, float]] = []
    for index, count in enumerate(counts):
        rate = count * mtu_bytes / bin_seconds
        if not points or points[-1][1] != rate:
            points.append((index * bin_seconds, rate))
    return tuple(points)


def _read_direction(path: str | Path) -> tuple[int, ...]:
    resolved = resolve_trace_path(path)
    try:
        text = resolved.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"cannot read mahimahi file {str(resolved)!r}: {exc}") from exc
    return parse_mahimahi(text, name=resolved.name)


def import_mahimahi(
    name: str,
    down_files: Sequence[str | Path],
    up_files: Sequence[str | Path] | None = None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    mtu_bytes: int = MTU_BYTES,
) -> MeasuredTrace:
    """Build a :class:`MeasuredTrace` from Mahimahi recordings.

    One downlink file per node; ``up_files`` (same length, same order) are
    optional — omitted, every link is symmetric.  Nodes are numbered in
    argument order.
    """
    if not down_files:
        raise TraceError("need at least one mahimahi downlink file")
    if up_files is not None and len(up_files) != len(down_files):
        raise TraceError(
            f"uplink file count ({len(up_files)}) must match downlink "
            f"file count ({len(down_files)})"
        )
    nodes = []
    for node_id, down_path in enumerate(down_files):
        down = opportunities_to_rates(_read_direction(down_path), bin_seconds, mtu_bytes)
        if up_files is None:
            up = down
        else:
            up = opportunities_to_rates(
                _read_direction(up_files[node_id]), bin_seconds, mtu_bytes
            )
        points = _merge_directions(up, down)
        nodes.append(NodeTrace(node=node_id, points=points))
    return MeasuredTrace(name=name, nodes=tuple(nodes))


def _merge_directions(
    up: Sequence[tuple[float, float]], down: Sequence[tuple[float, float]]
) -> tuple[TracePoint, ...]:
    """Zip two single-direction breakpoint series onto one time axis."""
    times = sorted({t for t, _ in up} | {t for t, _ in down})
    points: list[TracePoint] = []
    ui = di = 0
    up_rate = down_rate = 0.0
    for t in times:
        while ui < len(up) and up[ui][0] <= t:
            up_rate = up[ui][1]
            ui += 1
        while di < len(down) and down[di][0] <= t:
            down_rate = down[di][1]
            di += 1
        points.append((t, up_rate, down_rate))
    return tuple(points)


#: Importer registry keyed by the CLI's ``--format`` value.  One entry today;
#: the shape exists so a second campaign format lands as a function + a row.
IMPORTERS = {"mahimahi": import_mahimahi}


__all__ = [
    "DEFAULT_BIN_SECONDS",
    "IMPORTERS",
    "MTU_BYTES",
    "import_mahimahi",
    "opportunities_to_rates",
    "parse_mahimahi",
]
