"""Reading and writing measured-bandwidth trace files.

Two interchangeable on-disk formats, chosen by file extension:

* **CSV** (``.csv``) — the measurement-campaign shape: a header line
  ``time,node,up_bps,down_bps`` followed by one breakpoint per row.  Rows
  may arrive grouped by node or interleaved by time; within a node the
  times must be strictly increasing.
* **JSON** (``.json``) — the structured shape::

      {"format": "repro-trace-v1",
       "name": "wan-measured",
       "nodes": {"0": [[0.0, 2000000, 4000000], ...], ...}}

Both parse into the same :class:`~repro.trace.model.MeasuredTrace` and
``convert`` between each other losslessly (module floats formatting).  Every
parse error is raised as :class:`~repro.common.errors.TraceError` with the
offending line or key named, so the CLI can report it in one line.

Bundled example traces live under ``traces/`` at the repository root;
:func:`resolve_trace_path` makes the catalog's relative paths
(``traces/wan-measured.csv``) work regardless of the working directory, and
:func:`load_trace_cached` keeps repeated scenario points (grid sweeps, the
golden suite) from re-reading and re-validating the same file.
"""

from __future__ import annotations

import csv
import io
import json
from functools import lru_cache
from pathlib import Path

from repro.common.errors import TraceError
from repro.trace.model import MeasuredTrace, TracePoint

#: The exact CSV header every trace file starts with.
CSV_HEADER = ("time", "node", "up_bps", "down_bps")

#: The JSON format tag (reserved for future schema evolution).
JSON_FORMAT = "repro-trace-v1"

#: Repository root (three levels above ``src/repro/trace``): relative trace
#: paths that do not resolve against the working directory are retried here,
#: so ``traces/wan-measured.csv`` works from any directory.
REPO_ROOT = Path(__file__).resolve().parents[3]


def parse_csv(text: str, name: str = "trace") -> MeasuredTrace:
    """Parse the CSV trace format (see module docstring)."""
    reader = csv.reader(io.StringIO(text))
    rows = [(number, row) for number, row in enumerate(reader, start=1) if row]
    if not rows:
        raise TraceError(f"trace {name!r}: empty CSV file")
    header_number, header = rows[0]
    if tuple(cell.strip() for cell in header) != CSV_HEADER:
        raise TraceError(
            f"trace {name!r} line {header_number}: header must be "
            f"{','.join(CSV_HEADER)!r}, got {','.join(header)!r}"
        )
    per_node: dict[int, list[TracePoint]] = {}
    for number, row in rows[1:]:
        if len(row) != 4:
            raise TraceError(
                f"trace {name!r} line {number}: expected 4 columns, got {len(row)}"
            )
        time_text, node_text, up_text, down_text = (cell.strip() for cell in row)
        try:
            node = int(node_text)
        except ValueError:
            raise TraceError(
                f"trace {name!r} line {number}: node id {node_text!r} is not an integer"
            ) from None
        try:
            point = (float(time_text), float(up_text), float(down_text))
        except ValueError as exc:
            raise TraceError(f"trace {name!r} line {number}: {exc}") from None
        per_node.setdefault(node, []).append(point)
    return MeasuredTrace.from_node_rates(name, per_node)


def to_csv_text(trace: MeasuredTrace) -> str:
    """Serialise a trace to the CSV format (rows grouped by node)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(CSV_HEADER)
    for node in trace.nodes:
        for time, up, down in node.points:
            writer.writerow([_number(time), node.node, _number(up), _number(down)])
    return out.getvalue()


def parse_json(text: str, name: str = "trace") -> MeasuredTrace:
    """Parse the JSON trace format (see module docstring)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"trace {name!r}: invalid JSON: {exc}") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("nodes"), dict):
        raise TraceError(f"trace {name!r}: expected an object with a 'nodes' mapping")
    declared = payload.get("format", JSON_FORMAT)
    if declared != JSON_FORMAT:
        raise TraceError(f"trace {name!r}: unsupported format {declared!r}")
    per_node: dict[int, list[TracePoint]] = {}
    for key, points in payload["nodes"].items():
        try:
            node = int(key)
        except (TypeError, ValueError):
            raise TraceError(f"trace {name!r}: node key {key!r} is not an integer") from None
        if not isinstance(points, list):
            raise TraceError(f"trace {name!r}: node {key} breakpoints must be a list")
        parsed: list[TracePoint] = []
        for index, point in enumerate(points):
            if not isinstance(point, (list, tuple)) or len(point) != 3:
                raise TraceError(
                    f"trace {name!r}: node {key} breakpoint #{index} must be "
                    f"[time, up_bps, down_bps]"
                )
            try:
                parsed.append((float(point[0]), float(point[1]), float(point[2])))
            except (TypeError, ValueError):
                raise TraceError(
                    f"trace {name!r}: node {key} breakpoint #{index} has a "
                    f"non-numeric field: {point!r}"
                ) from None
        per_node[node] = parsed
    return MeasuredTrace.from_node_rates(str(payload.get("name", name)), per_node)


def to_json_text(trace: MeasuredTrace) -> str:
    """Serialise a trace to the JSON format."""
    payload = {
        "format": JSON_FORMAT,
        "name": trace.name,
        "nodes": {
            str(node.node): [[_number(t), _number(u), _number(d)] for t, u, d in node.points]
            for node in trace.nodes
        },
    }
    return json.dumps(payload, indent=2) + "\n"


def _number(value: float) -> float | int:
    """Integral floats serialise as ints so files stay diff-friendly."""
    return int(value) if float(value).is_integer() else value


def _parser_for(path: Path):
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return parse_csv, to_csv_text
    if suffix == ".json":
        return parse_json, to_json_text
    raise TraceError(f"trace file {str(path)!r}: unsupported extension (use .csv or .json)")


def resolve_trace_path(path: str | Path) -> Path:
    """Resolve ``path`` against the working directory, then the repo root."""
    candidate = Path(path)
    if candidate.exists():
        return candidate
    if not candidate.is_absolute():
        bundled = REPO_ROOT / candidate
        if bundled.exists():
            return bundled
    raise TraceError(
        f"trace file {str(path)!r} not found (tried the working directory "
        f"and {str(REPO_ROOT)!r})"
    )


def load_trace(path: str | Path) -> MeasuredTrace:
    """Load and validate a trace file (format by extension)."""
    resolved = resolve_trace_path(path)
    parse, _ = _parser_for(resolved)
    try:
        text = resolved.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"cannot read trace file {str(resolved)!r}: {exc}") from exc
    return parse(text, name=resolved.stem)


def save_trace(trace: MeasuredTrace, path: str | Path) -> Path:
    """Write a trace to ``path`` (format by extension); returns the path."""
    target = Path(path)
    _, serialise = _parser_for(target)
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(serialise(trace), encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"cannot write trace file {str(target)!r}: {exc}") from exc
    return target


@lru_cache(maxsize=64)
def _load_cached(resolved: str) -> MeasuredTrace:
    return load_trace(resolved)


def load_trace_cached(path: str | Path) -> MeasuredTrace:
    """Like :func:`load_trace` with an LRU cache on the resolved path.

    Scenario sweeps and the golden suite hit the same bundled file once per
    point; the cache makes that one parse + validation total.  Traces are
    immutable (frozen dataclasses), so sharing the object is safe.
    """
    return _load_cached(str(resolve_trace_path(path)))


__all__ = [
    "CSV_HEADER",
    "JSON_FORMAT",
    "load_trace",
    "load_trace_cached",
    "parse_csv",
    "parse_json",
    "resolve_trace_path",
    "save_trace",
    "to_csv_text",
    "to_json_text",
]
