"""The measured-bandwidth trace data model.

A :class:`MeasuredTrace` is a set of per-node piecewise-constant bandwidth
breakpoints — ``(time, up_bps, down_bps)`` — of the kind produced by real
measurement campaigns (Pacer-style shaped links, Mahimahi saturator logs,
cloud-provider capacity probes).  The simulator's synthetic bandwidth models
(:mod:`repro.workload.traces`) *generate* shapes; this model *replays*
recorded ones, which is what lets the throughput claims be evaluated under
the bandwidth the paper actually measured.

The model is deliberately plain data: frozen dataclasses over tuples, with
every transform (:meth:`MeasuredTrace.scaled`, :meth:`MeasuredTrace.clipped`,
:meth:`MeasuredTrace.resampled`) returning a new validated trace.
:meth:`MeasuredTrace.bandwidth_traces` is the bridge into the simulator: it
lowers the per-node series to the
:class:`~repro.sim.bandwidth.PiecewiseConstantBandwidth` functions the pipes
integrate.  File parsing and serialisation live in :mod:`repro.trace.io`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.common.errors import TraceError
from repro.sim.bandwidth import PiecewiseConstantBandwidth

#: One breakpoint: ``(time_seconds, up_bytes_per_second, down_bytes_per_second)``.
#: The rate holds from this breakpoint's time until the next one (and the
#: last breakpoint's rate holds forever), exactly like the simulator's
#: piecewise-constant bandwidth functions.
TracePoint = tuple[float, float, float]

#: Replayed rates are floored at this many bytes/second so a measured outage
#: (rate 0) stalls transfers instead of making them literally unfinishable
#: (the pipes reject traces whose trailing rate is zero).
REPLAY_RATE_FLOOR = 1.0


def _validate_points(node: int, points: Sequence[TracePoint]) -> None:
    if not points:
        raise TraceError(f"trace node {node} has no breakpoints")
    previous = -math.inf
    for time, up, down in points:
        for label, value in (("time", time), ("up_bps", up), ("down_bps", down)):
            if not math.isfinite(value):
                raise TraceError(f"trace node {node}: non-finite {label} {value!r}")
        if time < 0:
            raise TraceError(f"trace node {node}: negative time {time}")
        if time <= previous:
            raise TraceError(
                f"trace node {node}: breakpoint times must be strictly "
                f"increasing (got {time} after {previous})"
            )
        if up < 0 or down < 0:
            raise TraceError(f"trace node {node}: negative rate at t={time}")
        previous = time


@dataclass(frozen=True)
class NodeTrace:
    """The measured breakpoints of one node's link (up and down sides)."""

    node: int
    points: tuple[TracePoint, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.node, int) or isinstance(self.node, bool) or self.node < 0:
            raise TraceError(f"node id must be a non-negative integer, got {self.node!r}")
        object.__setattr__(
            self, "points", tuple((float(t), float(u), float(d)) for t, u, d in self.points)
        )
        _validate_points(self.node, self.points)

    def rates_at(self, time: float) -> tuple[float, float]:
        """``(up_bps, down_bps)`` in effect at ``time`` (clamped to the ends)."""
        current = self.points[0]
        for point in self.points:
            if point[0] > time:
                break
            current = point
        return current[1], current[2]


@dataclass(frozen=True)
class MeasuredTrace:
    """A complete measured-bandwidth trace: one breakpoint series per node.

    Node ids must be exactly ``0..num_nodes-1`` — a gap means the file
    references a node it never defines (or vice versa), which is always a
    recording error worth failing on.
    """

    name: str
    nodes: tuple[NodeTrace, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise TraceError(f"trace {self.name!r} defines no nodes")
        ordered = tuple(sorted(self.nodes, key=lambda node: node.node))
        ids = [node.node for node in ordered]
        expected = list(range(len(ordered)))
        if ids != expected:
            unknown = sorted(set(ids) - set(expected))
            missing = sorted(set(expected) - set(ids))
            raise TraceError(
                f"trace {self.name!r} node ids must be contiguous 0..{len(ordered) - 1}: "
                f"unknown ids {unknown}, missing ids {missing}"
            )
        object.__setattr__(self, "nodes", ordered)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_node_rates(
        cls, name: str, per_node: Mapping[int, Iterable[TracePoint]]
    ) -> "MeasuredTrace":
        """Build a trace from ``{node_id: [(time, up_bps, down_bps), ...]}``."""
        nodes = tuple(
            NodeTrace(node=node, points=tuple(points)) for node, points in per_node.items()
        )
        return cls(name=name, nodes=nodes)

    # -- shape -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def duration(self) -> float:
        """Time of the last breakpoint (the final rates hold beyond it)."""
        return max(node.points[-1][0] for node in self.nodes)

    @property
    def num_points(self) -> int:
        return sum(len(node.points) for node in self.nodes)

    def rates_at(self, node: int, time: float) -> tuple[float, float]:
        """``(up_bps, down_bps)`` of ``node`` at ``time``."""
        return self.nodes[node].rates_at(time)

    # -- transforms --------------------------------------------------------

    def scaled(self, factor: float) -> "MeasuredTrace":
        """Every rate multiplied by ``factor`` (breakpoint times unchanged)."""
        if factor <= 0 or not math.isfinite(factor):
            raise TraceError(f"scale factor must be positive and finite, got {factor}")
        return MeasuredTrace(
            name=self.name,
            nodes=tuple(
                NodeTrace(
                    node=node.node,
                    points=tuple((t, u * factor, d * factor) for t, u, d in node.points),
                )
                for node in self.nodes
            ),
        )

    def clipped(self, start: float, end: float) -> "MeasuredTrace":
        """The window ``[start, end)`` of the trace, re-based to time zero.

        The rates in effect at ``start`` become the new first breakpoint, so
        clipping never changes what a replay inside the window would see.

        ``end`` may reach past :attr:`duration` — the final breakpoint's
        rates hold forever (tail-hold), so the clip keeps everything up to
        the last breakpoint and the result's duration is that breakpoint,
        not ``end``.  A window that *starts* at or past ``duration`` holds
        no measured breakpoints at all (it would be pure extrapolation of
        the final rates), so it raises instead of silently succeeding.
        """
        if start < 0 or end <= start:
            raise TraceError(f"need 0 <= start < end, got [{start}, {end})")
        if start >= self.duration:
            raise TraceError(
                f"clip window [{start:g}, {end:g}) starts at or past the trace's "
                f"last breakpoint (duration {self.duration:g} s); nothing "
                f"measured remains"
            )
        nodes = []
        for node in self.nodes:
            up, down = node.rates_at(start)
            points: list[TracePoint] = [(0.0, up, down)]
            for t, u, d in node.points:
                if start < t < end:
                    points.append((t - start, u, d))
            nodes.append(NodeTrace(node=node.node, points=tuple(points)))
        return MeasuredTrace(name=self.name, nodes=tuple(nodes))

    def resampled(self, step: float) -> "MeasuredTrace":
        """The trace sampled on a regular ``step``-second grid.

        Every node gets breakpoints at ``0, step, 2*step, ...`` through the
        trace's duration, each carrying the rates in effect at that instant.
        The result is lossless (identical rate function) exactly when every
        original breakpoint lands on the grid — e.g. a 1 s-sampled recording
        resampled at 0.5 s; a breakpoint *between* grid points has its rate
        change deferred to the next grid point.

        Resampling never changes :attr:`duration`: when the grid does not
        land exactly on the final breakpoint, the last tick is the exact
        original duration (carrying the final rates) rather than the first
        grid point past it — a 5 s trace resampled at 2 s ends at 5, not 6.
        """
        if step <= 0 or not math.isfinite(step):
            raise TraceError(f"resampling step must be positive and finite, got {step}")
        duration = self.duration
        eps = 1e-9 * max(1.0, duration)
        ticks = [0.0]
        i = 1
        while i * step < duration - eps:
            ticks.append(i * step)
            i += 1
        if duration > 0:
            ticks.append(duration)
        nodes = []
        for node in self.nodes:
            points = []
            for t in ticks:
                up, down = node.rates_at(t)
                points.append((t, up, down))
            nodes.append(NodeTrace(node=node.node, points=tuple(points)))
        return MeasuredTrace(name=self.name, nodes=tuple(nodes))

    # -- the bridge into the simulator -------------------------------------

    def bandwidth_traces(
        self,
        num_nodes: int,
        scale: float = 1.0,
        egress_headroom: float = 1.0,
        floor: float = REPLAY_RATE_FLOOR,
    ) -> tuple[list[PiecewiseConstantBandwidth], list[PiecewiseConstantBandwidth]]:
        """Per-node ``(ingress, egress)`` bandwidth functions for a replay.

        Simulated node ``i`` replays trace node ``i % num_trace_nodes``, so a
        cluster larger than the measurement campaign cycles through the
        recorded links.  ``scale`` multiplies every rate (the trace-scaling
        sweep axis), ``egress_headroom`` additionally scales the up side, and
        ``floor`` clamps rates from below (see :data:`REPLAY_RATE_FLOOR`).
        """
        if num_nodes < 1:
            raise TraceError("need at least one replay node")
        if scale <= 0:
            raise TraceError(f"scale must be positive, got {scale}")
        ingress: list[PiecewiseConstantBandwidth] = []
        egress: list[PiecewiseConstantBandwidth] = []
        for i in range(num_nodes):
            node = self.nodes[i % len(self.nodes)]
            ingress.append(
                PiecewiseConstantBandwidth(
                    [(t, max(floor, d * scale)) for t, _, d in node.points]
                )
            )
            egress.append(
                PiecewiseConstantBandwidth(
                    [(t, max(floor, u * scale * egress_headroom)) for t, u, _ in node.points]
                )
            )
        return ingress, egress

    # -- summaries ---------------------------------------------------------

    def stats(self) -> list[dict]:
        """Per-node descriptive statistics (time-weighted over the duration).

        Each entry carries the node id, breakpoint count, and for both sides
        the time-weighted mean/min/max and standard deviation — what
        ``python -m repro.experiments trace inspect`` prints.
        """
        duration = self.duration
        rows = []
        for node in self.nodes:
            row = {"node": node.node, "points": len(node.points)}
            for side, index in (("up", 1), ("down", 2)):
                rates = [point[index] for point in node.points]
                if duration > 0 and len(node.points) > 1:
                    weights = []
                    for j, point in enumerate(node.points):
                        end = node.points[j + 1][0] if j + 1 < len(node.points) else duration
                        weights.append(max(0.0, end - point[0]))
                    total = sum(weights) or 1.0
                    mean = sum(r * w for r, w in zip(rates, weights)) / total
                    var = sum((r - mean) ** 2 * w for r, w in zip(rates, weights)) / total
                else:
                    mean = rates[0]
                    var = 0.0
                row[f"{side}_mean"] = mean
                row[f"{side}_std"] = var**0.5
                row[f"{side}_min"] = min(rates)
                row[f"{side}_max"] = max(rates)
            rows.append(row)
        return rows
