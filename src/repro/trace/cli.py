"""The ``trace`` subcommand family of ``python -m repro.experiments``.

::

    python -m repro.experiments trace inspect traces/wan-measured.csv
    python -m repro.experiments trace convert traces/wan-measured.csv /tmp/wan.json
    python -m repro.experiments trace convert in.csv out.csv --step 0.5 --scale 2
    python -m repro.experiments trace export trace-replay-wan --out telemetry
    python -m repro.experiments trace summarise telemetry/trace-replay-wan-base-seed7.jsonl
    python -m repro.experiments trace plot telemetry/trace-replay-wan-base-seed0.jsonl
    python -m repro.experiments trace diff tests/golden/envelopes/trace-replay-wan.json \\
        telemetry/trace-replay-wan-base-seed0.jsonl
    python -m repro.experiments trace import traces/mahimahi-cellular.down \\
        --format mahimahi --name cellular-lte --out traces/cellular-lte.json

* ``inspect`` prints per-node statistics of a trace file (breakpoints,
  duration, time-weighted mean/min/max rates), or the same as JSON.
* ``convert`` rewrites a trace between the CSV and JSON formats (chosen by
  extension), optionally resampling (``--step``), scaling (``--scale``),
  clipping (``--clip T0 T1``) and renaming (``--name``) on the way.
* ``export`` runs a scenario — catalog name or spec-file path, like
  ``run`` — with telemetry forced on and reports where the JSONL landed.
  Only the base point runs (grids are a ``run`` concern); ``--set``,
  ``--duration`` and ``--seed`` compose like they do for ``run``.
* ``summarise`` reduces a recorded telemetry JSONL (as written by
  ``export``) to time-weighted queue-depth and link-utilisation statistics,
  per node and cluster-wide, as a table or JSON.
* ``plot`` renders a telemetry JSONL to files: per-node queue-depth
  heatmaps (PNG), link-utilisation and queue curves, and the epoch-frontier
  progress curve (SVG).  No plotting library needed — see
  :mod:`repro.trace.plot`.
* ``diff`` compares a telemetry recording against a reference: either a
  second recording or a pinned ``repro-envelope-v1`` envelope (detected by
  content).  Exit status 0 inside tolerance, **1** on any breach.
* ``import`` converts third-party recordings (Mahimahi packet-delivery
  files, cloud-probe logs) into a ``repro-trace-v1`` trace file — see
  :mod:`repro.trace.importers`.
* ``spans`` records (or reads back) causal block-lifecycle spans and
  reduces them to per-phase latency percentiles, commit-latency stats, and
  a critical-path drill-down of the slowest blocks — see
  :mod:`repro.trace.spans`.  Given a scenario name it runs the scenario
  with span recording forced on (``--profile FILE`` additionally runs the
  simulator hot-path profiler); given a ``.jsonl`` file it summarises it.
* ``flame`` lowers a span JSONL or a ``repro-profile-v1`` profiler JSON to
  Chrome trace-event JSON, loadable in Perfetto or ``chrome://tracing``.

Every user error (missing file, malformed trace, bad scenario) is reported
as a one-line ``error:`` on stderr with exit status 2, never a traceback
(``diff`` reserves 1 for "compared fine, but out of tolerance").
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.common.errors import ConfigurationError, TraceError
from repro.trace.io import load_trace, save_trace
from repro.trace.model import MeasuredTrace
from repro.trace.recorder import TelemetrySpec


def add_trace_parser(subparsers) -> None:
    """Register the ``trace`` subcommand tree on the experiments CLI."""
    trace = subparsers.add_parser(
        "trace", help="measured-bandwidth trace utilities (inspect/convert/export)"
    )
    nested = trace.add_subparsers(dest="trace_command", required=True)

    inspect = nested.add_parser("inspect", help="print per-node statistics of a trace file")
    inspect.add_argument("trace", help="path to a .csv or .json trace file")
    inspect.add_argument("--json", action="store_true", help="emit the statistics as JSON")

    convert = nested.add_parser(
        "convert", help="rewrite a trace (CSV <-> JSON), optionally transforming it"
    )
    convert.add_argument("trace", help="source trace file (.csv or .json)")
    convert.add_argument("output", help="destination file (.csv or .json)")
    convert.add_argument("--step", type=float, help="resample onto a regular grid (seconds)")
    convert.add_argument("--scale", type=float, help="multiply every rate by this factor")
    convert.add_argument(
        "--clip",
        nargs=2,
        type=float,
        metavar=("START", "END"),
        help="keep only the [START, END) window, re-based to time zero",
    )
    convert.add_argument("--name", help="rename the trace in the output")

    export = nested.add_parser(
        "export", help="run a scenario with telemetry recording forced on"
    )
    export.add_argument("scenario", help="catalog name or spec-file path (like `run`)")
    export.add_argument(
        "--out", default=None, help="telemetry output directory (default: the spec's)"
    )
    export.add_argument("--duration", type=float, help="virtual seconds to simulate")
    export.add_argument("--seed", type=int, help="master seed for the run")
    export.add_argument(
        "--interval", type=float, default=None, help="sampling interval in virtual seconds"
    )
    export.add_argument(
        "--set",
        dest="overrides",
        metavar="PATH=VALUE",
        action="append",
        default=[],
        help="override a base-spec field by dotted path (repeatable)",
    )
    export.add_argument("--json", action="store_true", help="emit the summary as JSON")

    summarise = nested.add_parser(
        "summarise", help="time-weighted queue/utilisation stats from telemetry JSONL"
    )
    summarise.add_argument("telemetry", help="path to a telemetry .jsonl file (from `export`)")
    summarise.add_argument(
        "--node", type=int, default=None, help="restrict the table to one node id"
    )
    summarise.add_argument("--json", action="store_true", help="emit the statistics as JSON")

    plot = nested.add_parser(
        "plot", help="render telemetry JSONL to queue heatmaps and progress curves"
    )
    plot.add_argument("telemetry", help="path to a telemetry .jsonl file (from `export`)")
    plot.add_argument(
        "--out-dir", default="plots", help="directory for the rendered files (default: plots)"
    )
    plot.add_argument(
        "--series",
        action="append",
        default=None,
        metavar="NAME",
        help="heatmap series to render (repeatable; default: egress_queue, ingress_queue)",
    )
    plot.add_argument(
        "--stem", default=None, help="output filename stem (default: the telemetry stem)"
    )

    diff = nested.add_parser(
        "diff", help="compare telemetry against a recording or a pinned envelope"
    )
    diff.add_argument(
        "reference", help="reference: a telemetry .jsonl or a repro-envelope-v1 .json"
    )
    diff.add_argument("observed", help="the telemetry .jsonl to check")
    diff.add_argument(
        "--rel-tol", type=float, default=None, help="relative tolerance (fraction, e.g. 0.05)"
    )
    diff.add_argument(
        "--abs-tol",
        action="append",
        default=None,
        metavar="SERIES=VALUE",
        help="absolute tolerance floor for one series (repeatable), or a bare "
        "number applying to every series",
    )
    diff.add_argument("--json", action="store_true", help="emit the deltas as JSON")

    importer = nested.add_parser(
        "import", help="convert third-party recordings into a repro-trace-v1 file"
    )
    importer.add_argument(
        "sources", nargs="+", help="downlink recording files, one per node (in node order)"
    )
    importer.add_argument(
        "--format",
        dest="source_format",
        default="mahimahi",
        help="source format (default: mahimahi)",
    )
    importer.add_argument(
        "--up",
        nargs="+",
        default=None,
        metavar="FILE",
        help="matching uplink files (same order); omitted, links are symmetric",
    )
    importer.add_argument(
        "--bin",
        dest="bin_seconds",
        type=float,
        default=None,
        help="binning window in seconds when lowering to rates (default: 1.0)",
    )
    importer.add_argument(
        "--mtu", type=int, default=None, help="bytes per delivery opportunity (default: 1504)"
    )
    importer.add_argument("--name", default=None, help="trace name (default: output stem)")
    importer.add_argument("--out", required=True, help="destination .json or .csv trace file")

    spans = nested.add_parser(
        "spans", help="record or summarise causal block-lifecycle spans"
    )
    spans.add_argument(
        "source",
        help="a span .jsonl file to summarise, or a scenario (catalog name or "
        "spec-file path) to record with span tracing forced on",
    )
    spans.add_argument(
        "--out", default=None, help="span output directory when recording (default: the spec's)"
    )
    spans.add_argument("--duration", type=float, help="virtual seconds to simulate (recording)")
    spans.add_argument("--seed", type=int, help="master seed for the run (recording)")
    spans.add_argument(
        "--set",
        dest="overrides",
        metavar="PATH=VALUE",
        action="append",
        default=[],
        help="override a base-spec field by dotted path (repeatable; recording)",
    )
    spans.add_argument(
        "--top", type=int, default=5, help="slowest commits to drill into (default: 5)"
    )
    spans.add_argument(
        "--profile",
        default=None,
        metavar="FILE",
        help="also run the simulator hot-path profiler and write its "
        "repro-profile-v1 JSON here (recording only)",
    )
    spans.add_argument("--json", action="store_true", help="emit the summary as JSON")

    flame = nested.add_parser(
        "flame", help="lower span JSONL or profiler JSON to Chrome trace-event JSON"
    )
    flame.add_argument(
        "input", help="a span .jsonl (from `spans`) or a repro-profile-v1 .json file"
    )
    flame.add_argument("--out", required=True, help="destination trace-event .json file")


def run_trace_command(args: argparse.Namespace) -> int:
    """Dispatch one parsed ``trace`` invocation; returns the exit status."""
    handlers = {
        "inspect": _inspect,
        "convert": _convert,
        "summarise": _summarise,
        "plot": _plot,
        "diff": _diff,
        "import": _import,
        "export": _export,
        "spans": _spans,
        "flame": _flame,
    }
    try:
        return handlers[args.trace_command](args)
    except (TraceError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _inspect(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    stats = trace.stats()
    if args.json:
        payload = {
            "name": trace.name,
            "num_nodes": trace.num_nodes,
            "duration": trace.duration,
            "num_points": trace.num_points,
            "nodes": stats,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"trace {trace.name}: {trace.num_nodes} node(s), "
        f"{trace.duration:g} s, {trace.num_points} breakpoint(s)"
    )
    header = f"{'node':>4}  {'points':>6}  {'up mean/min/max (MB/s)':>24}  {'down mean/min/max (MB/s)':>24}"
    print(header)
    print("-" * len(header))
    for row in stats:
        up = f"{row['up_mean'] / 1e6:.2f}/{row['up_min'] / 1e6:.2f}/{row['up_max'] / 1e6:.2f}"
        down = (
            f"{row['down_mean'] / 1e6:.2f}/{row['down_min'] / 1e6:.2f}/{row['down_max'] / 1e6:.2f}"
        )
        print(f"{row['node']:>4}  {row['points']:>6}  {up:>24}  {down:>24}")
    return 0


def _convert(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    if args.clip is not None:
        trace = trace.clipped(args.clip[0], args.clip[1])
    if args.step is not None:
        trace = trace.resampled(args.step)
    if args.scale is not None:
        trace = trace.scaled(args.scale)
    if args.name:
        trace = MeasuredTrace(name=args.name, nodes=trace.nodes)
    target = save_trace(trace, args.output)
    print(
        f"wrote {trace.num_nodes} node(s), {trace.num_points} breakpoint(s) to {target}"
    )
    return 0


def _export(args: argparse.Namespace) -> int:
    # Imported here: repro.experiments.cli imports this module at load time.
    from repro.experiments.cli import SpecFileError, resolve_entry
    from repro.experiments.engine import run_scenario
    from repro.experiments.scenario import apply_override

    try:
        entry = resolve_entry(args.scenario)
    except SpecFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    spec = entry.base
    if args.duration is not None:
        spec = replace(spec, duration=args.duration)
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    for assignment in args.overrides:
        path, _, value = assignment.partition("=")
        if not path or not _:
            print(f"error: expected PATH=VALUE, got {assignment!r}", file=sys.stderr)
            return 2
        try:
            parsed = json.loads(value)
        except json.JSONDecodeError:
            parsed = value
        spec = apply_override(spec, path, parsed)
    telemetry = spec.telemetry
    spec = replace(
        spec,
        telemetry=TelemetrySpec(
            enabled=True,
            interval=args.interval if args.interval is not None else telemetry.interval,
            out_dir=args.out if args.out is not None else telemetry.out_dir,
        ),
    )
    result = run_scenario(spec)
    if args.json:
        payload = {
            "scenario": entry.name,
            "telemetry_path": result.telemetry_path,
            "summary": result.summary(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    summary = result.summary()
    print(f"scenario {entry.name}: ran {spec.duration:g} virtual seconds")
    for key in ("protocol", "num_nodes", "mean_throughput", "delivered_epochs"):
        if key in summary:
            print(f"  {key} = {summary[key]}")
    print(f"telemetry written to {result.telemetry_path}")
    return 0


def _read_rows(path: str) -> list:
    """Read telemetry JSONL, wrapping I/O and parse failures as TraceError."""
    from repro.trace.recorder import read_jsonl

    try:
        return read_jsonl(path)
    except OSError as exc:
        raise TraceError(f"cannot read telemetry file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceError(f"malformed telemetry JSONL {path}: {exc}") from exc


def _summarise(args: argparse.Namespace) -> int:
    from repro.trace.analysis import summarise_telemetry

    rows = _read_rows(args.telemetry)
    summary = summarise_telemetry(rows)
    if args.node is not None:
        nodes = [node for node in summary["nodes"] if node["node"] == args.node]
        if not nodes:
            raise TraceError(f"node {args.node} has no samples in {args.telemetry}")
        summary = {**summary, "nodes": nodes}
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    interval = summary.get("interval")
    print(
        f"telemetry {args.telemetry}: {summary['num_nodes']} node(s), "
        f"{summary['cluster']['samples']} sample(s)"
        + (f", interval {interval:g} s" if interval else "")
    )
    header = (
        f"{'node':>7}  {'samples':>7}  {'egress q mean/max':>18}  "
        f"{'ingress q mean/max':>18}  {'egress util':>11}  {'ingress util':>12}"
    )
    print(header)
    print("-" * len(header))
    rows_out = list(summary["nodes"])
    if args.node is None:
        rows_out.append({"node": "cluster", "samples": summary["cluster"]["samples"], **summary["cluster"]})
    for row in rows_out:
        eq, iq = row["egress_queue"], row["ingress_queue"]
        eu, iu = row["egress_util"], row["ingress_util"]
        print(
            f"{row['node']:>7}  {row['samples']:>7}  "
            f"{eq['mean']:>8.1f}/{eq['max']:>9.0f}  "
            f"{iq['mean']:>8.1f}/{iq['max']:>9.0f}  "
            f"{eu['mean']:>11.3f}  {iu['mean']:>12.3f}"
        )
    for row in summary["nodes"]:
        for warning in row.get("warnings", ()):
            print(f"warning: node {row['node']}: {warning}")
    return 0


def _plot(args: argparse.Namespace) -> int:
    from repro.trace.plot import HEATMAP_SERIES, plot_telemetry

    series = tuple(args.series) if args.series else ("egress_queue", "ingress_queue")
    unknown = sorted(set(series) - set(HEATMAP_SERIES))
    if unknown:
        raise TraceError(
            f"unknown heatmap series {unknown} (choose from {', '.join(HEATMAP_SERIES)})"
        )
    rows = _read_rows(args.telemetry)
    stem = args.stem if args.stem else Path(args.telemetry).stem
    written = plot_telemetry(rows, args.out_dir, stem, heatmap_series=series)
    for path in written:
        print(f"wrote {path}")
    return 0


def _parse_abs_tol(assignments):
    """``--abs-tol`` values: ``SERIES=VALUE`` entries or one bare number."""
    if assignments is None:
        return None
    per_series = {}
    for assignment in assignments:
        name, sep, value = assignment.partition("=")
        if not sep:
            if len(assignments) > 1:
                raise TraceError(
                    f"a bare --abs-tol number applies to every series; "
                    f"got {len(assignments)} values"
                )
            try:
                return float(name)
            except ValueError:
                raise TraceError(
                    f"--abs-tol expects SERIES=VALUE or a number, got {assignment!r}"
                ) from None
        try:
            per_series[name] = float(value)
        except ValueError:
            raise TraceError(
                f"--abs-tol {assignment!r}: {value!r} is not a number"
            ) from None
    return per_series


def _diff(args: argparse.Namespace) -> int:
    from repro.trace.diff import breaches, check_envelope, diff_telemetry, is_envelope

    abs_tol = _parse_abs_tol(args.abs_tol)
    reference_payload = None
    if args.reference.endswith(".json"):
        try:
            reference_payload = json.loads(Path(args.reference).read_text(encoding="utf-8"))
        except OSError as exc:
            raise TraceError(f"cannot read reference file: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise TraceError(f"malformed reference JSON {args.reference}: {exc}") from exc
    observed = _read_rows(args.observed)
    if reference_payload is not None:
        if not is_envelope(reference_payload):
            raise TraceError(
                f"reference {args.reference} is JSON but not a repro-envelope-v1 "
                f"envelope; pass a telemetry .jsonl to diff two recordings"
            )
        deltas = check_envelope(observed, reference_payload, abs_tol, args.rel_tol)
    else:
        deltas = diff_telemetry(_read_rows(args.reference), observed, abs_tol, args.rel_tol)
    failed = breaches(deltas)
    if args.json:
        print(
            json.dumps(
                {
                    "reference": args.reference,
                    "observed": args.observed,
                    "breaches": len(failed),
                    "deltas": [delta.as_dict() for delta in deltas],
                },
                indent=2,
            )
        )
        return 1 if failed else 0
    header = (
        f"{'node':>7}  {'series':>13}  {'stat':>4}  {'reference':>12}  "
        f"{'observed':>12}  {'delta':>12}  {'allowed':>10}  "
    )
    print(header)
    print("-" * len(header))
    for delta in deltas:
        flag = "BREACH" if delta.breach else "ok"
        print(
            f"{delta.node:>7}  {delta.series:>13}  {delta.stat:>4}  "
            f"{delta.reference:>12.3f}  {delta.observed:>12.3f}  "
            f"{delta.delta:>+12.3f}  {delta.allowed:>10.3f}  {flag}"
        )
    if failed:
        print(
            f"{len(failed)} of {len(deltas)} compared series out of tolerance",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(deltas)} compared series within tolerance")
    return 0


def _record_spans(args: argparse.Namespace) -> tuple[str, list]:
    """Run a scenario with span recording forced on; returns (path, rows)."""
    from repro.experiments.cli import SpecFileError, resolve_entry
    from repro.experiments.engine import run_scenario
    from repro.experiments.options import ExecutionOptions
    from repro.experiments.scenario import apply_override
    from repro.sim.profiler import SimProfiler
    from repro.trace.spans import SpanSpec

    try:
        entry = resolve_entry(args.source)
    except SpecFileError as exc:
        raise TraceError(str(exc)) from None
    except KeyError as exc:
        raise TraceError(exc.args[0]) from None
    spec = entry.base
    if args.duration is not None:
        spec = replace(spec, duration=args.duration)
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    for assignment in args.overrides:
        path, sep, value = assignment.partition("=")
        if not path or not sep:
            raise TraceError(f"expected PATH=VALUE, got {assignment!r}")
        try:
            parsed = json.loads(value)
        except json.JSONDecodeError:
            parsed = value
        spec = apply_override(spec, path, parsed)
    spec = replace(
        spec,
        spans=SpanSpec(
            enabled=True,
            out_dir=args.out if args.out is not None else spec.spans.out_dir,
        ),
    )
    profiler = SimProfiler() if args.profile else None
    result = run_scenario(spec, options=ExecutionOptions(profiler=profiler))
    if profiler is not None:
        target = Path(args.profile)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(profiler.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"profile written to {target}")
    return result.span_path, _read_rows(result.span_path)


def _spans(args: argparse.Namespace) -> int:
    from repro.trace.spans import summarise_spans

    source = Path(args.source)
    if source.suffix == ".jsonl" or source.is_file():
        if args.profile:
            raise TraceError(
                "--profile records a fresh run; it cannot be combined with "
                "an existing span file"
            )
        span_path = args.source
        rows = _read_rows(args.source)
    else:
        span_path, rows = _record_spans(args)
    summary = summarise_spans(rows, top=args.top)
    if args.json:
        print(json.dumps({"span_path": str(span_path), "summary": summary}, indent=2))
        return 0
    commits = summary["commits"]
    print(
        f"spans {span_path}: {summary['num_spans']} span(s), "
        f"{commits['count']} committed block(s)"
    )
    header = (
        f"{'phase':>14}  {'count':>6}  {'mean':>8}  {'p50':>8}  "
        f"{'p90':>8}  {'p99':>8}  {'max':>8}"
    )
    print(header)
    print("-" * len(header))
    for name, stats in summary["phases"].items():
        print(
            f"{name:>14}  {stats['count']:>6}  {stats['mean']:>8.4f}  "
            f"{stats['p50']:>8.4f}  {stats['p90']:>8.4f}  "
            f"{stats['p99']:>8.4f}  {stats['max']:>8.4f}"
        )
    if commits["count"]:
        print(
            f"commit latency: mean {commits['mean_latency']:.4f} s, "
            f"p50 {commits['p50_latency']:.4f} s, "
            f"p90 {commits['p90_latency']:.4f} s, "
            f"max {commits['max_latency']:.4f} s"
        )
    for block in summary["slowest"]:
        parts = ", ".join(
            f"{name} {seconds:.4f}" for name, seconds in block["phase_seconds"].items()
        )
        print(
            f"slowest: node {block['node']} epoch {block['epoch']}: "
            f"{block['latency']:.4f} s ({parts})"
        )
        for step in block["critical_path"]:
            where = "".join(
                f" {key}={step[key]}"
                for key in ("slot", "round", "src", "dst", "transfer")
                if key in step
            )
            print(
                f"    waited on {step['name']}{where}: "
                f"{step['duration']:.4f} s (ends {step['end']:.4f})"
            )
    return 0


def _flame(args: argparse.Namespace) -> int:
    from repro.trace.spans import profile_to_chrome, spans_to_chrome

    source = Path(args.input)
    if source.suffix == ".json":
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except OSError as exc:
            raise TraceError(f"cannot read profile file: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise TraceError(f"malformed profile JSON {source}: {exc}") from exc
        trace = profile_to_chrome(payload)
    else:
        trace = spans_to_chrome(_read_rows(args.input))
    target = Path(args.out)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(trace, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {len(trace['traceEvents'])} trace event(s) to {target}")
    return 0


def _import(args: argparse.Namespace) -> int:
    from repro.trace.importers import DEFAULT_BIN_SECONDS, IMPORTERS, MTU_BYTES

    if args.source_format not in IMPORTERS:
        raise TraceError(
            f"unknown import format {args.source_format!r} "
            f"(supported: {', '.join(sorted(IMPORTERS))})"
        )
    importer = IMPORTERS[args.source_format]
    name = args.name if args.name else Path(args.out).stem
    trace = importer(
        name,
        args.sources,
        up_files=args.up,
        bin_seconds=args.bin_seconds if args.bin_seconds is not None else DEFAULT_BIN_SECONDS,
        mtu_bytes=args.mtu if args.mtu is not None else MTU_BYTES,
    )
    target = save_trace(trace, args.out)
    print(
        f"imported {len(args.sources)} {args.source_format} recording(s): "
        f"trace {trace.name!r}, {trace.num_nodes} node(s), "
        f"{trace.duration:g} s, {trace.num_points} breakpoint(s) -> {target}"
    )
    return 0


__all__ = ["add_trace_parser", "run_trace_command"]
