"""The ``trace`` subcommand family of ``python -m repro.experiments``.

::

    python -m repro.experiments trace inspect traces/wan-measured.csv
    python -m repro.experiments trace convert traces/wan-measured.csv /tmp/wan.json
    python -m repro.experiments trace convert in.csv out.csv --step 0.5 --scale 2
    python -m repro.experiments trace export trace-replay-wan --out telemetry
    python -m repro.experiments trace summarise telemetry/trace-replay-wan-base-seed7.jsonl

* ``inspect`` prints per-node statistics of a trace file (breakpoints,
  duration, time-weighted mean/min/max rates), or the same as JSON.
* ``convert`` rewrites a trace between the CSV and JSON formats (chosen by
  extension), optionally resampling (``--step``), scaling (``--scale``),
  clipping (``--clip T0 T1``) and renaming (``--name``) on the way.
* ``export`` runs a scenario — catalog name or spec-file path, like
  ``run`` — with telemetry forced on and reports where the JSONL landed.
  Only the base point runs (grids are a ``run`` concern); ``--set``,
  ``--duration`` and ``--seed`` compose like they do for ``run``.
* ``summarise`` reduces a recorded telemetry JSONL (as written by
  ``export``) to time-weighted queue-depth and link-utilisation statistics,
  per node and cluster-wide, as a table or JSON.

Every user error (missing file, malformed trace, bad scenario) is reported
as a one-line ``error:`` on stderr with exit status 2, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.common.errors import ConfigurationError, TraceError
from repro.trace.io import load_trace, save_trace
from repro.trace.model import MeasuredTrace
from repro.trace.recorder import TelemetrySpec


def add_trace_parser(subparsers) -> None:
    """Register the ``trace`` subcommand tree on the experiments CLI."""
    trace = subparsers.add_parser(
        "trace", help="measured-bandwidth trace utilities (inspect/convert/export)"
    )
    nested = trace.add_subparsers(dest="trace_command", required=True)

    inspect = nested.add_parser("inspect", help="print per-node statistics of a trace file")
    inspect.add_argument("trace", help="path to a .csv or .json trace file")
    inspect.add_argument("--json", action="store_true", help="emit the statistics as JSON")

    convert = nested.add_parser(
        "convert", help="rewrite a trace (CSV <-> JSON), optionally transforming it"
    )
    convert.add_argument("trace", help="source trace file (.csv or .json)")
    convert.add_argument("output", help="destination file (.csv or .json)")
    convert.add_argument("--step", type=float, help="resample onto a regular grid (seconds)")
    convert.add_argument("--scale", type=float, help="multiply every rate by this factor")
    convert.add_argument(
        "--clip",
        nargs=2,
        type=float,
        metavar=("START", "END"),
        help="keep only the [START, END) window, re-based to time zero",
    )
    convert.add_argument("--name", help="rename the trace in the output")

    export = nested.add_parser(
        "export", help="run a scenario with telemetry recording forced on"
    )
    export.add_argument("scenario", help="catalog name or spec-file path (like `run`)")
    export.add_argument(
        "--out", default=None, help="telemetry output directory (default: the spec's)"
    )
    export.add_argument("--duration", type=float, help="virtual seconds to simulate")
    export.add_argument("--seed", type=int, help="master seed for the run")
    export.add_argument(
        "--interval", type=float, default=None, help="sampling interval in virtual seconds"
    )
    export.add_argument(
        "--set",
        dest="overrides",
        metavar="PATH=VALUE",
        action="append",
        default=[],
        help="override a base-spec field by dotted path (repeatable)",
    )
    export.add_argument("--json", action="store_true", help="emit the summary as JSON")

    summarise = nested.add_parser(
        "summarise", help="time-weighted queue/utilisation stats from telemetry JSONL"
    )
    summarise.add_argument("telemetry", help="path to a telemetry .jsonl file (from `export`)")
    summarise.add_argument(
        "--node", type=int, default=None, help="restrict the table to one node id"
    )
    summarise.add_argument("--json", action="store_true", help="emit the statistics as JSON")


def run_trace_command(args: argparse.Namespace) -> int:
    """Dispatch one parsed ``trace`` invocation; returns the exit status."""
    try:
        if args.trace_command == "inspect":
            return _inspect(args)
        if args.trace_command == "convert":
            return _convert(args)
        if args.trace_command == "summarise":
            return _summarise(args)
        return _export(args)
    except (TraceError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _inspect(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    stats = trace.stats()
    if args.json:
        payload = {
            "name": trace.name,
            "num_nodes": trace.num_nodes,
            "duration": trace.duration,
            "num_points": trace.num_points,
            "nodes": stats,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"trace {trace.name}: {trace.num_nodes} node(s), "
        f"{trace.duration:g} s, {trace.num_points} breakpoint(s)"
    )
    header = f"{'node':>4}  {'points':>6}  {'up mean/min/max (MB/s)':>24}  {'down mean/min/max (MB/s)':>24}"
    print(header)
    print("-" * len(header))
    for row in stats:
        up = f"{row['up_mean'] / 1e6:.2f}/{row['up_min'] / 1e6:.2f}/{row['up_max'] / 1e6:.2f}"
        down = (
            f"{row['down_mean'] / 1e6:.2f}/{row['down_min'] / 1e6:.2f}/{row['down_max'] / 1e6:.2f}"
        )
        print(f"{row['node']:>4}  {row['points']:>6}  {up:>24}  {down:>24}")
    return 0


def _convert(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    if args.clip is not None:
        trace = trace.clipped(args.clip[0], args.clip[1])
    if args.step is not None:
        trace = trace.resampled(args.step)
    if args.scale is not None:
        trace = trace.scaled(args.scale)
    if args.name:
        trace = MeasuredTrace(name=args.name, nodes=trace.nodes)
    target = save_trace(trace, args.output)
    print(
        f"wrote {trace.num_nodes} node(s), {trace.num_points} breakpoint(s) to {target}"
    )
    return 0


def _export(args: argparse.Namespace) -> int:
    # Imported here: repro.experiments.cli imports this module at load time.
    from repro.experiments.cli import SpecFileError, resolve_entry
    from repro.experiments.engine import run_scenario
    from repro.experiments.scenario import apply_override

    try:
        entry = resolve_entry(args.scenario)
    except SpecFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    spec = entry.base
    if args.duration is not None:
        spec = replace(spec, duration=args.duration)
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    for assignment in args.overrides:
        path, _, value = assignment.partition("=")
        if not path or not _:
            print(f"error: expected PATH=VALUE, got {assignment!r}", file=sys.stderr)
            return 2
        try:
            parsed = json.loads(value)
        except json.JSONDecodeError:
            parsed = value
        spec = apply_override(spec, path, parsed)
    telemetry = spec.telemetry
    spec = replace(
        spec,
        telemetry=TelemetrySpec(
            enabled=True,
            interval=args.interval if args.interval is not None else telemetry.interval,
            out_dir=args.out if args.out is not None else telemetry.out_dir,
        ),
    )
    result = run_scenario(spec)
    if args.json:
        payload = {
            "scenario": entry.name,
            "telemetry_path": result.telemetry_path,
            "summary": result.summary(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    summary = result.summary()
    print(f"scenario {entry.name}: ran {spec.duration:g} virtual seconds")
    for key in ("protocol", "num_nodes", "mean_throughput", "delivered_epochs"):
        if key in summary:
            print(f"  {key} = {summary[key]}")
    print(f"telemetry written to {result.telemetry_path}")
    return 0


def _summarise(args: argparse.Namespace) -> int:
    from repro.trace.analysis import summarise_telemetry
    from repro.trace.recorder import read_jsonl

    try:
        rows = read_jsonl(args.telemetry)
    except OSError as exc:
        raise TraceError(f"cannot read telemetry file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceError(f"malformed telemetry JSONL {args.telemetry}: {exc}") from exc
    summary = summarise_telemetry(rows)
    if args.node is not None:
        nodes = [node for node in summary["nodes"] if node["node"] == args.node]
        if not nodes:
            raise TraceError(f"node {args.node} has no samples in {args.telemetry}")
        summary = {**summary, "nodes": nodes}
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    interval = summary.get("interval")
    print(
        f"telemetry {args.telemetry}: {summary['num_nodes']} node(s), "
        f"{summary['cluster']['samples']} sample(s)"
        + (f", interval {interval:g} s" if interval else "")
    )
    header = (
        f"{'node':>7}  {'samples':>7}  {'egress q mean/max':>18}  "
        f"{'ingress q mean/max':>18}  {'egress util':>11}  {'ingress util':>12}"
    )
    print(header)
    print("-" * len(header))
    rows_out = list(summary["nodes"])
    if args.node is None:
        rows_out.append({"node": "cluster", "samples": summary["cluster"]["samples"], **summary["cluster"]})
    for row in rows_out:
        eq, iq = row["egress_queue"], row["ingress_queue"]
        eu, iu = row["egress_util"], row["ingress_util"]
        print(
            f"{row['node']:>7}  {row['samples']:>7}  "
            f"{eq['mean']:>8.1f}/{eq['max']:>9.0f}  "
            f"{iq['mean']:>8.1f}/{iq['max']:>9.0f}  "
            f"{eu['mean']:>11.3f}  {iu['mean']:>12.3f}"
        )
    return 0


__all__ = ["add_trace_parser", "run_trace_command"]
