"""Structured diffs of telemetry recordings and golden envelopes.

``trace summarise`` reduces a recording to per-node time-weighted statistics;
this module *compares* those reductions, which is what turns the telemetry
layer into a regression gate.  Two shapes of comparison:

* **recording vs recording** (:func:`diff_telemetry`) — the per-node,
  per-series deltas between two JSONL streams, e.g. the same scenario
  before and after a perf refactor;
* **recording vs envelope** (:func:`check_envelope`) — a recording checked
  against a pinned ``repro-envelope-v1`` file (the reduced mean/max of each
  series per node, written by the golden harness under
  ``tests/golden/envelopes/``), the form CI runs on every push.

Both produce the same structured :class:`SeriesDelta` rows.  A delta
breaches when it exceeds ``max(abs_tol, rel_tol * |reference|)`` — an
absolute floor so near-zero series (an idle link's queue) don't trip on
noise-scale wiggles, plus a relative band so deep queues are judged
proportionally.  The summaries themselves are deterministic functions of the
spec, so the tolerances exist to *declare how much intentional drift counts
as a regression*, not to absorb nondeterminism.

The CLI (``python -m repro.experiments trace diff A B``) exits 0 when every
series stays inside tolerance, **1** on any breach, and 2 on usage errors
(missing files, malformed JSONL, mismatched node sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.common.errors import TraceError
from repro.trace.analysis import summarise_telemetry

#: The on-disk format tag of a pinned envelope file.
ENVELOPE_FORMAT = "repro-envelope-v1"

#: The series an envelope pins, and a diff compares, per node.
ENVELOPE_SERIES = ("egress_queue", "ingress_queue", "egress_util", "ingress_util")

#: The statistics compared per series.
ENVELOPE_STATS = ("mean", "max")

#: Default relative tolerance: 5% of the reference value.
DEFAULT_REL_TOL = 0.05

#: Default absolute floors per series — bytes for queue depths (a near-idle
#: link's queue may legitimately wiggle by a packet), fractions for
#: utilisations.
DEFAULT_ABS_TOL: Mapping[str, float] = {
    "egress_queue": 2048.0,
    "ingress_queue": 2048.0,
    "egress_util": 0.01,
    "ingress_util": 0.01,
}


@dataclass(frozen=True)
class SeriesDelta:
    """One compared statistic: a node's series stat against its reference."""

    node: int | str  # node id, or "cluster" for the aggregate row
    series: str
    stat: str
    reference: float
    observed: float
    allowed: float

    @property
    def delta(self) -> float:
        return self.observed - self.reference

    @property
    def breach(self) -> bool:
        return abs(self.delta) > self.allowed

    def as_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "series": self.series,
            "stat": self.stat,
            "reference": self.reference,
            "observed": self.observed,
            "delta": self.delta,
            "allowed": self.allowed,
            "breach": self.breach,
        }


def _node_stats(summary: Mapping[str, Any]) -> dict[int | str, dict[str, dict[str, float]]]:
    """``summarise_telemetry`` output -> ``{node: {series: {stat: value}}}``."""
    stats: dict[int | str, dict[str, dict[str, float]]] = {}
    for node in summary["nodes"]:
        stats[int(node["node"])] = {
            series: {stat: float(node[series][stat]) for stat in ENVELOPE_STATS}
            for series in ENVELOPE_SERIES
            if series in node
        }
    stats["cluster"] = {
        series: {stat: float(summary["cluster"][series][stat]) for stat in ENVELOPE_STATS}
        for series in ENVELOPE_SERIES
        if series in summary["cluster"]
    }
    return stats


def _resolve_abs_tol(
    abs_tol: Mapping[str, float] | float | None,
) -> Mapping[str, float]:
    if abs_tol is None:
        return DEFAULT_ABS_TOL
    if isinstance(abs_tol, (int, float)):
        return {series: float(abs_tol) for series in ENVELOPE_SERIES}
    return {**DEFAULT_ABS_TOL, **{k: float(v) for k, v in abs_tol.items()}}


def diff_node_stats(
    reference: Mapping[int | str, Mapping[str, Mapping[str, float]]],
    observed: Mapping[int | str, Mapping[str, Mapping[str, float]]],
    abs_tol: Mapping[str, float] | float | None = None,
    rel_tol: float | None = None,
) -> list[SeriesDelta]:
    """Compare two ``{node: {series: {stat: value}}}`` maps.

    Raises:
        TraceError: when the node sets differ — a diff across different
            clusters is a usage error, not a drift.
    """
    if set(reference) != set(observed):
        missing = sorted(str(n) for n in set(reference) - set(observed))
        extra = sorted(str(n) for n in set(observed) - set(reference))
        raise TraceError(
            f"telemetry node sets differ: missing {missing or 'none'}, "
            f"unexpected {extra or 'none'}"
        )
    floors = _resolve_abs_tol(abs_tol)
    rel = DEFAULT_REL_TOL if rel_tol is None else float(rel_tol)
    if rel < 0:
        raise TraceError(f"relative tolerance must be non-negative, got {rel}")
    deltas: list[SeriesDelta] = []
    for node in sorted(reference, key=str):
        for series, stats in reference[node].items():
            if series not in observed[node]:
                raise TraceError(f"node {node} is missing the {series!r} series")
            for stat, value in stats.items():
                deltas.append(
                    SeriesDelta(
                        node=node,
                        series=series,
                        stat=stat,
                        reference=value,
                        observed=float(observed[node][series][stat]),
                        allowed=max(floors.get(series, 0.0), rel * abs(value)),
                    )
                )
    return deltas


def diff_telemetry(
    reference_rows: Iterable[Mapping[str, Any]],
    observed_rows: Iterable[Mapping[str, Any]],
    abs_tol: Mapping[str, float] | float | None = None,
    rel_tol: float | None = None,
) -> list[SeriesDelta]:
    """Per-node, per-series time-weighted deltas between two recordings."""
    return diff_node_stats(
        _node_stats(summarise_telemetry(reference_rows)),
        _node_stats(summarise_telemetry(observed_rows)),
        abs_tol=abs_tol,
        rel_tol=rel_tol,
    )


# --------------------------------------------------------------------------
# Envelopes


def envelope_from_summary(
    summary: Mapping[str, Any],
    scenario: str | None = None,
    run: Mapping[str, Any] | None = None,
    abs_tol: Mapping[str, float] | None = None,
    rel_tol: float = DEFAULT_REL_TOL,
) -> dict[str, Any]:
    """Reduce a ``summarise_telemetry`` summary to a pinnable envelope.

    The envelope records the per-node (and cluster) mean/max of each series
    together with the tolerances future recordings are held to and the run
    configuration (duration/interval/seed) that reproduces it, so the CI
    gate and the golden harness agree on what "the same run" means.
    """
    stats = _node_stats(summary)
    cluster = stats.pop("cluster")
    payload: dict[str, Any] = {
        "format": ENVELOPE_FORMAT,
        "scenario": scenario,
        "run": dict(run or {}),
        "tolerances": {"rel": rel_tol, "abs": dict(_resolve_abs_tol(abs_tol))},
        "num_nodes": len(stats),
        "nodes": {str(node): series for node, series in sorted(stats.items())},
        "cluster": cluster,
    }
    return payload


def is_envelope(payload: Any) -> bool:
    """True when ``payload`` is a parsed ``repro-envelope-v1`` object."""
    return isinstance(payload, Mapping) and payload.get("format") == ENVELOPE_FORMAT


def _envelope_stats(envelope: Mapping[str, Any]) -> dict[int | str, dict]:
    if not is_envelope(envelope):
        raise TraceError(
            f"not a {ENVELOPE_FORMAT} envelope "
            f"(format = {envelope.get('format') if isinstance(envelope, Mapping) else envelope!r})"
        )
    try:
        stats: dict[int | str, dict] = {
            int(node): series for node, series in envelope["nodes"].items()
        }
        stats["cluster"] = envelope["cluster"]
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed envelope: {exc!r}") from exc
    return stats


def check_envelope(
    rows: Iterable[Mapping[str, Any]],
    envelope: Mapping[str, Any],
    abs_tol: Mapping[str, float] | float | None = None,
    rel_tol: float | None = None,
) -> list[SeriesDelta]:
    """Check a recording against a pinned envelope.

    Tolerances resolve in priority order: explicit arguments, then the
    envelope's own ``tolerances`` block, then the module defaults.
    """
    tolerances = envelope.get("tolerances", {}) if isinstance(envelope, Mapping) else {}
    if abs_tol is None:
        abs_tol = tolerances.get("abs")
    if rel_tol is None:
        rel_tol = tolerances.get("rel")
    return diff_node_stats(
        _envelope_stats(envelope),
        _node_stats(summarise_telemetry(rows)),
        abs_tol=abs_tol,
        rel_tol=rel_tol,
    )


def breaches(deltas: Iterable[SeriesDelta]) -> list[SeriesDelta]:
    """The subset of deltas outside tolerance."""
    return [delta for delta in deltas if delta.breach]


__all__ = [
    "DEFAULT_ABS_TOL",
    "DEFAULT_REL_TOL",
    "ENVELOPE_FORMAT",
    "ENVELOPE_SERIES",
    "ENVELOPE_STATS",
    "SeriesDelta",
    "breaches",
    "check_envelope",
    "diff_node_stats",
    "diff_telemetry",
    "envelope_from_summary",
    "is_envelope",
]
