"""Summary statistics over recorded telemetry time-series.

:mod:`repro.trace.recorder` samples per-node link state onto a virtual-time
grid and writes it as JSONL; this module reduces those rows to the numbers
a person actually asks of a run — how deep did the queues get, how busy
were the links — without re-running anything.

Two conventions, both time-weighted so irregular grids (clipped runs,
changed intervals) are handled correctly:

* **Queue depths** are instantaneous snapshots; each sample's value is held
  until the next sample (a left-continuous step function), so the mean is
  weighted by the gap *after* each sample and the final sample carries no
  weight.
* **Utilisations** are already averages over the interval *preceding* the
  sample (the recorder derives them from busy-time deltas), so the mean is
  weighted by the gap *before* each sample — the t = 0 row, whose interval
  is empty, carries no weight.

All reductions are vectorised over numpy arrays: a long run's telemetry
(hundreds of thousands of rows) summarises in milliseconds.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from repro.common.errors import TraceError

#: The sample-row series summarised per node, with their weighting rule.
_STEP_FIELDS = ("egress_queue", "ingress_queue")
_INTERVAL_FIELDS = ("egress_util", "ingress_util")


def _weighted_stats(values: np.ndarray, weights: np.ndarray) -> dict[str, float]:
    """Mean (by ``weights``) and max of ``values``.

    When the total weight is zero (a single-sample series, or every sample
    at the same instant) there is no interval to weight over, so the mean
    falls back to the plain unweighted mean — a lone sample reports its
    actual value, matching what ``max`` already said, instead of 0.
    """
    total = float(weights.sum())
    if total > 0:
        mean = float((values * weights).sum() / total)
    else:
        mean = float(values.mean()) if values.size else 0.0
    return {
        "mean": mean,
        "max": float(values.max()) if values.size else 0.0,
    }


def summarise_node_samples(rows: list[Mapping[str, Any]]) -> dict[str, Any]:
    """Summarise one node's ``sample`` rows (already sorted by time)."""
    t = np.asarray([row["t"] for row in rows], dtype=np.float64)
    gaps = np.diff(t)
    if np.any(gaps < 0):
        raise TraceError("telemetry samples are not sorted by time")
    # Hold-forward weights for snapshots, hold-backward for interval rates.
    forward = np.append(gaps, 0.0)
    backward = np.insert(gaps, 0, 0.0)
    summary: dict[str, Any] = {
        "samples": len(rows),
        "t_start": float(t[0]),
        "t_end": float(t[-1]),
    }
    if len(rows) == 1:
        summary["warnings"] = ["single sample: means are unweighted instantaneous values"]
    for name in _STEP_FIELDS:
        values = np.asarray([row.get(name, 0) for row in rows], dtype=np.float64)
        summary[name] = _weighted_stats(values, forward)
    for name in _INTERVAL_FIELDS:
        values = np.asarray([row.get(name, 0.0) for row in rows], dtype=np.float64)
        summary[name] = _weighted_stats(values, backward)
    return summary


def summarise_telemetry(rows: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Reduce telemetry rows (as from ``read_jsonl``) to per-node statistics.

    Returns a dict with ``num_nodes``/``interval`` echoed from the meta row
    (when present), a ``nodes`` list of per-node summaries, and a
    ``cluster`` aggregate (mean of the per-node means, max of the maxes).

    Raises:
        TraceError: if the rows contain no ``sample`` rows.
    """
    meta: Mapping[str, Any] | None = None
    per_node: dict[int, list[Mapping[str, Any]]] = {}
    for row in rows:
        kind = row.get("kind")
        if kind == "meta" and meta is None:
            meta = row
        elif kind == "sample":
            per_node.setdefault(int(row["node"]), []).append(row)
    if not per_node:
        raise TraceError("no sample rows in telemetry (was recording enabled?)")

    nodes = []
    for node_id in sorted(per_node):
        summary = summarise_node_samples(per_node[node_id])
        summary = {"node": node_id, **summary}
        nodes.append(summary)

    cluster: dict[str, Any] = {
        "samples": int(sum(node["samples"] for node in nodes)),
    }
    for name in _STEP_FIELDS + _INTERVAL_FIELDS:
        means = np.asarray([node[name]["mean"] for node in nodes], dtype=np.float64)
        maxes = np.asarray([node[name]["max"] for node in nodes], dtype=np.float64)
        cluster[name] = {"mean": float(means.mean()), "max": float(maxes.max())}

    result: dict[str, Any] = {
        "num_nodes": len(nodes),
        "nodes": nodes,
        "cluster": cluster,
    }
    if meta is not None:
        result["recorded_nodes"] = meta.get("num_nodes")
        result["interval"] = meta.get("interval")
    return result


__all__ = ["summarise_node_samples", "summarise_telemetry"]
