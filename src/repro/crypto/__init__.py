"""Cryptographic substrates: hashing and Merkle trees.

AVID-M (S3 of the paper) commits to the array of erasure-coded chunks with
a Merkle tree and ships one Merkle proof with every chunk, so this package
provides a compact binary Merkle tree with inclusion proofs, plus the hash
helpers used throughout the codebase.
"""

from repro.crypto.hashing import DIGEST_SIZE, hash_data, hash_pair
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root, verify_proof

__all__ = [
    "DIGEST_SIZE",
    "MerkleProof",
    "MerkleTree",
    "hash_data",
    "hash_pair",
    "merkle_root",
    "verify_proof",
]
