"""Binary Merkle tree with inclusion proofs.

AVID-M commits to the array of ``N`` erasure-coded chunks by the root of a
Merkle tree built over them (Fig. 3 of the paper).  The ``i``-th server
receives its chunk together with a proof that it is the ``i``-th leaf under
that root, and verifies the proof before accepting the chunk.

The tree pads the leaf layer to the next power of two with a fixed empty
digest so that proof sizes are ``ceil(log2 N)`` siblings.

Every level is stored as one packed ``bytes`` buffer of 32-byte digests,
built bottom-up in a single :mod:`hashlib` pass per level — no per-node
list allocations.  Proofs slice siblings straight out of those buffers;
:meth:`MerkleTree.proofs_all` is the convenience form for AVID-M's
"one proof per server" dispersal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import (
    DIGEST_SIZE,
    digest_leaves_into,
    digest_level_into,
    hash_data,
    hash_pair,
)

_EMPTY_LEAF = hash_data(b"\x00merkle-padding")


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf.

    Attributes:
        index: position of the leaf among the original (unpadded) leaves.
        siblings: digests of the sibling nodes from the leaf up to the root.
    """

    index: int
    siblings: tuple[bytes, ...]

    @property
    def wire_size(self) -> int:
        """Bytes this proof occupies on the wire (index encoded in 4 bytes)."""
        return 4 + DIGEST_SIZE * len(self.siblings)


class MerkleTree:
    """A Merkle tree over a fixed list of leaf payloads."""

    def __init__(self, leaves: list[bytes]):
        if not leaves:
            raise ValueError("Merkle tree needs at least one leaf")
        self._num_leaves = len(leaves)
        width = 1
        while width < len(leaves):
            width *= 2
        level = bytearray(width * DIGEST_SIZE)
        digest_leaves_into(level, leaves)
        for pos in range(len(leaves), width):
            level[pos * DIGEST_SIZE : (pos + 1) * DIGEST_SIZE] = _EMPTY_LEAF
        #: Packed digest buffers, leaf level first, root level (32 bytes) last.
        self._levels: list[bytes] = [bytes(level)]
        while width > 1:
            width //= 2
            parent = bytearray(width * DIGEST_SIZE)
            digest_level_into(parent, self._levels[-1])
            self._levels.append(bytes(parent))

    @property
    def root(self) -> bytes:
        """Root digest of the tree."""
        return self._levels[-1]

    @property
    def num_leaves(self) -> int:
        """Number of original (unpadded) leaves."""
        return self._num_leaves

    def _sibling(self, depth: int, pos: int) -> bytes:
        level = self._levels[depth]
        start = (pos ^ 1) * DIGEST_SIZE
        return level[start : start + DIGEST_SIZE]

    def proof(self, index: int) -> MerkleProof:
        """Build the inclusion proof for leaf ``index``."""
        if not 0 <= index < self._num_leaves:
            raise IndexError(f"leaf index {index} out of range [0, {self._num_leaves})")
        siblings: list[bytes] = []
        pos = index
        for depth in range(len(self._levels) - 1):
            siblings.append(self._sibling(depth, pos))
            pos //= 2
        return MerkleProof(index=index, siblings=tuple(siblings))

    def proofs_all(self) -> list[MerkleProof]:
        """Inclusion proofs for every original leaf.

        What AVID-M's dispersal needs (one proof per server); proofs slice
        their siblings straight out of the packed level buffers.
        """
        return [self.proof(index) for index in range(self._num_leaves)]


def merkle_root(leaves: list[bytes]) -> bytes:
    """Convenience helper: the root of a tree over ``leaves``."""
    return MerkleTree(leaves).root


def verify_proof(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check that ``leaf`` is the ``proof.index``-th leaf under ``root``."""
    digest = hash_data(leaf)
    pos = proof.index
    for sibling in proof.siblings:
        if pos % 2 == 0:
            digest = hash_pair(digest, sibling)
        else:
            digest = hash_pair(sibling, digest)
        pos //= 2
    return digest == root
