"""Binary Merkle tree with inclusion proofs.

AVID-M commits to the array of ``N`` erasure-coded chunks by the root of a
Merkle tree built over them (Fig. 3 of the paper).  The ``i``-th server
receives its chunk together with a proof that it is the ``i``-th leaf under
that root, and verifies the proof before accepting the chunk.

The tree pads the leaf layer to the next power of two with a fixed empty
digest so that proof sizes are ``ceil(log2 N)`` siblings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import DIGEST_SIZE, hash_data, hash_pair

_EMPTY_LEAF = hash_data(b"\x00merkle-padding")


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf.

    Attributes:
        index: position of the leaf among the original (unpadded) leaves.
        siblings: digests of the sibling nodes from the leaf up to the root.
    """

    index: int
    siblings: tuple[bytes, ...]

    @property
    def wire_size(self) -> int:
        """Bytes this proof occupies on the wire (index encoded in 4 bytes)."""
        return 4 + DIGEST_SIZE * len(self.siblings)


class MerkleTree:
    """A Merkle tree over a fixed list of leaf payloads."""

    def __init__(self, leaves: list[bytes]):
        if not leaves:
            raise ValueError("Merkle tree needs at least one leaf")
        self._num_leaves = len(leaves)
        width = 1
        while width < len(leaves):
            width *= 2
        level = [hash_data(leaf) for leaf in leaves]
        level.extend([_EMPTY_LEAF] * (width - len(leaves)))
        self._levels: list[list[bytes]] = [level]
        while len(level) > 1:
            level = [
                hash_pair(level[i], level[i + 1]) for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        """Root digest of the tree."""
        return self._levels[-1][0]

    @property
    def num_leaves(self) -> int:
        """Number of original (unpadded) leaves."""
        return self._num_leaves

    def proof(self, index: int) -> MerkleProof:
        """Build the inclusion proof for leaf ``index``."""
        if not 0 <= index < self._num_leaves:
            raise IndexError(f"leaf index {index} out of range [0, {self._num_leaves})")
        siblings: list[bytes] = []
        pos = index
        for level in self._levels[:-1]:
            sibling_pos = pos ^ 1
            siblings.append(level[sibling_pos])
            pos //= 2
        return MerkleProof(index=index, siblings=tuple(siblings))


def merkle_root(leaves: list[bytes]) -> bytes:
    """Convenience helper: the root of a tree over ``leaves``."""
    return MerkleTree(leaves).root


def verify_proof(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check that ``leaf`` is the ``proof.index``-th leaf under ``root``."""
    digest = hash_data(leaf)
    pos = proof.index
    for sibling in proof.siblings:
        if pos % 2 == 0:
            digest = hash_pair(digest, sibling)
        else:
            digest = hash_pair(sibling, digest)
        pos //= 2
    return digest == root
