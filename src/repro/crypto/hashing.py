"""Hash helpers.

The paper uses a single security parameter ``lambda = 32`` bytes for hashes
(S3.2).  We use SHA-256 everywhere, with domain separation between leaf and
interior Merkle nodes to rule out second-preimage tricks between levels.
"""

from __future__ import annotations

import hashlib

#: Size of every digest produced by this module, in bytes (``lambda`` in the paper).
DIGEST_SIZE = 32

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

_sha256 = hashlib.sha256


def hash_data(data: bytes) -> bytes:
    """Hash raw data (used for Merkle leaves and content digests)."""
    return _sha256(_LEAF_PREFIX + data).digest()


def hash_pair(left: bytes, right: bytes) -> bytes:
    """Hash the concatenation of two child digests (interior Merkle nodes)."""
    return _sha256(_NODE_PREFIX + left + right).digest()


def hash_leaves(leaves: list[bytes]) -> list[bytes]:
    """Hash a list of leaf payloads."""
    return [hash_data(leaf) for leaf in leaves]


def digest_leaves_into(out: bytearray, leaves: list[bytes]) -> None:
    """Write the leaf digests of ``leaves`` into ``out`` back to back.

    ``out`` must hold at least ``DIGEST_SIZE * len(leaves)`` bytes.  This is
    the batched form of :func:`hash_data` used by the Merkle tree builder:
    one pass, no per-leaf list or tuple allocations.
    """
    sha, prefix = _sha256, _LEAF_PREFIX
    pos = 0
    for leaf in leaves:
        # Stream prefix and leaf separately: hashing is incremental, so this
        # matches hash_data() without materialising a prefix+leaf copy.
        hasher = sha(prefix)
        hasher.update(leaf)
        out[pos : pos + DIGEST_SIZE] = hasher.digest()
        pos += DIGEST_SIZE


def digest_level_into(out: bytearray, level: bytes | bytearray) -> None:
    """Hash consecutive digest pairs of ``level`` into ``out``.

    ``level`` is a packed array of an even number of ``DIGEST_SIZE`` digests;
    ``out`` receives half as many interior-node digests.  Equivalent to
    :func:`hash_pair` on every pair, with a single slice per node instead of
    two concatenations.
    """
    sha, prefix = _sha256, _NODE_PREFIX
    pos = 0
    for src in range(0, len(level), 2 * DIGEST_SIZE):
        out[pos : pos + DIGEST_SIZE] = sha(
            prefix + level[src : src + 2 * DIGEST_SIZE]
        ).digest()
        pos += DIGEST_SIZE
