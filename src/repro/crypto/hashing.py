"""Hash helpers.

The paper uses a single security parameter ``lambda = 32`` bytes for hashes
(S3.2).  We use SHA-256 everywhere, with domain separation between leaf and
interior Merkle nodes to rule out second-preimage tricks between levels.
"""

from __future__ import annotations

import hashlib

#: Size of every digest produced by this module, in bytes (``lambda`` in the paper).
DIGEST_SIZE = 32

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def hash_data(data: bytes) -> bytes:
    """Hash raw data (used for Merkle leaves and content digests)."""
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def hash_pair(left: bytes, right: bytes) -> bytes:
    """Hash the concatenation of two child digests (interior Merkle nodes)."""
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


def hash_leaves(leaves: list[bytes]) -> list[bytes]:
    """Hash a list of leaf payloads."""
    return [hash_data(leaf) for leaf in leaves]
