"""Byte-accurate per-node communication cost models for Fig. 2.

The paper compares AVID-M against AVID-FP (Hendricks et al. 2007) and the
original AVID (Cachin-Tessaro 2005) by the number of bytes a node downloads
during dispersal, normalised by the dispersed block size (S3.2, Fig. 2).

The formulas below follow the paper's accounting:

* every message in AVID-FP carries a fingerprinted cross-checksum of size
  ``N * lambda + (N - 2f) * gamma`` with ``lambda = 32`` and ``gamma = 16``
  bytes, and a node receives ``O(N)`` messages during dispersal;
* every message in AVID-M carries a single hash of ``lambda = 32`` bytes;
* both protocols deliver each node a ``1/(N - 2f)`` erasure-coded slice of
  the block, which is also the information-theoretic lower bound.
"""

from __future__ import annotations

from repro.common.params import ProtocolParams

#: Hash size in bytes (lambda in the paper).
LAMBDA = 32
#: Fingerprint size in bytes (gamma in the paper).
GAMMA = 16


def _shard_bytes(params: ProtocolParams, block_size: int) -> float:
    return block_size / params.data_shards


def dispersal_lower_bound(params: ProtocolParams, block_size: int) -> float:
    """Information-theoretic minimum bytes any node must download.

    Each node must hold a ``1/(N - 2f)`` fraction of the block (footnote 2 of
    the paper), so the lower bound is ``|B| / (N - 2f)``.
    """
    return _shard_bytes(params, block_size)


def avid_m_per_node_cost(params: ProtocolParams, block_size: int) -> float:
    """Bytes a node downloads during one AVID-M dispersal.

    The node receives its chunk (with a Merkle proof of ``ceil(log2 N)``
    hashes) plus one ``GotChunk`` and one ``Ready`` message (each a single
    hash) from every node, i.e. ``|B|/(N-2f) + O(lambda * N)``.
    """
    n = params.n
    depth = max(1, (n - 1).bit_length())
    chunk = _shard_bytes(params, block_size) + LAMBDA * depth + LAMBDA
    votes = 2 * n * LAMBDA
    return chunk + votes


def avid_fp_per_node_cost(params: ProtocolParams, block_size: int) -> float:
    """Bytes a node downloads during one AVID-FP dispersal.

    Every one of the ``O(N)`` received messages (the chunk plus an echo and a
    ready round) carries the fingerprinted cross-checksum of size
    ``N*lambda + (N-2f)*gamma``, so the overhead grows quadratically in N:
    ``|B|/(N-2f) + O(N^2 * (lambda + gamma))``.
    """
    n = params.n
    cross_checksum = n * LAMBDA + params.data_shards * GAMMA
    chunk = _shard_bytes(params, block_size) + cross_checksum
    votes = 2 * n * cross_checksum
    return chunk + votes


def avid_per_node_cost(params: ProtocolParams, block_size: int) -> float:
    """Bytes a node downloads during one original-AVID dispersal.

    Cachin-Tessaro AVID has every node download the *entire* block during
    dispersal (the paper notes it is "no more efficient than broadcasting").
    """
    n = params.n
    return block_size * n / params.data_shards + 2 * n * LAMBDA


def normalised_cost(cost_bytes: float, block_size: int) -> float:
    """Cost normalised by the block size, as plotted in Fig. 2."""
    return cost_bytes / block_size
