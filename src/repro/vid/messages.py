"""Wire messages of the AVID-M protocol (Fig. 3 and Fig. 4 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import VIDInstanceId
from repro.crypto.hashing import DIGEST_SIZE
from repro.sim.messages import HEADER_SIZE, Message, Priority
from repro.vid.codec import Chunk


@dataclass
class ChunkMsg(Message):
    """``Chunk(r, C_i, P_i)``: the disperser hands server ``i`` its chunk."""

    instance: VIDInstanceId = field(kw_only=True)
    root: bytes = field(kw_only=True)
    chunk: Chunk = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE + DIGEST_SIZE + self.chunk.wire_size
        self.priority = Priority.DISPERSAL


@dataclass
class GotChunkMsg(Message):
    """``GotChunk(r)``: a server announces it holds a chunk under root ``r``."""

    instance: VIDInstanceId = field(kw_only=True)
    root: bytes = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE + DIGEST_SIZE
        self.priority = Priority.DISPERSAL


@dataclass
class ReadyMsg(Message):
    """``Ready(r)``: a server has evidence that enough chunks are stored."""

    instance: VIDInstanceId = field(kw_only=True)
    root: bytes = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE + DIGEST_SIZE
        self.priority = Priority.DISPERSAL


@dataclass
class RequestChunkMsg(Message):
    """``RequestChunk``: a retrieving client asks a server for its chunk."""

    instance: VIDInstanceId = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE
        self.priority = Priority.RETRIEVAL


@dataclass
class ReturnChunkMsg(Message):
    """``ReturnChunk(r, C_i, P_i)``: a server answers a retrieval request."""

    instance: VIDInstanceId = field(kw_only=True)
    root: bytes = field(kw_only=True)
    chunk: Chunk = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE + DIGEST_SIZE + self.chunk.wire_size
        self.priority = Priority.RETRIEVAL


@dataclass
class CancelChunkMsg(Message):
    """``CancelChunk``: a retrieving client has decoded and needs no more chunks.

    This is the paper's "a node notifies others when it has decoded a block
    to stop sending more chunks" optimisation (S6.3).  It rides the
    high-priority class so cancellations are not stuck behind the very bulk
    traffic they are meant to cut short.
    """

    instance: VIDInstanceId = field(kw_only=True)

    def __post_init__(self) -> None:
        self.wire_size = HEADER_SIZE
        self.priority = Priority.DISPERSAL


VID_MESSAGE_TYPES = (
    ChunkMsg,
    GotChunkMsg,
    ReadyMsg,
    RequestChunkMsg,
    ReturnChunkMsg,
    CancelChunkMsg,
)
