"""Verifiable Information Dispersal (VID) protocols.

This package implements AVID-M, the paper's new asynchronous VID protocol
(S3), together with the byte-accurate cost models of the prior protocols it
is compared against in Fig. 2 (AVID and AVID-FP), and the pluggable codecs
that let the same automaton run either on real erasure-coded bytes (unit
tests, examples) or on virtual payloads whose sizes alone matter
(throughput experiments).
"""

from repro.vid.avid_m import AvidMInstance, RetrievalResult, disperse_many
from repro.vid.codec import BAD_UPLOADER, Chunk, DispersalBundle, RealCodec, VirtualCodec, VirtualPayload
from repro.vid.costs import avid_fp_per_node_cost, avid_m_per_node_cost, dispersal_lower_bound

__all__ = [
    "AvidMInstance",
    "BAD_UPLOADER",
    "Chunk",
    "DispersalBundle",
    "RealCodec",
    "RetrievalResult",
    "VirtualCodec",
    "VirtualPayload",
    "avid_fp_per_node_cost",
    "avid_m_per_node_cost",
    "dispersal_lower_bound",
    "disperse_many",
]
