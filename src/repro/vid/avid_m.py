"""AVID-M: Asynchronous Verifiable Information Dispersal with Merkle trees.

This module implements the dispersal algorithm of Fig. 3 and the retrieval
algorithm of Fig. 4 of the paper as a single per-instance automaton.  Each
node hosts one :class:`AvidMInstance` per VID instance (i.e. per proposer
slot per epoch in DispersedLedger) and plays up to three roles with it:

* **server** — stores its chunk, exchanges ``GotChunk``/``Ready`` votes, and
  answers retrieval requests;
* **dispersing client** — encodes a payload and sends every server its chunk
  (only the node that owns the slot plays this role);
* **retrieving client** — requests chunks, decodes, and runs the re-encode
  verification, returning either the payload or ``BAD_UPLOADER``.

The retrieval client first asks ``N - 2f`` servers (spread deterministically
across the cluster to balance load) and falls back to the remaining servers
on a timer — the paper's prototype similarly stops transfers once a block is
decodable to avoid downloading ``N/(N-2f)``x the block size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable

from repro.common.errors import DispersalError
from repro.common.ids import VIDInstanceId
from repro.common.params import ProtocolParams
from repro.common.snapshot import SnapshotState
from repro.sim.context import NodeContext
from repro.sim.messages import Message
from repro.vid.codec import BAD_UPLOADER, Chunk
from repro.vid.messages import (
    CancelChunkMsg,
    ChunkMsg,
    GotChunkMsg,
    ReadyMsg,
    RequestChunkMsg,
    ReturnChunkMsg,
)


@dataclass(frozen=True)
class RetrievalResult:
    """Outcome of a ``Retrieve`` invocation."""

    instance: VIDInstanceId
    payload: Any
    ok: bool

    @property
    def is_bad_uploader(self) -> bool:
        return not self.ok


def disperse_many(instances: list["AvidMInstance"], payloads: list[Any]) -> list[bytes]:
    """Disperse ``payloads[i]`` through ``instances[i]``, batching the encode.

    All instances must belong to the same node.  When the shared codec
    offers ``encode_many`` (the real codec batches the Reed-Solomon parity
    work across payloads into one GF(256) kernel call), the whole batch is
    encoded in one shot; otherwise this degrades to per-instance
    :meth:`AvidMInstance.disperse`.  Returns the Merkle roots, one per
    instance.
    """
    if len(instances) != len(payloads):
        raise ValueError(
            f"got {len(instances)} instances but {len(payloads)} payloads"
        )
    if not instances:
        return []
    codec = instances[0].codec
    encode_many = getattr(codec, "encode_many", None)
    if encode_many is None or any(inst.codec is not codec for inst in instances):
        return [inst.disperse(payload) for inst, payload in zip(instances, payloads)]
    for inst in instances:
        inst._check_allowed_disperser()
    bundles = encode_many(payloads)
    return [inst._send_bundle(bundle) for inst, bundle in zip(instances, bundles)]


class AvidMInstance(SnapshotState):
    """One VID instance (server + optional client roles) at one node."""

    #: ``_retrieval_result`` is set lazily on the first decode; a snapshot
    #: taken before that simply omits it, and restore leaves it absent.
    _SNAPSHOT_FIELDS = (
        "params",
        "instance",
        "ctx",
        "codec",
        "on_complete",
        "allowed_disperser",
        "retrieval_rank",
        "my_chunk",
        "my_root",
        "chunk_root",
        "completed",
        "_sent_got_chunk",
        "_sent_ready_roots",
        "_got_chunk_count",
        "_ready_count",
        "_got_chunk_seen",
        "_ready_seen",
        "_pending_requests",
        "_return_msg",
        "_retrieving",
        "_retrieval_done",
        "_retrieval_callbacks",
        "_received_chunks",
        "_return_chunk_seen",
        "_requested",
        "_cancelled_retrievers",
        "_retrieval_result",
        "probe",
    )

    def __init__(
        self,
        params: ProtocolParams,
        instance: VIDInstanceId,
        ctx: NodeContext,
        codec: Any,
        on_complete: Callable[[VIDInstanceId], None] | None = None,
        allowed_disperser: int | None = None,
        retrieval_rank: float = 0.0,
    ):
        self.params = params
        self.instance = instance
        self.ctx = ctx
        self.codec = codec
        self.on_complete = on_complete
        self.allowed_disperser = allowed_disperser
        self.retrieval_rank = retrieval_rank

        # --- server state (Fig. 3) ---
        self.my_chunk: Chunk | None = None
        self.my_root: bytes | None = None
        self.chunk_root: bytes | None = None
        self.completed = False
        self._sent_got_chunk = False
        self._sent_ready_roots: set[bytes] = set()
        # Distinct-sender vote counts per root.  The seen-sets dedup senders
        # (one vote each), so a plain counter is enough for the quorum rules
        # — no per-root sender sets.
        self._got_chunk_count: dict[bytes, int] = {}
        self._ready_count: dict[bytes, int] = {}
        self._got_chunk_seen: set[int] = set()
        self._ready_seen: set[int] = set()
        self._pending_requests: list[int] = []
        #: The answer to a retrieval request — identical (root, chunk) for
        #: every client, so one message object serves all of them.
        self._return_msg: ReturnChunkMsg | None = None

        # --- retrieval client state (Fig. 4) ---
        self._retrieving = False
        self._retrieval_done = False
        self._retrieval_callbacks: list[Callable[[RetrievalResult], None]] = []
        self._received_chunks: dict[bytes, dict[int, Chunk]] = {}
        self._return_chunk_seen: set[int] = set()
        self._requested: set[int] = set()
        #: Clients that told us they decoded the block and need no more chunks.
        self._cancelled_retrievers: set[int] = set()
        #: Optional :class:`repro.trace.spans.SpanRecorder`, installed by the
        #: owning node as the instance is created; observes chunk arrivals.
        self.probe = None

    # ------------------------------------------------------------------
    # Dispersing client role
    # ------------------------------------------------------------------

    def disperse(self, payload: Any) -> bytes:
        """Invoke ``Disperse(B)``: encode ``payload`` and send every server a chunk.

        Returns the Merkle root committing to the dispersed chunks.
        """
        self._check_allowed_disperser()
        bundle = self.codec.encode(payload)
        return self._send_bundle(bundle)

    def _check_allowed_disperser(self) -> None:
        if self.allowed_disperser is not None and self.ctx.node_id != self.allowed_disperser:
            raise DispersalError(
                f"node {self.ctx.node_id} is not allowed to disperse into {self.instance}"
            )

    def _send_bundle(self, bundle: Any) -> bytes:
        for server in range(self.params.n):
            self.ctx.send(
                server,
                ChunkMsg(instance=self.instance, root=bundle.root, chunk=bundle.chunks[server]),
            )
        return bundle.root

    # ------------------------------------------------------------------
    # Retrieving client role
    # ------------------------------------------------------------------

    @property
    def retrieval_complete(self) -> bool:
        """True once this node has decoded the dispersed payload."""
        return self._retrieval_done

    def retrieve(self, callback: Callable[[RetrievalResult], None]) -> None:
        """Invoke ``Retrieve``: request chunks and report the decoded payload.

        Chunks are requested from every server (Fig. 4 broadcasts
        ``RequestChunk``); the block decodes as soon as the first ``N - 2f``
        consistent chunks arrive, at which point a ``CancelChunk`` tells the
        remaining servers to stop sending (the paper's cancellation
        optimisation, S6.3), so slow servers never gate the download.
        """
        self._retrieval_callbacks.append(callback)
        if self._retrieval_done:
            self._finish_retrieval_again()
            return
        if self._retrieving:
            return
        self._retrieving = True
        # One broadcast, not N unicasts: every server receives the identical
        # request, and the network's broadcast path delivers in the same
        # 0..N-1 order the per-server loop did (the express network collapses
        # it into a single fan-out event).
        self._requested.update(range(self.params.n))
        self.ctx.broadcast(
            RequestChunkMsg(instance=self.instance), rank=self.retrieval_rank
        )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def handle(self, src: int, msg: Message) -> None:
        """Dispatch one incoming message for this instance."""
        # Ordered by per-node message frequency at scale: the quorum
        # broadcasts (GotChunk, Ready) and retrieval pairs arrive N times per
        # instance, the dispersal chunk once.  Exact-type checks: these are
        # concrete dataclasses, never subclassed.
        kind = type(msg)
        if kind is GotChunkMsg:
            self._on_got_chunk(src, msg)
        elif kind is ReadyMsg:
            self._on_ready(src, msg)
        elif kind is RequestChunkMsg:
            self._on_request_chunk(src)
        elif kind is ReturnChunkMsg:
            self._on_return_chunk(src, msg)
        elif kind is ChunkMsg:
            self._on_chunk(src, msg)
        elif kind is CancelChunkMsg:
            self._cancelled_retrievers.add(src)

    # --- server side (Fig. 3) ---

    def _on_chunk(self, src: int, msg: ChunkMsg) -> None:
        if self.probe is not None:
            # The transfer completed even if the payload is rejected below.
            self.probe.on_chunk_arrived(
                src, self.ctx.node_id, self.instance.epoch,
                self.instance.proposer, self.ctx.now,
            )
        if self.allowed_disperser is not None and src != self.allowed_disperser:
            return
        if msg.chunk.index != self.ctx.node_id:
            return
        if not self.codec.verify_chunk(msg.root, msg.chunk):
            return
        if self.my_chunk is None:
            self.my_chunk = msg.chunk
            self.my_root = msg.root
            self._answer_pending_requests()
        if not self._sent_got_chunk:
            self._sent_got_chunk = True
            self.ctx.broadcast(GotChunkMsg(instance=self.instance, root=msg.root))

    def _on_got_chunk(self, src: int, msg: GotChunkMsg) -> None:
        if src in self._got_chunk_seen:
            return
        self._got_chunk_seen.add(src)
        count = self._got_chunk_count.get(msg.root, 0) + 1
        self._got_chunk_count[msg.root] = count
        # The count rises by exactly one per distinct sender, so the quorum
        # rule fires at the crossing and never needs re-checking (_send_ready
        # is idempotent anyway).
        if count == self.params.quorum:
            self._send_ready(msg.root)

    def _on_ready(self, src: int, msg: ReadyMsg) -> None:
        if src in self._ready_seen:
            return
        self._ready_seen.add(src)
        count = self._ready_count.get(msg.root, 0) + 1
        self._ready_count[msg.root] = count
        if count == self.params.ready_amplify_threshold:
            self._send_ready(msg.root)
        if count == self.params.ready_threshold and not self.completed:
            self.chunk_root = msg.root
            self.completed = True
            self._answer_pending_requests()
            if self.on_complete is not None:
                self.on_complete(self.instance)

    def _send_ready(self, root: bytes) -> None:
        if root in self._sent_ready_roots:
            return
        self._sent_ready_roots.add(root)
        self.ctx.broadcast(ReadyMsg(instance=self.instance, root=root))

    # --- server side (Fig. 4: answering retrievals) ---

    def _on_request_chunk(self, src: int) -> None:
        if not self._can_answer_request():
            if src not in self._pending_requests:
                self._pending_requests.append(src)
            return
        self._send_return_chunk(src)

    def _can_answer_request(self) -> bool:
        return (
            self.completed
            and self.my_chunk is not None
            and self.my_root is not None
            and self.my_root == self.chunk_root
        )

    def _answer_pending_requests(self) -> None:
        if not self._can_answer_request():
            return
        pending, self._pending_requests = self._pending_requests, []
        for src in pending:
            self._send_return_chunk(src)

    def _send_return_chunk(self, dst: int) -> None:
        assert self.my_chunk is not None and self.my_root is not None
        if dst in self._cancelled_retrievers:
            return
        msg = self._return_msg
        if msg is None:
            # my_root/my_chunk are set exactly once, so the message can be
            # built once and shared across all clients (receivers never
            # mutate messages).
            msg = self._return_msg = ReturnChunkMsg(
                instance=self.instance, root=self.my_root, chunk=self.my_chunk
            )
        self.ctx.send(
            dst,
            msg,
            rank=self.retrieval_rank,
            # Drop the transfer (saving the bandwidth) if the client cancels
            # before this chunk reaches the head of the egress queue.  A
            # C-level partial on the set's membership test, rather than a
            # fresh closure per queued chunk.
            abort=partial(self._cancelled_retrievers.__contains__, dst),
        )

    # --- client side (Fig. 4: collecting chunks) ---

    def _on_return_chunk(self, src: int, msg: ReturnChunkMsg) -> None:
        if self.probe is not None:
            self.probe.on_return_chunk_arrived(
                src, self.ctx.node_id, self.instance.epoch,
                self.instance.proposer, self.ctx.now,
            )
        if not self._retrieving or self._retrieval_done:
            return
        if src in self._return_chunk_seen:
            return
        self._return_chunk_seen.add(src)
        if msg.chunk.index != src:
            return
        if not self.codec.verify_chunk(msg.root, msg.chunk):
            return
        chunks = self._received_chunks.setdefault(msg.root, {})
        chunks[msg.chunk.index] = msg.chunk
        if len(chunks) >= self.params.data_shards:
            decoded = self.codec.decode(msg.root, chunks)
            ok = not (isinstance(decoded, str) and decoded == BAD_UPLOADER)
            self._retrieval_result = RetrievalResult(
                instance=self.instance, payload=decoded, ok=ok
            )
            self._retrieval_done = True
            # Tell every server we are done so the chunks still queued at
            # their egress are dropped instead of transmitted (S6.3).
            self.ctx.broadcast(
                CancelChunkMsg(instance=self.instance), include_self=False
            )
            self._finish_retrieval_again()

    def _finish_retrieval_again(self) -> None:
        callbacks, self._retrieval_callbacks = self._retrieval_callbacks, []
        for callback in callbacks:
            callback(self._retrieval_result)

    # Also answer requests that arrived before completion once we complete
    # and later receive our chunk (a chunk may arrive after Ready quorum).
    def maybe_flush_pending(self) -> None:
        """Answer any deferred retrieval requests if we are now able to."""
        self._answer_pending_requests()
