"""Codecs: how blocks become chunks and how chunks become blocks again.

AVID-M's message flow is independent of how the payload is actually encoded,
so the automaton takes a *codec* object:

* :class:`RealCodec` — the faithful implementation: Reed-Solomon encode the
  payload bytes, build a Merkle tree over the chunks, verify Merkle proofs
  on receipt, and re-encode after decoding to detect inconsistent dispersals
  (the "re-encode and compare roots" check that is the key idea of AVID-M).
* :class:`VirtualCodec` — used by throughput experiments: payloads are
  opaque objects that only declare a byte size; chunk sizes and message
  sizes are computed exactly as the real codec would, but no bytes are
  moved, so simulating multi-megabyte blocks is cheap.  Correctness of the
  real data path is established separately by the unit/property tests.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Any

from repro.common.errors import DecodingError
from repro.common.params import ProtocolParams
from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.merkle import MerkleProof, MerkleTree, verify_proof
from repro.erasure.rs_code import ReedSolomonCode

#: The fixed error string returned when an inconsistent dispersal is detected
#: (Fig. 4, step 4 of the paper).
BAD_UPLOADER = "BAD_UPLOADER"


@dataclass(frozen=True)
class Chunk:
    """One erasure-coded chunk as held by a server.

    ``data`` and ``proof`` are populated by the real codec; the virtual codec
    leaves them ``None`` and only carries ``size`` (payload bytes) plus the
    payload reference needed to reassemble the virtual block.
    """

    index: int
    size: int
    data: bytes | None = None
    proof: MerkleProof | None = None
    payload_ref: Any = None

    @property
    def wire_size(self) -> int:
        """Bytes the chunk body plus its Merkle proof occupy on the wire."""
        proof_size = self.proof.wire_size if self.proof is not None else self._proof_size_estimate()
        return self.size + proof_size

    def _proof_size_estimate(self) -> int:
        # Virtual chunks still account for the Merkle proof the real protocol
        # would carry: index (4 bytes) plus ceil(log2 N) sibling digests.  The
        # codec fills in the exact value via `proof_wire_size`.
        return 4


@dataclass(frozen=True)
class DispersalBundle:
    """The output of encoding a payload for dispersal: a root and N chunks."""

    root: bytes
    chunks: tuple[Chunk, ...]
    payload_size: int


def _proof_wire_size(num_leaves: int) -> int:
    depth = 0
    width = 1
    while width < num_leaves:
        width *= 2
        depth += 1
    return 4 + DIGEST_SIZE * depth


class RealCodec:
    """Erasure-code + Merkle-tree codec operating on real bytes."""

    def __init__(self, params: ProtocolParams):
        self.params = params
        self._rs = ReedSolomonCode(params.data_shards, params.total_shards)

    def chunk_payload_size(self, payload_size: int) -> int:
        """Size in bytes of each chunk's data for a payload of ``payload_size``."""
        return self._rs.shard_size(payload_size)

    def chunk_wire_size(self, payload_size: int) -> int:
        """Bytes one chunk message body occupies (chunk data + Merkle proof)."""
        return self.chunk_payload_size(payload_size) + _proof_wire_size(self.params.n)

    def encode(self, payload: bytes) -> DispersalBundle:
        """Encode ``payload`` into N chunks committed to by a Merkle root."""
        return self._bundle(self._rs.encode(payload), len(payload))

    def encode_many(self, payloads: list[bytes]) -> list[DispersalBundle]:
        """Encode several payloads, batching the Reed-Solomon parity work.

        All payloads share one GF(256) kernel invocation (see
        :meth:`repro.erasure.rs_code.ReedSolomonCode.encode_many`); each
        still gets its own Merkle tree and root.  Bundles are byte-identical
        to encoding each payload with :meth:`encode`.
        """
        shard_lists = self._rs.encode_many(payloads)
        return [
            self._bundle(shards, len(payload))
            for shards, payload in zip(shard_lists, payloads)
        ]

    def _bundle(self, shards: list[bytes], payload_size: int) -> DispersalBundle:
        tree = MerkleTree(shards)
        proofs = tree.proofs_all()
        chunks = tuple(
            Chunk(index=i, size=len(shards[i]), data=shards[i], proof=proofs[i])
            for i in range(self.params.n)
        )
        return DispersalBundle(root=tree.root, chunks=chunks, payload_size=payload_size)

    def verify_chunk(self, root: bytes, chunk: Chunk) -> bool:
        """Check that ``chunk`` really is the ``chunk.index``-th leaf under ``root``."""
        if chunk.data is None or chunk.proof is None:
            return False
        if chunk.proof.index != chunk.index:
            return False
        return verify_proof(root, chunk.data, chunk.proof)

    def decode(self, root: bytes, chunks: dict[int, Chunk]) -> Any:
        """Decode from at least ``N - 2f`` chunks and run the re-encode check.

        Returns the decoded payload bytes, or :data:`BAD_UPLOADER` if the
        chunks were not a consistent encoding of any payload (Fig. 4).
        """
        shards = {
            index: chunk.data for index, chunk in chunks.items() if chunk.data is not None
        }
        try:
            payload = self._rs.decode(shards)
        except DecodingError:
            return BAD_UPLOADER
        reencoded = self._rs.encode(payload)
        if MerkleTree(reencoded).root != root:
            return BAD_UPLOADER
        return payload

    def payload_size(self, payload: bytes) -> int:
        return len(payload)


_virtual_ids = itertools.count()


@dataclass(frozen=True)
class VirtualPayload:
    """A stand-in for a block: an identity plus a declared byte size.

    ``inconsistent`` marks the virtual counterpart of an equivocating
    dispersal: the chunks carry the right sizes, but they are not the
    encoding of any single payload, so :meth:`VirtualCodec.decode` reports
    :data:`BAD_UPLOADER` exactly where the real codec's re-encode check
    would (Fig. 4, step 4).
    """

    payload_id: int
    size: int
    label: str = ""
    inconsistent: bool = False

    @classmethod
    def create(cls, size: int, label: str = "", inconsistent: bool = False) -> "VirtualPayload":
        return cls(
            payload_id=next(_virtual_ids), size=size, label=label, inconsistent=inconsistent
        )

    def digest(self) -> bytes:
        return hashlib.sha256(f"virtual-{self.payload_id}-{self.size}".encode()).digest()


class VirtualCodec:
    """Byte-accounting codec: moves no data, but sizes match the real codec."""

    def __init__(self, params: ProtocolParams):
        self.params = params
        self._rs_overhead = 4  # length header added by the real Reed-Solomon code

    def chunk_payload_size(self, payload_size: int) -> int:
        padded = payload_size + self._rs_overhead
        return max(1, -(-padded // self.params.data_shards))

    def chunk_wire_size(self, payload_size: int) -> int:
        return self.chunk_payload_size(payload_size) + _proof_wire_size(self.params.n)

    def encode_many(self, payloads: list[Any]) -> list[DispersalBundle]:
        """Batch form of :meth:`encode` (no actual batching — nothing to batch)."""
        return [self.encode(payload) for payload in payloads]

    def encode(self, payload: Any) -> DispersalBundle:
        size = payload.size if hasattr(payload, "size") else len(payload)
        chunk_size = self.chunk_payload_size(size)
        root = (
            payload.digest()
            if hasattr(payload, "digest")
            else hashlib.sha256(bytes(payload)).digest()
        )
        chunks = tuple(
            Chunk(index=i, size=chunk_size, payload_ref=payload)
            for i in range(self.params.n)
        )
        return DispersalBundle(root=root, chunks=chunks, payload_size=size)

    def verify_chunk(self, root: bytes, chunk: Chunk) -> bool:
        return chunk.payload_ref is not None

    def decode(self, root: bytes, chunks: dict[int, Chunk]) -> Any:
        for chunk in chunks.values():
            if chunk.payload_ref is not None:
                if getattr(chunk.payload_ref, "inconsistent", False):
                    # The virtual analogue of the re-encode check: these
                    # chunks never were one payload's encoding.
                    return BAD_UPLOADER
                return chunk.payload_ref
        return BAD_UPLOADER

    def payload_size(self, payload: Any) -> int:
        return payload.size if hasattr(payload, "size") else len(payload)
