#!/usr/bin/env python3
"""The scenario engine in four short acts.

The engine (``docs/scenarios.md``) turns an experiment into data: a
:class:`~repro.experiments.scenario.ScenarioSpec` describes the run, a grid
describes what varies, and :func:`~repro.experiments.engine.sweep` runs every
point — in parallel across processes when the machine allows.  This example

1. builds a spec from a plain dict (the JSON-file form),
2. runs a single point,
3. sweeps a protocol x fault-count grid,
4. shows the same thing the CLI prints (``python -m repro.experiments run
   adversary-crash-mix``).

Run with::

    python examples/scenario_sweep.py
"""

from __future__ import annotations

from repro.experiments.engine import run_scenario, sweep
from repro.experiments.scenario import ScenarioSpec

#: A complete scenario as data — this dict could live in a JSON file.
SPEC_AS_DATA = {
    "name": "crash-tolerance",
    "protocol": "dl",
    "topology": {"kind": "uniform", "num_nodes": 7, "delay": 0.05},
    "bandwidth": {"kind": "constant", "rate": 4_000_000},
    "workload": {"kind": "saturating", "target_pending_bytes": 2_000_000},
    "node": {"max_block_size": 400_000},
    "duration": 15.0,
    "warmup_fraction": 0.2,
}


def main() -> None:
    spec = ScenarioSpec.from_dict(SPEC_AS_DATA)
    print(f"spec round-trips through JSON: {ScenarioSpec.from_json(spec.to_json()) == spec}\n")

    # Act 2: one deterministic point.
    point = run_scenario(spec)
    print(f"single run: mean throughput "
          f"{point.summary()['mean_throughput'] / 1e6:.2f} MB/s, "
          f"{point.result.events_processed} events "
          f"in {point.wall_clock_seconds:.2f}s wall clock\n")

    # Act 3: a grid — every (protocol, fault count) combination, run via the
    # sweep engine (worker processes when more than one CPU is available).
    grid = {
        "protocol": ("dl", "hb"),
        "faults": (
            {"adversary.kind": "none", "adversary.count": 0},
            {"adversary.kind": "crash", "adversary.count": 2},
        ),
    }
    outcome = sweep(spec, grid)
    print(outcome.table(columns=(
        "label", "protocol", "mean_throughput", "min_throughput", "delivered_epochs"
    )))
    mode = f"{outcome.workers} worker processes" if outcome.parallel else "serial"
    print(f"\n{len(outcome.points)} points in {outcome.wall_clock_seconds:.2f}s ({mode})")

    # f = 2 for n = 7: with 2 crashed nodes both protocols must keep
    # delivering at the honest nodes — that is the whole point of BFT.
    for point in outcome.points:
        if point.spec.adversary.count == 2:
            honest = point.result.delivered_epochs[:5]
            assert min(honest) >= 1, "a run with f crashed nodes stalled!"
    print("liveness held at every honest node with f nodes crashed ✔")


if __name__ == "__main__":
    main()
