#!/usr/bin/env python3
"""Quickstart: a 4-node DispersedLedger cluster replicating a key-value store.

This example runs the full protocol stack — AVID-M dispersal, binary
agreement, inter-node linking, retrieval — with *real* erasure-coded blocks
on the instant in-memory router (no bandwidth modelling), which is the
fastest way to see the consensus machinery work end to end:

1. four nodes each accept client transactions that encode key-value
   operations;
2. the cluster agrees on a totally ordered log of blocks;
3. every node applies the log to its local state machine replica;
4. we check all replicas converged to the same state.

Run with::

    python examples/quickstart.py

This walks the protocol stack directly (``docs/architecture.md`` maps the
layers).  For bandwidth-accurate experiments — sweeps over protocols,
topologies, faults and workloads — use the scenario engine instead:
``examples/scenario_sweep.py`` and ``docs/scenarios.md``.
"""

from __future__ import annotations

from repro import DispersedLedgerNode, NodeConfig, ProtocolParams
from repro.ba.coin import CommonCoin
from repro.core.state_machine import KeyValueStateMachine, encode_operation
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork

NUM_NODES = 4
NUM_EPOCHS = 3


def build_cluster() -> tuple[InstantNetwork, list[DispersedLedgerNode]]:
    """Create a 4-node DispersedLedger cluster on the instant router."""
    params = ProtocolParams.for_n(NUM_NODES)
    network = InstantNetwork(NUM_NODES, seed=42)
    coin = CommonCoin()
    config = NodeConfig(data_plane="real")  # move real erasure-coded bytes
    nodes = []
    for node_id in range(NUM_NODES):
        ctx = NodeContext(node_id, network, network)
        node = DispersedLedgerNode(
            node_id, params, ctx, config=config, coin=coin, max_epochs=NUM_EPOCHS
        )
        network.attach(node_id, node)
        nodes.append(node)
    return network, nodes


def submit_client_workload(nodes: list[DispersedLedgerNode]) -> None:
    """Each organisation submits transactions through its own node (S2.1)."""
    nodes[0].submit_payload(encode_operation("set", "alice", 100))
    nodes[0].submit_payload(encode_operation("set", "bob", 50))
    nodes[1].submit_payload(encode_operation("add", "alice", -30))
    nodes[1].submit_payload(encode_operation("add", "bob", 30))
    nodes[2].submit_payload(encode_operation("set", "carol", 7))
    nodes[3].submit_payload(encode_operation("delete", "carol"))
    nodes[3].submit_payload(b"this is spam, not a valid operation")


def main() -> None:
    network, nodes = build_cluster()
    submit_client_workload(nodes)

    network.start()
    delivered_messages = network.run()

    print(f"cluster of {NUM_NODES} nodes ran {NUM_EPOCHS} epochs "
          f"({delivered_messages} protocol messages delivered)\n")

    # Every node applies its (identical) ledger to a state machine replica.
    replicas = []
    for node in nodes:
        machine = KeyValueStateMachine()
        for entry in node.ledger.entries:
            machine.apply_block(entry.block.transactions)
        replicas.append(machine)

    reference = nodes[0].ledger
    print("delivery order (epoch, proposer):", reference.sequence())
    print(f"blocks delivered: {reference.num_blocks}, "
          f"transactions: {reference.num_transactions}")
    print("replicated state:", replicas[0].snapshot())
    print("rejected (spam) transactions:", replicas[0].rejected_count)

    sequences = {tuple(node.ledger.digest_sequence()) for node in nodes}
    states = {tuple(sorted(replica.snapshot().items())) for replica in replicas}
    assert len(sequences) == 1, "ledgers diverged!"
    assert len(states) == 1, "replicas diverged!"
    print("\nall nodes delivered the same log and reached the same state ✔")


if __name__ == "__main__":
    main()
