#!/usr/bin/env python3
"""DispersedLedger vs HoneyBadger on a bandwidth-varying WAN.

This is the paper's core scenario (Fig. 1 / Fig. 9) in miniature, and the
short form of the ``bandwidth-flapping`` entry in ``docs/scenarios.md``: an
8-node wide-area network (f = 2) where *three* nodes take turns having
their bandwidth collapse — so at any moment more than f nodes have been
slow recently, and a lockstep protocol cannot simply leave them all behind.

Everything about the conditions lives in one declarative
:class:`~repro.experiments.scenario.ScenarioSpec`; the comparison is a
one-axis sweep over the protocol.  The same run is available from the CLI::

    python -m repro.experiments run bandwidth-flapping

Run with::

    python examples/variable_bandwidth_wan.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.catalog import get_scenario
from repro.experiments.engine import sweep

# The catalog entry IS the experiment; the example only renames the run and
# disables warmup so the printed per-node numbers cover the whole run.
SPEC = replace(
    get_scenario("bandwidth-flapping").base,
    name="variable-bandwidth-wan",
    warmup_fraction=0.0,
)
NUM_NODES = SPEC.topology.num_nodes
NUM_FLAKY = SPEC.bandwidth.count  # more than f, so lockstep cannot ignore them all
FAST_RATE = SPEC.bandwidth.rate
SLOW_RATE = SPEC.bandwidth.degraded_rate  # during a flaky node's bad periods


def main() -> None:
    num_healthy = NUM_NODES - NUM_FLAKY
    print(f"{NUM_NODES}-node WAN: nodes {num_healthy}..{NUM_NODES - 1} take turns dropping from "
          f"{FAST_RATE/1e6:.0f} MB/s to {SLOW_RATE/1e6:.1f} MB/s\n")
    outcome = sweep(SPEC, {"protocol": ("dl", "hb")})
    results = {point.spec.protocol: point.result.throughputs for point in outcome.points}

    header = f"{'node':>6} " + "".join(f"{protocol:>14}" for protocol in results)
    print(header)
    for node_id in range(NUM_NODES):
        label = f"{node_id}*" if node_id >= num_healthy else str(node_id)
        row = f"{label:>6} " + "".join(
            f"{results[protocol][node_id] / 1e6:>11.2f} MB/s" for protocol in results
        )
        print(row)
    print("   (*) nodes with flaky links\n")

    for protocol, throughputs in results.items():
        healthy = sum(throughputs[:num_healthy]) / num_healthy
        flaky = sum(throughputs[num_healthy:]) / NUM_FLAKY
        print(f"{protocol:>4}: healthy-node average {healthy/1e6:.2f} MB/s, "
              f"flaky-node average {flaky/1e6:.2f} MB/s")

    dl_healthy = sum(results['dl'][:num_healthy]) / num_healthy
    hb_healthy = sum(results['hb'][:num_healthy]) / num_healthy
    print(f"\nDispersedLedger lets the healthy nodes confirm "
          f"{dl_healthy / max(hb_healthy, 1e-9):.1f}x faster than HoneyBadger "
          "under the same conditions.")


if __name__ == "__main__":
    main()
