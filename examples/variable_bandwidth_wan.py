#!/usr/bin/env python3
"""DispersedLedger vs HoneyBadger on a bandwidth-varying WAN.

This is the paper's core scenario (Fig. 1 / Fig. 9) in miniature: an
8-node wide-area network (f = 2) where *three* nodes take turns having
their bandwidth collapse — so at any moment more than f nodes have been
slow recently, and a lockstep protocol cannot simply leave them all behind.
The example runs both protocols on identical conditions and prints how much
each node confirmed — showing that with DispersedLedger the slow nodes no
longer drag everyone else down.

Run with::

    python examples/variable_bandwidth_wan.py
"""

from __future__ import annotations

from repro import NodeConfig, ProtocolParams
from repro.ba.coin import CommonCoin
from repro.experiments.runner import PROTOCOLS
from repro.metrics.collector import MetricsCollector
from repro.sim.bandwidth import ConstantBandwidth, PiecewiseConstantBandwidth
from repro.sim.context import NodeContext
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.workload.txgen import SaturatingTransactionGenerator

NUM_NODES = 8
NUM_FLAKY = 3  # more than f = 2, so lockstep protocols cannot ignore them all
DURATION = 30.0  # virtual seconds
FAST_RATE = 4_000_000.0  # 4 MB/s
SLOW_RATE = 300_000.0  # 300 KB/s during a flaky node's bad periods


def flaky_trace(phase: float) -> PiecewiseConstantBandwidth:
    """A link that alternates between healthy and heavily degraded.

    ``phase`` staggers the bad periods so that at any point in time at least
    one of the flaky nodes is currently degraded.
    """
    cycle, degraded_for = 12.0, 4.0

    def rate_at(t: float) -> float:
        return SLOW_RATE if (t - phase) % cycle < degraded_for else FAST_RATE

    breakpoints = [(0.0, rate_at(0.0))]
    t = 0.5
    while t < DURATION + cycle:
        rate = rate_at(t)
        if rate != breakpoints[-1][1]:
            breakpoints.append((t, rate))
        t += 0.5
    return PiecewiseConstantBandwidth(breakpoints)


def run(protocol: str) -> list[float]:
    """Run one protocol for DURATION virtual seconds; return per-node throughput."""
    params = ProtocolParams.for_n(NUM_NODES)
    sim = Simulator()
    traces = [ConstantBandwidth(FAST_RATE) for _ in range(NUM_NODES - NUM_FLAKY)] + [
        flaky_trace(phase=4.0 * index) for index in range(NUM_FLAKY)
    ]
    network = Network(
        sim,
        NetworkConfig(
            num_nodes=NUM_NODES,
            propagation_delay=0.08,
            egress_traces=list(traces),
            ingress_traces=list(traces),
        ),
    )
    collector = MetricsCollector(NUM_NODES)
    coin = CommonCoin()
    config = NodeConfig(max_block_size=400_000)  # virtual data plane by default
    node_class = PROTOCOLS[protocol]
    nodes = []
    for node_id in range(NUM_NODES):
        ctx = NodeContext(node_id, network, sim)
        node = node_class(
            node_id,
            params,
            ctx,
            config=config,
            coin=coin,
            on_deliver=collector.record_delivery,
        )
        network.attach(node_id, node)
        nodes.append(node)
    for node in nodes:
        generator = SaturatingTransactionGenerator(sim, node, target_pending_bytes=3_000_000)
        sim.schedule(0.0, generator.start)
    network.start()
    sim.run(until=DURATION)
    return collector.throughputs(DURATION)


def main() -> None:
    num_healthy = NUM_NODES - NUM_FLAKY
    print(f"{NUM_NODES}-node WAN: nodes {num_healthy}..{NUM_NODES - 1} take turns dropping from "
          f"{FAST_RATE/1e6:.0f} MB/s to {SLOW_RATE/1e6:.1f} MB/s\n")
    results = {protocol: run(protocol) for protocol in ("dl", "hb")}

    header = f"{'node':>6} " + "".join(f"{protocol:>14}" for protocol in results)
    print(header)
    for node_id in range(NUM_NODES):
        label = f"{node_id}*" if node_id >= num_healthy else str(node_id)
        row = f"{label:>6} " + "".join(
            f"{results[protocol][node_id] / 1e6:>11.2f} MB/s" for protocol in results
        )
        print(row)
    print("   (*) nodes with flaky links\n")

    for protocol, throughputs in results.items():
        healthy = sum(throughputs[:num_healthy]) / num_healthy
        flaky = sum(throughputs[num_healthy:]) / NUM_FLAKY
        print(f"{protocol:>4}: healthy-node average {healthy/1e6:.2f} MB/s, "
              f"flaky-node average {flaky/1e6:.2f} MB/s")

    dl_healthy = sum(results['dl'][:num_healthy]) / num_healthy
    hb_healthy = sum(results['hb'][:num_healthy]) / num_healthy
    print(f"\nDispersedLedger lets the healthy nodes confirm "
          f"{dl_healthy / max(hb_healthy, 1e-9):.1f}x faster than HoneyBadger "
          "under the same conditions.")


if __name__ == "__main__":
    main()
