#!/usr/bin/env python3
"""Consensus under Byzantine behaviour.

Three scenarios on a 7-node cluster (f = 2) with real erasure-coded blocks:

1. **Crash faults** — two nodes are silent from the start; the remaining
   five keep committing blocks.
2. **Equivocating disperser** — a proposer disperses *inconsistent* chunks
   (different payloads to different servers).  AVID-M's re-encode check
   makes every correct node deliver the same ``BAD_UPLOADER`` placeholder
   for that slot, so the ledgers stay identical.
3. **Censorship attempt** — a node always votes against one victim's blocks
   and misreports its observations; inter-node linking still delivers every
   one of the victim's blocks.

Run with::

    python examples/byzantine_faults.py

These runs use the instant router and the *node-class* adversaries so the
full cryptographic checks execute on real bytes.  For timed crash-fault
scenarios on the bandwidth-accurate simulator, see the declarative
``adversary-crash-mix`` / ``mid-run-crash`` entries in ``docs/scenarios.md``
(``python -m repro.experiments run adversary-crash-mix``).
"""

from __future__ import annotations

from repro import DispersedLedgerNode, NodeConfig, ProtocolParams
from repro.adversary.censor import CensoringNode
from repro.adversary.crash import CrashedNode
from repro.adversary.equivocator import EquivocatingDisperserNode
from repro.ba.coin import CommonCoin
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork

NUM_NODES = 7
NUM_EPOCHS = 3


def build_cluster(byzantine: dict[int, object]) -> tuple[InstantNetwork, list]:
    """A 7-node cluster where selected node ids are replaced by adversaries."""
    params = ProtocolParams.for_n(NUM_NODES)
    network = InstantNetwork(NUM_NODES, seed=7)
    coin = CommonCoin()
    config = NodeConfig(data_plane="real")
    nodes = []
    for node_id in range(NUM_NODES):
        if node_id in byzantine and byzantine[node_id] is CrashedNode:
            node = CrashedNode(node_id)
        else:
            node_class = byzantine.get(node_id, DispersedLedgerNode)
            ctx = NodeContext(node_id, network, network)
            kwargs = {"victim": 0} if node_class is CensoringNode else {}
            node = node_class(
                node_id, params, ctx, config=config, coin=coin, max_epochs=NUM_EPOCHS, **kwargs
            )
        network.attach(node_id, node)
        nodes.append(node)
    return network, nodes


def correct_ids(byzantine: dict[int, object]) -> list[int]:
    return [i for i in range(NUM_NODES) if i not in byzantine]


def check_agreement(nodes, ids) -> None:
    sequences = {tuple(nodes[i].ledger.digest_sequence()) for i in ids}
    assert len(sequences) == 1, "correct nodes delivered different logs!"


def scenario_crash() -> None:
    print("=== 1. two crashed nodes (f = 2) ===")
    byzantine = {5: CrashedNode, 6: CrashedNode}
    network, nodes = build_cluster(byzantine)
    for i in correct_ids(byzantine):
        nodes[i].submit_payload(f"from-node-{i}".encode())
    network.start()
    network.run()
    survivors = correct_ids(byzantine)
    check_agreement(nodes, survivors)
    ledger = nodes[survivors[0]].ledger
    print(f"epochs delivered: {nodes[survivors[0]].delivered_epoch}, "
          f"blocks: {ledger.num_blocks}, transactions: {ledger.num_transactions}")
    print("correct nodes agreed on the same log despite 2 silent nodes ✔\n")


def scenario_equivocation() -> None:
    print("=== 2. equivocating disperser ===")
    byzantine = {3: EquivocatingDisperserNode}
    network, nodes = build_cluster(byzantine)
    for i in correct_ids(byzantine):
        nodes[i].submit_payload(f"honest-{i}".encode())
    nodes[3].submit_payload(b"poisoned block payload")
    network.start()
    network.run()
    check_agreement(nodes, correct_ids(byzantine))
    flagged = [
        (entry.epoch, entry.proposer)
        for entry in nodes[0].ledger.entries
        if entry.block.label == "BAD_UPLOADER"
    ]
    print(f"slots recorded as BAD_UPLOADER on every correct node: {flagged}")
    print("inconsistent dispersals were detected and neutralised ✔\n")


def scenario_censorship() -> None:
    print("=== 3. censorship attempt against node 0 ===")
    byzantine = {2: CensoringNode}
    network, nodes = build_cluster(byzantine)
    victim_payloads = [f"victim-tx-{k}".encode() for k in range(3)]
    for payload in victim_payloads:
        nodes[0].submit_payload(payload)
    for i in (1, 3, 4, 5, 6):
        nodes[i].submit_payload(f"other-{i}".encode())
    network.start()
    network.run()
    check_agreement(nodes, [i for i in range(NUM_NODES) if i != 2])
    delivered = {tx.data for tx in nodes[1].ledger.transactions()}
    missing = [p for p in victim_payloads if p not in delivered]
    linked = sum(1 for e in nodes[1].ledger.entries if e.via_linking)
    print(f"victim transactions delivered: {len(victim_payloads) - len(missing)}"
          f"/{len(victim_payloads)} (blocks delivered via inter-node linking: {linked})")
    assert not missing, "censorship succeeded — this should not happen"
    print("inter-node linking defeated the censorship attempt ✔\n")


def main() -> None:
    scenario_crash()
    scenario_equivocation()
    scenario_censorship()


if __name__ == "__main__":
    main()
