#!/usr/bin/env python3
"""Using AVID-M on its own: verifiable dispersed storage.

DispersedLedger's building block is useful by itself (S2.2 of the paper):
a client can disperse a file across N servers so that it survives up to f
Byzantine servers, each server stores only about 1/(N-2f) of the file, and
any client can later retrieve it and verify it got exactly what was stored.

This example disperses a document across 10 servers (f = 3), shows the
per-server storage footprint, then retrieves it twice — once normally, and
once with f servers refusing to cooperate.

Run with::

    python examples/avid_m_storage.py

This example exercises the VID layer below the scenario engine (see
``docs/architecture.md`` for the layer map); for timed whole-protocol
scenarios start from ``examples/scenario_sweep.py`` / ``docs/scenarios.md``.
"""

from __future__ import annotations

from repro import ProtocolParams
from repro.adversary.filters import drop_messages_from
from repro.common.ids import VIDInstanceId
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork
from repro.vid.avid_m import AvidMInstance
from repro.vid.codec import RealCodec

NUM_SERVERS = 10

DOCUMENT = (
    b"DispersedLedger: High-Throughput Byzantine Consensus on Variable "
    b"Bandwidth Networks. " * 200
)


class _Adapter:
    """Expose one AVID-M instance through the router's Process interface."""

    def __init__(self, instance: AvidMInstance):
        self.instance = instance

    def start(self) -> None:
        return

    def on_message(self, src, msg) -> None:
        self.instance.handle(src, msg)


def build_servers():
    params = ProtocolParams.for_n(NUM_SERVERS)
    network = InstantNetwork(NUM_SERVERS, seed=1)
    codec = RealCodec(params)
    instance_id = VIDInstanceId(epoch=1, proposer=0)
    completions = []
    servers = []
    for server_id in range(NUM_SERVERS):
        ctx = NodeContext(server_id, network, network)
        instance = AvidMInstance(
            params=params,
            instance=instance_id,
            ctx=ctx,
            codec=codec,
            on_complete=lambda _id, server_id=server_id: completions.append(server_id),
            allowed_disperser=0,
        )
        network.attach(server_id, _Adapter(instance))
        servers.append(instance)
    return params, network, servers, completions


def main() -> None:
    params, network, servers, completions = build_servers()
    print(f"{NUM_SERVERS} servers, tolerating f = {params.f} Byzantine servers")
    print(f"document size: {len(DOCUMENT):,} bytes\n")

    # --- Disperse -------------------------------------------------------
    servers[0].disperse(DOCUMENT)
    network.run()
    chunk_size = len(servers[1].my_chunk.data)
    print(f"dispersal complete at {len(completions)} servers")
    print(f"per-server chunk: {chunk_size:,} bytes "
          f"({chunk_size / len(DOCUMENT):.1%} of the document; "
          f"lower bound is 1/(N-2f) = {1 / params.data_shards:.1%})\n")

    # --- Retrieve normally ----------------------------------------------
    results = []
    servers[7].retrieve(lambda res: results.append(res))
    network.run()
    assert results[0].ok and results[0].payload == DOCUMENT
    print("retrieval from a correct client returned the exact document ✔")

    # --- Retrieve with f unresponsive servers ----------------------------
    network.delivery_filter = drop_messages_from(set(range(params.f)))
    results.clear()
    servers[9].retrieve(lambda res: results.append(res))
    network.run()
    assert results and results[0].ok and results[0].payload == DOCUMENT
    print(f"retrieval still succeeded with {params.f} servers refusing to answer ✔")


if __name__ == "__main__":
    main()
