"""Tests for the Fig. 2 communication-cost models (AVID-M vs AVID-FP vs AVID)."""

import pytest

from repro.common.params import ProtocolParams
from repro.vid.costs import (
    GAMMA,
    LAMBDA,
    avid_fp_per_node_cost,
    avid_m_per_node_cost,
    avid_per_node_cost,
    dispersal_lower_bound,
    normalised_cost,
)


class TestLowerBound:
    def test_is_block_over_data_shards(self):
        params = ProtocolParams.for_n(16)
        assert dispersal_lower_bound(params, 1_000_000) == pytest.approx(1_000_000 / 6)

    def test_all_protocols_respect_the_bound(self):
        for n in (4, 16, 64, 128):
            params = ProtocolParams.for_n(n)
            for size in (100_000, 1_000_000):
                bound = dispersal_lower_bound(params, size)
                assert avid_m_per_node_cost(params, size) >= bound
                assert avid_fp_per_node_cost(params, size) >= bound
                assert avid_per_node_cost(params, size) >= bound


class TestAvidM:
    def test_close_to_lower_bound_for_large_blocks(self):
        # The paper: at 1 MB and N > 100, AVID-M stays near the 1/(N-2f) bound.
        params = ProtocolParams.for_n(128)
        cost = normalised_cost(avid_m_per_node_cost(params, 1_000_000), 1_000_000)
        bound = normalised_cost(dispersal_lower_bound(params, 1_000_000), 1_000_000)
        assert cost < 2.2 * bound
        assert cost < 0.1  # well under downloading the whole block

    def test_overhead_is_linear_in_n(self):
        small = avid_m_per_node_cost(ProtocolParams.for_n(16), 0)
        large = avid_m_per_node_cost(ProtocolParams.for_n(64), 0)
        assert large < 4.6 * small  # ~linear, certainly not quadratic


class TestAvidFP:
    def test_overhead_is_quadratic_in_n(self):
        small = avid_fp_per_node_cost(ProtocolParams.for_n(16), 0)
        large = avid_fp_per_node_cost(ProtocolParams.for_n(64), 0)
        assert large > 10 * small

    def test_exceeds_full_block_at_large_n_small_block(self):
        # Fig. 2: at N > 40 and |B| = 100 KB, AVID-FP downloads more than the
        # whole block per node.
        params = ProtocolParams.for_n(48)
        assert avid_fp_per_node_cost(params, 100_000) > 100_000

    def test_avid_m_always_cheaper(self):
        for n in (4, 8, 16, 32, 64, 128):
            params = ProtocolParams.for_n(n)
            for size in (100_000, 1_000_000):
                assert avid_m_per_node_cost(params, size) < avid_fp_per_node_cost(params, size)

    def test_order_of_magnitude_gap_at_scale(self):
        # The paper claims 1-2 orders of magnitude better communication cost
        # for small blocks and larger clusters.
        params = ProtocolParams.for_n(100)
        ratio = avid_fp_per_node_cost(params, 100_000) / avid_m_per_node_cost(params, 100_000)
        assert ratio > 10

    def test_cross_checksum_size_formula(self):
        # N*lambda + (N-2f)*gamma with lambda=32, gamma=16 (S3.2).
        assert LAMBDA == 32 and GAMMA == 16


class TestOriginalAvid:
    def test_downloads_at_least_the_whole_block(self):
        for n in (4, 16, 64):
            params = ProtocolParams.for_n(n)
            assert avid_per_node_cost(params, 1_000_000) >= 1_000_000


class TestNormalisation:
    def test_normalised_cost(self):
        assert normalised_cost(500_000, 1_000_000) == pytest.approx(0.5)
