"""Tests for the inter-node linking rule (S4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import ProtocolParams
from repro.core.linking import (
    INFINITE_OBSERVATION,
    completed_prefix,
    compute_linking_targets,
    kth_largest,
    linked_slots,
)


class TestCompletedPrefix:
    def test_empty(self):
        assert completed_prefix([]) == 0

    def test_contiguous(self):
        assert completed_prefix([1, 2, 3]) == 3

    def test_gap_stops_prefix(self):
        assert completed_prefix([1, 2, 4, 5]) == 2

    def test_missing_first_epoch(self):
        assert completed_prefix([2, 3]) == 0

    def test_duplicates_ignored(self):
        assert completed_prefix([1, 1, 2]) == 2


class TestKthLargest:
    def test_basic(self):
        assert kth_largest([5, 1, 9, 3], 1) == 9
        assert kth_largest([5, 1, 9, 3], 2) == 5
        assert kth_largest([5, 1, 9, 3], 4) == 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            kth_largest([1, 2], 0)
        with pytest.raises(ValueError):
            kth_largest([1, 2], 3)

    @given(values=st.lists(st.integers(0, 100), min_size=1, max_size=20), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_sorted_definition(self, values, data):
        k = data.draw(st.integers(min_value=1, max_value=len(values)))
        assert kth_largest(values, k) == sorted(values, reverse=True)[k - 1]


class TestComputeLinkingTargets:
    def setup_method(self):
        self.params = ProtocolParams.for_n(4)  # f = 1, need f+1 = 2 observations

    def test_takes_f_plus_1_largest(self):
        observations = {
            0: [5, 0, 0, 0],
            1: [3, 0, 0, 0],
            2: [1, 0, 0, 0],
        }
        # (f+1) = 2nd largest of column 0 is 3.
        assert compute_linking_targets(self.params, observations)[0] == 3

    def test_byzantine_overclaim_is_capped(self):
        # One lying node reports a huge value; the (f+1)-th largest ignores it
        # as long as at most f observations lie.
        observations = {
            0: [100, 0, 0, 0],
            1: [2, 0, 0, 0],
            2: [2, 0, 0, 0],
        }
        assert compute_linking_targets(self.params, observations)[0] == 2

    def test_bad_blocks_use_infinite_observation(self):
        observations = {
            0: [INFINITE_OBSERVATION] * 4,
            1: [1, 2, 0, 0],
            2: [1, 1, 0, 0],
        }
        targets = compute_linking_targets(self.params, observations)
        assert targets == [1, 2, 0, 0]

    def test_too_many_bad_blocks_raise(self):
        observations = {
            0: [INFINITE_OBSERVATION] * 4,
            1: [INFINITE_OBSERVATION] * 4,
            2: [0, 0, 0, 0],
        }
        with pytest.raises(ValueError):
            compute_linking_targets(self.params, observations)

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            compute_linking_targets(self.params, {0: [1, 2], 1: [1, 2]})

    def test_too_few_observations_raise(self):
        with pytest.raises(ValueError):
            compute_linking_targets(self.params, {0: [0, 0, 0, 0]})

    def test_result_independent_of_dict_order(self):
        observations = {0: [3, 1, 0, 2], 1: [2, 2, 0, 1], 2: [4, 0, 0, 1]}
        reversed_obs = dict(reversed(list(observations.items())))
        assert compute_linking_targets(self.params, observations) == compute_linking_targets(
            self.params, reversed_obs
        )


class TestLinkedSlots:
    def test_excludes_delivered_and_committed(self):
        targets = [2, 1, 0, 0]
        delivered = [(1, 0)]
        committed = [(2, 0)]
        slots = linked_slots(targets, delivered, committed)
        assert slots == [(1, 1)]

    def test_sorted_by_epoch_then_node(self):
        targets = [2, 2, 0, 0]
        slots = linked_slots(targets, [], [])
        assert slots == [(1, 0), (1, 1), (2, 0), (2, 1)]

    def test_zero_targets_give_nothing(self):
        assert linked_slots([0, 0, 0], [], []) == []
