"""Tests for the instant-delivery router used by protocol unit tests."""

import pytest

from repro.sim.instant import InstantNetwork
from repro.sim.messages import Message


class Echo:
    """Replies to every message once (generates follow-up traffic)."""

    def __init__(self, node_id, network):
        self.node_id = node_id
        self.network = network
        self.seen = []
        self.started = False

    def start(self):
        self.started = True

    def on_message(self, src, msg):
        self.seen.append((src, msg))
        if not isinstance(msg, _Ack):
            self.network.send(self.node_id, src, _Ack())


class _Ack(Message):
    pass


class TestDelivery:
    def test_run_delivers_everything(self):
        network = InstantNetwork(2)
        nodes = [Echo(i, network) for i in range(2)]
        for i, node in enumerate(nodes):
            network.attach(i, node)
        network.start()
        assert all(node.started for node in nodes)
        network.send(0, 1, Message())
        delivered = network.run()
        assert delivered == 2  # the message plus the ack
        assert len(nodes[1].seen) == 1
        assert len(nodes[0].seen) == 1

    def test_deliver_one_returns_false_when_empty(self):
        network = InstantNetwork(1)
        assert network.deliver_one() is False

    def test_pending_count(self):
        network = InstantNetwork(2)
        network.attach(0, Echo(0, network))
        network.attach(1, Echo(1, network))
        network.send(0, 1, Message())
        network.send(0, 1, Message())
        assert network.pending_count == 2

    def test_delivery_filter_drops(self):
        network = InstantNetwork(2)
        sink = Echo(1, network)
        network.attach(1, sink)
        network.delivery_filter = lambda src, dst, msg: False
        network.send(0, 1, Message())
        network.run()
        assert sink.seen == []

    def test_message_budget(self):
        network = InstantNetwork(2)

        class Flooder(Echo):
            def on_message(self, src, msg):
                self.network.send(self.node_id, src, Message())

        network.attach(0, Flooder(0, network))
        network.attach(1, Flooder(1, network))
        network.send(0, 1, Message())
        with pytest.raises(RuntimeError):
            network.run(max_messages=100)


class TestRandomisedOrder:
    def _run(self, seed):
        network = InstantNetwork(3, seed=seed)
        log = []

        class Logger:
            def __init__(self, node_id):
                self.node_id = node_id

            def start(self):
                return

            def on_message(self, src, msg):
                log.append((src, self.node_id))

        for i in range(3):
            network.attach(i, Logger(i))
        for dst in (1, 2, 1, 2):
            network.send(0, dst, Message())
        network.run()
        return log

    def test_same_seed_same_order(self):
        assert self._run(42) == self._run(42)

    def test_all_messages_delivered_regardless_of_order(self):
        assert sorted(self._run(1)) == sorted(self._run(2))


class TestTimers:
    def test_timers_fire_after_messages_drain(self):
        network = InstantNetwork(1)
        events = []
        network.schedule(5.0, lambda: events.append(("timer", network.now)))
        network.run()
        assert events == [("timer", 5.0)]

    def test_timers_fire_in_order(self):
        network = InstantNetwork(1)
        events = []
        network.schedule(5.0, lambda: events.append("late"))
        network.schedule(1.0, lambda: events.append("early"))
        network.run()
        assert events == ["early", "late"]

    def test_cancellable_timer_handle(self):
        network = InstantNetwork(1)
        events = []
        timer = network.schedule_event(1.0, lambda: events.append("cancelled"))
        network.schedule_event(2.0, lambda: events.append("kept"))
        assert timer.cancel() is True
        assert timer.cancel() is False  # double-cancel is a no-op
        network.run()
        assert events == ["kept"]

    def test_cancelling_fired_timer_is_noop(self):
        network = InstantNetwork(1)
        events = []
        timer = network.schedule_event(1.0, lambda: events.append("fired"))
        network.run()
        assert events == ["fired"]
        assert timer.cancelled
        assert timer.cancel() is False

    def test_set_timer_returns_cancellable_handle(self):
        from repro.sim.context import NodeContext

        network = InstantNetwork(1)
        ctx = NodeContext(0, network, network)
        events = []
        handle = ctx.set_timer(1.0, lambda: events.append("timer"))
        assert handle is not None
        handle.cancel()
        network.run()
        assert events == []
