"""Causal span tracing: the recorder, its reductions, and the CLI.

Unit coverage for :mod:`repro.trace.spans` (hook bookkeeping, FIFO
chunk-transfer matching, summary/critical-path reductions, Chrome
trace-event lowering), :mod:`repro.sim.profiler` (callback-kind bucketing
and the ``repro-profile-v1`` payload), and the ``trace spans`` / ``trace
flame`` subcommands' exit-status contracts (0 ok, 2 usage error).  The
behaviour-neutrality and execution-shape properties live in
``test_span_properties.py``; golden byte-identity in
``test_golden_summaries.py``.
"""

from __future__ import annotations

import argparse
import functools
import json

import pytest

from repro.common.errors import ConfigurationError, TraceError
from repro.common.ids import VIDInstanceId
from repro.experiments.catalog import get_scenario
from repro.sim.events import Simulator
from repro.sim.profiler import SimProfiler, callback_kind
from repro.trace.cli import add_trace_parser, run_trace_command
from repro.trace.spans import (
    SPAN_PHASES,
    SpanRecorder,
    SpanSpec,
    critical_path,
    profile_to_chrome,
    spans_to_chrome,
    summarise_spans,
)
from repro.vid.codec import Chunk
from repro.vid.messages import ChunkMsg, GotChunkMsg, ReturnChunkMsg


def chunk_msg(epoch=0, proposer=0):
    return ChunkMsg(
        instance=VIDInstanceId(epoch=epoch, proposer=proposer),
        root=b"r" * 32,
        chunk=Chunk(index=0, size=128),
    )


def return_chunk_msg(epoch=0, proposer=0):
    return ReturnChunkMsg(
        instance=VIDInstanceId(epoch=epoch, proposer=proposer),
        root=b"r" * 32,
        chunk=Chunk(index=0, size=128),
    )


def run_cli(*argv):
    parser = argparse.ArgumentParser()
    add_trace_parser(parser.add_subparsers(dest="command", required=True))
    return run_trace_command(parser.parse_args(["trace", *argv]))


class TestSpanSpec:
    def test_empty_out_dir_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            SpanSpec(enabled=True, out_dir="")

    def test_spans_require_a_sim_scenario(self):
        from dataclasses import replace

        base = get_scenario("fig02-vid-cost").base
        with pytest.raises(ConfigurationError, match="requires a sim scenario"):
            replace(base, spans=SpanSpec(enabled=True))


class TestSpanRecorder:
    def test_rows_appear_only_on_close(self):
        recorder = SpanRecorder()
        recorder.on_dispersal_start(0, 3, 1.0)
        assert recorder.rows == []
        recorder.on_dispersal_complete(0, 3, 2.5)
        (row,) = recorder.rows
        assert row["name"] == "dispersal"
        assert (row["node"], row["epoch"]) == (0, 3)
        assert (row["start"], row["end"]) == (1.0, 2.5)

    def test_commit_root_opens_at_first_activity(self):
        recorder = SpanRecorder()
        recorder.on_dispersal_start(0, 0, 1.0)
        recorder.on_dispersal_complete(0, 0, 2.0)
        recorder.on_commit(0, 0, 5.0)
        dispersal, commit = recorder.rows
        assert commit["name"] == "commit"
        assert commit["parent"] is None
        assert commit["start"] == 1.0  # the dispersal's start, not 5.0
        assert commit["end"] == 5.0
        assert dispersal["parent"] == commit["id"]

    def test_unmatched_closes_are_ignored(self):
        recorder = SpanRecorder()
        recorder.on_dispersal_complete(0, 0, 1.0)
        recorder.on_retrieval_done(0, 0, 0, 1.0)
        recorder.on_commit(0, 0, 1.0)
        assert recorder.rows == []

    def test_ba_rounds_chain_and_decide_suppresses(self):
        recorder = SpanRecorder()
        recorder.on_ba_round(1, 0, 2, 0, 1.0)
        recorder.on_ba_round(1, 0, 2, 1, 1.5)  # closes round 0
        recorder.on_ba_decide(1, 0, 2, True, 2.0)  # closes round 1
        recorder.on_ba_round(1, 0, 2, 2, 2.5)  # decided: ignored
        recorder.on_ba_decide(1, 0, 2, False, 3.0)  # decided: ignored
        rounds = [row for row in recorder.rows if row["name"] == "ba-round"]
        assert [(row["round"], row["start"], row["end"]) for row in rounds] == [
            (0, 1.0, 1.5),
            (1, 1.5, 2.0),
        ]
        assert "decision" not in rounds[0]
        assert rounds[1]["decision"] == 1

    def test_chunk_transfers_match_fifo(self):
        recorder = SpanRecorder()
        recorder.on_message_send(0, 1, chunk_msg(), 1.0)
        recorder.on_message_send(0, 1, chunk_msg(), 1.2)
        recorder.on_chunk_arrived(0, 1, 0, 0, 2.0)
        recorder.on_chunk_arrived(0, 1, 0, 0, 2.4)
        transfers = [r for r in recorder.rows if r["name"] == "chunk-transfer"]
        assert [(r["start"], r["end"]) for r in transfers] == [(1.0, 2.0), (1.2, 2.4)]
        assert transfers[0]["id"] < transfers[1]["id"]
        assert all(r["transfer"] == "chunk" for r in transfers)

    def test_transfer_parents_resolve_at_send_time(self):
        recorder = SpanRecorder()
        recorder.on_dispersal_start(0, 0, 0.5)
        recorder.on_message_send(0, 1, chunk_msg(proposer=0), 1.0)
        recorder.on_retrieval_start(2, 0, 0, 1.0)
        recorder.on_message_send(1, 2, return_chunk_msg(proposer=0), 1.5)
        recorder.on_chunk_arrived(0, 1, 0, 0, 2.0)
        recorder.on_return_chunk_arrived(1, 2, 0, 0, 2.0)
        chunk, ret = recorder.rows
        assert chunk["parent"] == recorder._open_dispersal[(0, 0)][0]
        assert ret["parent"] == recorder._open_retrieval[(2, 0, 0)][0]
        # The transfer is attributed to the node doing the lifecycle work:
        # the proposer for dispersal, the requester for retrieval.
        assert chunk["node"] == 0
        assert ret["node"] == 2

    def test_non_chunk_messages_are_ignored(self):
        recorder = SpanRecorder()
        msg = GotChunkMsg(instance=VIDInstanceId(epoch=0, proposer=0), root=b"r" * 32)
        recorder.on_message_send(0, 1, msg, 1.0)
        assert recorder._open_transfers == {}

    def test_finish_drops_open_spans(self):
        recorder = SpanRecorder()
        recorder.on_dispersal_start(0, 0, 1.0)
        recorder.on_retrieval_start(0, 0, 0, 1.0)
        recorder.on_message_send(0, 1, chunk_msg(), 1.0)
        recorder.finish()
        assert recorder.rows == []  # aborted work emits nothing
        recorder.on_dispersal_complete(0, 0, 2.0)  # and cannot close late
        assert recorder.rows == []

    def test_write_jsonl_round_trips(self, tmp_path):
        recorder = SpanRecorder()
        recorder.on_dispersal_start(0, 0, 1.0)
        recorder.on_dispersal_complete(0, 0, 2.0)
        target = recorder.write_jsonl(tmp_path / "s.spans.jsonl")
        lines = target.read_text().splitlines()
        assert [json.loads(line) for line in lines] == recorder.rows


def synthetic_rows():
    """A two-commit span tree with a known critical path."""
    recorder = SpanRecorder()
    # Fast block: epoch 0 at node 0.
    recorder.on_dispersal_start(0, 0, 0.0)
    recorder.on_dispersal_complete(0, 0, 0.4)
    recorder.on_commit(0, 0, 1.0)
    # Slow block: epoch 1 at node 0, stalled on a retrieval.
    recorder.on_dispersal_start(0, 1, 1.0)
    recorder.on_dispersal_complete(0, 1, 1.5)
    recorder.on_retrieval_start(0, 1, 2, 1.5)
    recorder.on_message_send(1, 0, return_chunk_msg(epoch=1, proposer=2), 1.6)
    recorder.on_return_chunk_arrived(1, 0, 1, 2, 3.4)
    recorder.on_retrieval_done(0, 1, 2, 3.5)
    recorder.on_commit(0, 1, 4.0)
    return list(recorder.rows)


class TestSummarise:
    def test_phase_stats_and_ordering(self):
        summary = summarise_spans(synthetic_rows())
        assert list(summary["phases"]) == [
            name for name in SPAN_PHASES if name in summary["phases"]
        ]
        assert summary["phases"]["dispersal"]["count"] == 2
        assert summary["phases"]["commit"]["max"] == 3.0
        assert summary["commits"]["count"] == 2
        assert summary["commits"]["max_latency"] == 3.0

    def test_slowest_commit_leads_the_drilldown(self):
        summary = summarise_spans(synthetic_rows(), top=1)
        (slow,) = summary["slowest"]
        assert (slow["node"], slow["epoch"]) == (0, 1)
        assert slow["latency"] == 3.0
        # The commit waited on the retrieval, which waited on the transfer.
        assert [step["name"] for step in slow["critical_path"]] == [
            "retrieval",
            "chunk-transfer",
        ]
        assert slow["phase_seconds"]["retrieval"] == 2.0

    def test_critical_path_prefers_latest_finishing_child(self):
        commit = {"id": 0, "name": "commit", "node": 0, "start": 0.0, "end": 5.0}
        children = {
            0: [
                {"id": 1, "name": "dispersal", "node": 0, "start": 0.0, "end": 1.0},
                {"id": 2, "name": "retrieval", "node": 0, "start": 0.0, "end": 4.0,
                 "slot": 3},
            ]
        }
        path = critical_path(commit, children)
        assert [step["name"] for step in path] == ["retrieval"]
        assert path[0]["slot"] == 3

    def test_no_span_rows_rejected(self):
        with pytest.raises(TraceError, match="no span rows"):
            summarise_spans([{"kind": "meta", "t": 0.0}])


class TestChromeLowering:
    def test_span_events_are_complete_events(self):
        trace = spans_to_chrome(synthetic_rows())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        assert all(event["dur"] >= 0 for event in events)
        commit = next(e for e in events if e["name"] == "commit")
        assert commit["ts"] == 0.0
        assert commit["dur"] == pytest.approx(1.0 * 1e6)
        assert {e["tid"] for e in events} == {0}

    def test_profile_events_tile_sequentially(self):
        profiler = SimProfiler()
        profiler.record("a", 0.25)
        profiler.record("b", 0.5)
        trace = profile_to_chrome(profiler.as_dict())
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["b", "a"]  # ranked by seconds
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(events[0]["dur"])

    def test_non_profile_payload_rejected(self):
        with pytest.raises(TraceError, match="repro-profile-v1"):
            profile_to_chrome({"format": "repro-trace-v1"})


class TestSimProfiler:
    def test_callback_kind_buckets(self):
        def plain():
            pass

        class Callable:
            def __call__(self):
                pass

        assert callback_kind(plain).endswith("plain")
        assert callback_kind(functools.partial(plain)).endswith("plain")
        assert "Callable" in callback_kind(Callable())

    def test_payload_ranks_by_host_seconds(self):
        profiler = SimProfiler()
        profiler.record("hot", 0.2)
        profiler.record("hot", 0.3)
        profiler.record("cold", 0.1)
        payload = profiler.as_dict()
        assert payload["format"] == "repro-profile-v1"
        assert [entry["kind"] for entry in payload["kinds"]] == ["hot", "cold"]
        assert payload["kinds"][0]["events"] == 2
        assert payload["total_events"] == 3
        assert payload["total_seconds"] == pytest.approx(0.6)

    def test_profiled_loop_attributes_every_event(self):
        sim = Simulator()
        sim.profiler = SimProfiler()

        def tick():
            pass

        for delay in (0.1, 0.2, 0.3):
            sim.schedule(delay, tick)
        sim.run(until=1.0)
        payload = sim.profiler.as_dict()
        assert payload["total_events"] >= 3
        assert any("tick" in entry["kind"] for entry in payload["kinds"])

    def test_unprofiled_loop_matches_profiled(self):
        def run(profiler):
            sim = Simulator()
            sim.profiler = profiler
            fired = []
            sim.schedule(0.5, lambda: fired.append(sim.now))
            sim.schedule(0.25, lambda: fired.append(sim.now))
            end = sim.run(until=2.0)
            return fired, end

        assert run(None) == run(SimProfiler())


class TestSpansCli:
    def spans_file(self, tmp_path):
        path = tmp_path / "run.spans.jsonl"
        path.write_text(
            "".join(json.dumps(row, sort_keys=True) + "\n" for row in synthetic_rows())
        )
        return path

    def test_summarises_a_span_file(self, tmp_path, capsys):
        assert run_cli("spans", str(self.spans_file(tmp_path))) == 0
        out = capsys.readouterr().out
        assert "2 committed block(s)" in out
        assert "dispersal" in out
        assert "slowest: node 0 epoch 1" in out

    def test_json_output_carries_the_summary(self, tmp_path, capsys):
        assert run_cli("spans", str(self.spans_file(tmp_path)), "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["commits"]["count"] == 2

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert run_cli("spans", str(tmp_path / "gone.spans.jsonl")) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unknown_scenario_is_exit_2(self, capsys):
        assert run_cli("spans", "no-such-scenario") == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_profile_with_a_file_source_is_exit_2(self, tmp_path, capsys):
        source = self.spans_file(tmp_path)
        code = run_cli(
            "spans", str(source), "--profile", str(tmp_path / "p.json")
        )
        assert code == 2
        assert "--profile" in capsys.readouterr().err

    def test_flame_from_span_file(self, tmp_path, capsys):
        out = tmp_path / "flame.json"
        assert run_cli("flame", str(self.spans_file(tmp_path)), "--out", str(out)) == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        assert all(event["ph"] == "X" for event in trace["traceEvents"])
        assert "trace event(s)" in capsys.readouterr().out

    def test_flame_from_profile_json(self, tmp_path):
        profiler = SimProfiler()
        profiler.record("loop", 1.0)
        source = tmp_path / "profile.json"
        source.write_text(json.dumps(profiler.as_dict()))
        out = tmp_path / "flame.json"
        assert run_cli("flame", str(source), "--out", str(out)) == 0
        assert json.loads(out.read_text())["traceEvents"][0]["name"] == "loop"

    def test_flame_on_non_profile_json_is_exit_2(self, tmp_path, capsys):
        source = tmp_path / "bogus.json"
        source.write_text('{"format": "something-else"}')
        assert run_cli("flame", str(source), "--out", str(tmp_path / "f.json")) == 2
        assert "repro-profile-v1" in capsys.readouterr().err
