"""Tests for workload generation: transaction generators and bandwidth traces."""

import pytest

from repro.common.params import ProtocolParams
from repro.core.config import NodeConfig
from repro.core.node import DispersedLedgerNode
from repro.sim.context import NodeContext
from repro.sim.events import Simulator
from repro.sim.instant import InstantNetwork
from repro.workload.cities import AWS_CITIES, VULTR_CITIES, city_delay_matrix, city_network_config
from repro.workload.traces import (
    MB,
    GaussMarkovProcess,
    constant_traces,
    gauss_markov_traces,
    spatial_variation_rates,
)
from repro.workload.txgen import PoissonTransactionGenerator, SaturatingTransactionGenerator


def make_node():
    """A standalone node whose mempool the generators can feed."""
    params = ProtocolParams.for_n(4)
    network = InstantNetwork(4)
    ctx = NodeContext(0, network, network)
    return DispersedLedgerNode(0, params, ctx, config=NodeConfig())


class TestPoissonGenerator:
    def test_mean_rate_is_respected(self):
        sim = Simulator()
        node = make_node()
        generator = PoissonTransactionGenerator(
            sim, node, rate_bytes_per_second=100_000, tx_size=250, seed=7
        )
        generator.start()
        sim.run(until=50.0)
        rate = generator.generated_bytes / 50.0
        assert rate == pytest.approx(100_000, rel=0.15)
        assert node.mempool.pending_count == generator.generated

    def test_transactions_carry_timestamps_and_origin(self):
        sim = Simulator()
        node = make_node()
        PoissonTransactionGenerator(sim, node, rate_bytes_per_second=10_000, seed=1).start()
        sim.run(until=5.0)
        txs = list(node.mempool._queue)
        assert txs, "generator produced nothing"
        assert all(tx.origin == 0 for tx in txs)
        assert all(0 <= tx.created_at <= 5.0 for tx in txs)

    def test_stop_at(self):
        sim = Simulator()
        node = make_node()
        generator = PoissonTransactionGenerator(
            sim, node, rate_bytes_per_second=1_000_000, seed=2, stop_at=1.0
        )
        generator.start()
        sim.run(until=10.0)
        assert all(tx.created_at <= 1.0 for tx in node.mempool._queue)

    def test_seeds_give_distinct_but_reproducible_streams(self):
        def arrivals(seed):
            sim = Simulator()
            node = make_node()
            PoissonTransactionGenerator(sim, node, rate_bytes_per_second=50_000, seed=seed).start()
            sim.run(until=5.0)
            return [tx.created_at for tx in node.mempool._queue]

        assert arrivals(1) == arrivals(1)
        assert arrivals(1) != arrivals(2)

    def test_rejects_bad_parameters(self):
        sim, node = Simulator(), make_node()
        with pytest.raises(ValueError):
            PoissonTransactionGenerator(sim, node, rate_bytes_per_second=0)
        with pytest.raises(ValueError):
            PoissonTransactionGenerator(sim, node, rate_bytes_per_second=100, tx_size=0)


class TestSaturatingGenerator:
    def test_keeps_mempool_topped_up(self):
        sim = Simulator()
        node = make_node()
        generator = SaturatingTransactionGenerator(
            sim, node, target_pending_bytes=100_000, tx_size=250, refill_interval=0.1
        )
        generator.start()
        sim.run(until=0.0)
        assert node.mempool.pending_bytes >= 100_000
        node.mempool.take_batch(60_000, now=0.0)
        sim.run(until=0.2)
        assert node.mempool.pending_bytes >= 100_000

    def test_rejects_bad_parameters(self):
        sim, node = Simulator(), make_node()
        with pytest.raises(ValueError):
            SaturatingTransactionGenerator(sim, node, target_pending_bytes=0)
        with pytest.raises(ValueError):
            SaturatingTransactionGenerator(sim, node, refill_interval=0.0)


class TestGaussMarkovProcess:
    def test_sample_statistics(self):
        process = GaussMarkovProcess(mean=10 * MB, sigma=2 * MB, alpha=0.9, seed=3)
        path = process.sample_path(duration=2000.0, step=1.0)
        rates = [rate for _, rate in path]
        mean = sum(rates) / len(rates)
        assert mean == pytest.approx(10 * MB, rel=0.1)
        assert min(rates) >= process.floor

    def test_consecutive_samples_are_correlated(self):
        process = GaussMarkovProcess(mean=10 * MB, sigma=5 * MB, alpha=0.98, seed=5)
        rates = [rate for _, rate in process.sample_path(500.0)]
        jumps = [abs(b - a) for a, b in zip(rates, rates[1:])]
        # With alpha = 0.98 the typical step is much smaller than sigma.
        assert sum(jumps) / len(jumps) < 2.5 * MB

    def test_trace_is_usable_by_pipes(self):
        process = GaussMarkovProcess(mean=1000.0, sigma=100.0, seed=1)
        trace = process.trace(duration=10.0)
        assert trace.finish_time(0.0, 500) > 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GaussMarkovProcess(mean=0, sigma=1)
        with pytest.raises(ValueError):
            GaussMarkovProcess(mean=1, sigma=-1)
        with pytest.raises(ValueError):
            GaussMarkovProcess(mean=1, sigma=1, alpha=1.0)
        with pytest.raises(ValueError):
            GaussMarkovProcess(mean=1, sigma=1, floor=0)
        process = GaussMarkovProcess(mean=1, sigma=0.1)
        with pytest.raises(ValueError):
            process.sample_path(duration=0)


class TestTraceHelpers:
    def test_spatial_variation_rates_match_paper(self):
        rates = spatial_variation_rates(16)
        assert rates[0] == 10 * MB
        assert rates[15] == pytest.approx(17.5 * MB)
        assert rates == sorted(rates)

    def test_constant_traces(self):
        traces = constant_traces(4, 1000.0)
        assert len(traces) == 4
        assert all(t.rate_at(0.0) == 1000.0 for t in traces)

    def test_gauss_markov_traces_are_independent(self):
        traces = gauss_markov_traces(3, duration=20.0, seed=1)
        rates = [tuple(t.rate_at(float(s)) for s in range(20)) for t in traces]
        assert len(set(rates)) == 3


class TestCityProfiles:
    def test_testbed_sizes_match_paper(self):
        assert len(AWS_CITIES) == 16
        assert len(VULTR_CITIES) == 15

    def test_highlighted_cities_present(self):
        names = [city.name for city in AWS_CITIES]
        assert "Ohio" in names and "Mumbai" in names
        ohio = next(c for c in AWS_CITIES if c.name == "Ohio")
        mumbai = next(c for c in AWS_CITIES if c.name == "Mumbai")
        assert ohio.mean_bandwidth > mumbai.mean_bandwidth

    def test_delay_matrix_symmetric_zero_diagonal(self):
        matrix = city_delay_matrix(AWS_CITIES)
        for i in range(len(AWS_CITIES)):
            assert matrix[i][i] == 0.0
            for j in range(len(AWS_CITIES)):
                assert matrix[i][j] == matrix[j][i]

    def test_network_config_shape(self):
        config = city_network_config(AWS_CITIES, duration=10.0, seed=0)
        assert config.num_nodes == 16
        assert len(config.egress_traces) == 16
        assert len(config.ingress_traces) == 16
        # Egress serving headroom exceeds the (binding) ingress capacity.
        assert config.egress_trace(0).rate_at(0.0) > config.ingress_trace(0).rate_at(0.0)

    def test_vultr_is_slower_than_aws(self):
        aws_mean = sum(c.mean_bandwidth for c in AWS_CITIES) / len(AWS_CITIES)
        vultr_mean = sum(c.mean_bandwidth for c in VULTR_CITIES) / len(VULTR_CITIES)
        assert vultr_mean < aws_mean
