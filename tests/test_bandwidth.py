"""Tests for bandwidth traces."""

import math

import pytest

from repro.sim.bandwidth import ConstantBandwidth, PiecewiseConstantBandwidth


class TestConstantBandwidth:
    def test_finish_time(self):
        trace = ConstantBandwidth(1000.0)
        assert trace.finish_time(2.0, 500) == pytest.approx(2.5)

    def test_unlimited(self):
        trace = ConstantBandwidth(None)
        assert trace.rate_at(0.0) == math.inf
        assert trace.finish_time(3.0, 10**9) == 3.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(0.0)
        with pytest.raises(ValueError):
            ConstantBandwidth(-1.0)


class TestPiecewiseConstantBandwidth:
    def test_single_segment_behaves_like_constant(self):
        trace = PiecewiseConstantBandwidth([(0.0, 100.0)])
        assert trace.finish_time(1.0, 50) == pytest.approx(1.5)

    def test_rate_lookup(self):
        trace = PiecewiseConstantBandwidth([(0.0, 10.0), (5.0, 20.0)])
        assert trace.rate_at(0.0) == 10.0
        assert trace.rate_at(4.99) == 10.0
        assert trace.rate_at(5.0) == 20.0
        assert trace.rate_at(100.0) == 20.0

    def test_transfer_spanning_segments(self):
        # 10 B/s for 5 s (50 bytes), then 20 B/s: a 90-byte transfer started
        # at t=0 finishes at 5 + 40/20 = 7 s.
        trace = PiecewiseConstantBandwidth([(0.0, 10.0), (5.0, 20.0)])
        assert trace.finish_time(0.0, 90) == pytest.approx(7.0)

    def test_transfer_through_zero_rate_segment(self):
        trace = PiecewiseConstantBandwidth([(0.0, 10.0), (1.0, 0.0), (3.0, 10.0)])
        # 15 bytes: 10 in the first second, stalled for 2 s, 5 more at t>3.
        assert trace.finish_time(0.0, 15) == pytest.approx(3.5)

    def test_zero_trailing_rate_never_finishes(self):
        trace = PiecewiseConstantBandwidth([(0.0, 10.0), (1.0, 0.0)])
        assert trace.finish_time(0.0, 1000) == math.inf

    def test_zero_size_transfer(self):
        trace = PiecewiseConstantBandwidth([(0.0, 10.0)])
        assert trace.finish_time(4.0, 0) == 4.0

    def test_start_before_first_breakpoint(self):
        trace = PiecewiseConstantBandwidth([(1.0, 10.0)])
        # Transfers started before the trace begins use the first rate from
        # the first breakpoint onward.
        assert trace.finish_time(0.0, 10) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseConstantBandwidth([])
        with pytest.raises(ValueError):
            PiecewiseConstantBandwidth([(0.0, 1.0), (0.0, 2.0)])
        with pytest.raises(ValueError):
            PiecewiseConstantBandwidth([(0.0, -1.0)])
