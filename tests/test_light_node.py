"""Tests for the low-bandwidth ("observer") mode sketched in S1 of the paper.

A node running with ``retrieve_blocks=False`` participates fully in
dispersal and agreement — storing its chunks, voting in every binary
agreement, contributing to the quorum and therefore to the network's
security — but never downloads full blocks and only proposes empty blocks.
It still learns the agreed log of commitments (its ``agreed_epoch``
advances), which is exactly the mobile-device scenario the paper motivates:
stay in consensus on a thin connection, catch up on block retrievals later.
"""

from repro.core.config import NodeConfig
from repro.core.node import DispersedLedgerNode
from tests.conftest import build_cluster, submit_texts
from tests.test_dl_node import assert_identical_ledgers


def build_mixed_cluster(params, num_light=1, max_epochs=3, seed=None):
    """A DL cluster whose last ``num_light`` nodes run in low-bandwidth mode."""
    light_config = NodeConfig(data_plane="real", retrieve_blocks=False)

    def light_factory(node_id, cluster_params, ctx, **kwargs):
        kwargs["config"] = light_config
        return DispersedLedgerNode(node_id, cluster_params, ctx, **kwargs)

    node_classes = {params.n - 1 - i: light_factory for i in range(num_light)}
    return build_cluster(
        DispersedLedgerNode,
        params,
        seed=seed,
        max_epochs=max_epochs,
        node_classes=node_classes,
    )


class TestLowBandwidthMode:
    def test_light_node_tracks_agreement_without_delivering(self, params4):
        network, nodes = build_mixed_cluster(params4, num_light=1)
        for i in range(3):
            submit_texts(nodes[i], [f"full-{i}-{k}" for k in range(2)])
        network.start()
        network.run()
        light = nodes[3]
        # It agreed on every epoch's committed set...
        assert light.agreed_epoch == 3
        # ...but never retrieved or delivered any block.
        assert light.ledger.num_blocks == 0
        assert light.delivered_epoch == 0

    def test_full_nodes_unaffected_by_light_peer(self, params4):
        network, nodes = build_mixed_cluster(params4, num_light=1)
        submitted = []
        for i in range(3):
            submitted += [tx.tx_id for tx in submit_texts(nodes[i], [f"tx-{i}"])]
        network.start()
        network.run()
        full_nodes = [0, 1, 2]
        assert_identical_ledgers(nodes, full_nodes)
        delivered = {tx.tx_id for tx in nodes[0].ledger.transactions()}
        assert set(submitted) <= delivered
        assert all(nodes[i].delivered_epoch == 3 for i in full_nodes)

    def test_light_node_proposes_only_empty_blocks(self, params4):
        network, nodes = build_mixed_cluster(params4, num_light=1)
        # Even with transactions in its mempool, a light node must not
        # propose them: it cannot validate state it never downloads.
        submit_texts(nodes[3], ["should-not-appear"])
        network.start()
        network.run()
        for entry in nodes[0].ledger.entries:
            if entry.proposer == 3:
                assert entry.block.is_empty
        delivered_payloads = {tx.data for tx in nodes[0].ledger.transactions()}
        assert b"should-not-appear" not in delivered_payloads

    def test_light_node_votes_contribute_to_progress(self, params7):
        # With f = 2, a 7-node cluster needs N - f = 5 participants; two full
        # nodes crashed plus two light nodes still leaves enough *voters*
        # because the light nodes keep voting even though they never retrieve.
        from tests.test_dl_node import _crashed_factory

        light_config = NodeConfig(data_plane="real", retrieve_blocks=False)

        def light_factory(node_id, cluster_params, ctx, **kwargs):
            kwargs["config"] = light_config
            return DispersedLedgerNode(node_id, cluster_params, ctx, **kwargs)

        network, nodes = build_cluster(
            DispersedLedgerNode,
            params7,
            max_epochs=2,
            node_classes={5: light_factory, 6: light_factory, 4: _crashed_factory()},
        )
        submit_texts(nodes[0], ["survives-light-quorum"])
        network.start()
        network.run()
        full_nodes = [0, 1, 2, 3]
        assert_identical_ledgers(nodes, full_nodes)
        assert all(nodes[i].delivered_epoch == 2 for i in full_nodes)
        delivered = {tx.data for tx in nodes[0].ledger.transactions()}
        assert b"survives-light-quorum" in delivered

    def test_observation_arrays_still_advance(self, params4):
        network, nodes = build_mixed_cluster(params4, num_light=1)
        network.start()
        network.run()
        # The light node still observes dispersal completions (it holds its
        # chunks), so its V array matches the full nodes'.
        assert nodes[3].observation_array() == nodes[0].observation_array()
