"""Golden telemetry-envelope regression suite.

The scenarios in ``ENVELOPE_CONFIGS`` are re-recorded at their pinned
configuration and the per-node time-weighted mean/max of every telemetry
series is checked against the ``repro-envelope-v1`` snapshot under
``tests/golden/envelopes/`` — within the tolerances the envelope itself
declares, not byte-for-byte (see :mod:`repro.trace.diff`).  This is the
guard the bit-exact summary goldens can't provide: a change that leaves the
end-of-run summary intact but doubles a mid-run queue spike trips here.

Regenerate after an intentional behaviour change with the same flow as the
summary goldens::

    PYTHONPATH=src python -m pytest tests/test_golden_envelopes.py --update-golden

and commit the diff.  CI additionally runs the standalone gate — ``trace
export`` + ``trace diff`` against the pinned envelope — on every push, with
the rendered ``trace plot`` output uploaded as artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.golden import (
    ENVELOPE_CONFIGS,
    canonical_json,
    envelope_names,
    envelope_payload,
    golden_names,
    record_envelope_rows,
)
from repro.trace.diff import breaches, check_envelope, is_envelope

ENVELOPE_DIR = Path(__file__).parent / "golden" / "envelopes"

pytestmark = pytest.mark.golden


def test_envelope_scenarios_exist_in_the_catalog():
    assert set(envelope_names()) <= set(golden_names()), sorted(
        set(envelope_names()) - set(golden_names())
    )


def test_every_envelope_file_belongs_to_a_pinned_scenario():
    """Stale envelope files (renamed/removed scenarios) fail loudly."""
    on_disk = {path.stem for path in ENVELOPE_DIR.glob("*.json")}
    stale = sorted(on_disk - set(envelope_names()))
    assert not stale, f"stale envelopes: {stale}"


@pytest.mark.parametrize("name", envelope_names())
def test_golden_envelope(name: str, update_golden: bool):
    path = ENVELOPE_DIR / f"{name}.json"
    if update_golden:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_json(envelope_payload(name)))
        return
    assert path.exists(), (
        f"missing envelope {path}; generate it with "
        f"`pytest tests/test_golden_envelopes.py --update-golden`"
    )
    stored = json.loads(path.read_text(encoding="utf-8"))
    assert is_envelope(stored), f"{path} is not a repro-envelope-v1 file"
    # Staleness guard: an envelope checked against a *different* pinned run
    # configuration would pass or fail for the wrong reasons entirely.
    assert stored["run"] == ENVELOPE_CONFIGS[name].run_fields(), (
        f"envelope {path} was recorded under different pins; regenerate it "
        f"with `pytest tests/test_golden_envelopes.py --update-golden`"
    )
    rows = record_envelope_rows(name)
    failed = breaches(check_envelope(rows, stored))
    assert not failed, "telemetry drifted outside the pinned envelope:\n" + "\n".join(
        f"  node {d.node} {d.series}.{d.stat}: reference {d.reference:g}, "
        f"observed {d.observed:g} (allowed ±{d.allowed:g})"
        for d in failed
    )


def test_drift_outside_the_envelope_is_detected():
    """The gate actually gates: a recording whose queue series drifts 2x
    past the pinned envelope breaches it (the failure mode the CI
    telemetry-envelope job exists to catch)."""
    name = envelope_names()[0]
    stored = json.loads((ENVELOPE_DIR / f"{name}.json").read_text(encoding="utf-8"))
    drifted = [dict(row) for row in record_envelope_rows(name)]
    for row in drifted:
        if row.get("kind") == "sample":
            row["egress_queue"] *= 2
    failed = breaches(check_envelope(drifted, stored))
    assert failed
    assert {delta.series for delta in failed} == {"egress_queue"}
