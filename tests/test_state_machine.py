"""Tests for the replicated key-value state machine."""

from repro.core.block import Transaction
from repro.core.state_machine import KeyValueStateMachine, decode_operation, encode_operation


def tx_with(payload: bytes, tx_id=1, origin=0):
    return Transaction(tx_id=tx_id, origin=origin, created_at=0.0, size=len(payload), data=payload)


class TestEncoding:
    def test_roundtrip(self):
        payload = encode_operation("set", "account", 42)
        assert decode_operation(payload) == {"op": "set", "key": "account", "value": 42}

    def test_malformed_payloads_decode_to_none(self):
        assert decode_operation(b"not json") is None
        assert decode_operation(b"\xff\xfe") is None
        assert decode_operation(b"[1, 2, 3]") is None
        assert decode_operation(b"{\"op\": \"set\"}") is None


class TestApply:
    def test_set_and_delete(self):
        machine = KeyValueStateMachine()
        assert machine.apply(tx_with(encode_operation("set", "x", "1")))
        assert machine.state == {"x": "1"}
        assert machine.apply(tx_with(encode_operation("delete", "x")))
        assert machine.state == {}

    def test_add_increments(self):
        machine = KeyValueStateMachine()
        machine.apply(tx_with(encode_operation("add", "counter", 3)))
        machine.apply(tx_with(encode_operation("add", "counter", 4)))
        assert machine.state["counter"] == 7

    def test_add_to_non_numeric_rejected(self):
        machine = KeyValueStateMachine()
        machine.apply(tx_with(encode_operation("set", "k", "text")))
        assert not machine.apply(tx_with(encode_operation("add", "k", 1)))
        assert machine.rejected_count == 1

    def test_unknown_operation_rejected(self):
        machine = KeyValueStateMachine()
        assert not machine.apply(tx_with(encode_operation("frobnicate", "k", 1)))

    def test_spam_transactions_do_not_corrupt_state(self):
        machine = KeyValueStateMachine()
        machine.apply(tx_with(encode_operation("set", "k", "v")))
        machine.apply(tx_with(b"spam bytes"))
        machine.apply(tx_with(b""))
        assert machine.state == {"k": "v"}
        assert machine.rejected_count == 2

    def test_apply_block_counts(self):
        machine = KeyValueStateMachine()
        txs = (
            tx_with(encode_operation("set", "a", 1), tx_id=1),
            tx_with(b"junk", tx_id=2),
            tx_with(encode_operation("set", "b", 2), tx_id=3),
        )
        assert machine.apply_block(txs) == 2
        assert machine.applied_count == 2


class TestDeterminism:
    def test_replicas_converge_on_same_log(self):
        log = [
            tx_with(encode_operation("set", "a", 1), tx_id=1),
            tx_with(encode_operation("add", "a", 5), tx_id=2),
            tx_with(encode_operation("set", "b", "x"), tx_id=3),
            tx_with(encode_operation("delete", "a"), tx_id=4),
        ]
        first, second = KeyValueStateMachine(), KeyValueStateMachine()
        for tx in log:
            first.apply(tx)
        for tx in log:
            second.apply(tx)
        assert first.snapshot() == second.snapshot() == {"b": "x"}

    def test_order_matters(self):
        # The whole point of total order: different orders may give different
        # states, which is why the ledger's ordering guarantees matter.
        a = tx_with(encode_operation("set", "k", 1), tx_id=1)
        b = tx_with(encode_operation("set", "k", 2), tx_id=2)
        first, second = KeyValueStateMachine(), KeyValueStateMachine()
        first.apply(a), first.apply(b)
        second.apply(b), second.apply(a)
        assert first.state["k"] != second.state["k"]
