"""Snapshot/restore/continue must be invisible: byte-identical summaries.

Three layers of evidence:

* a hypothesis property — arbitrary fast-tier catalog scenarios snapshotted
  at arbitrary mid-run times, restored **in a fresh process** (via the
  ``resume`` CLI subcommand) and continued, must reproduce the clean run's
  summary JSON byte-for-byte, event counts included;
* a deterministic sweep over every fast-tier golden ``sim`` scenario,
  snapshotting its first pinned point mid-run and diffing the fresh-process
  continuation against the pinned golden snapshot on disk;
* a structural probe asserting the chosen snapshot time really does land
  mid-epoch, mid-dispersal and mid-transfer — so the suite cannot quietly
  degrade into snapshotting quiesced states only.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.experiments.golden import SLOW_GOLDEN, golden_names, golden_points
from repro.experiments.runner import build_experiment
from repro.experiments.scenario import ScenarioSpec, build_network_config
from repro.sim.snapshot import save_checkpoint

GOLDEN_DIR = Path(__file__).parent / "golden"
SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _fast_sim_golden_names() -> list[str]:
    names = []
    for name in golden_names():
        if name in SLOW_GOLDEN:
            continue
        _config, base, _points = golden_points(name)
        if base.kind == "sim":
            names.append(name)
    return names


def _build_state(spec: ScenarioSpec, overrides: dict):
    return build_experiment(
        spec.protocol,
        build_network_config(spec),
        spec.duration,
        workload=spec.workload,
        node_config=spec.node,
        params=spec.params(),
        seed=spec.seed,
        warmup=spec.effective_warmup(),
        adversary=spec.adversary,
        max_epochs=spec.max_epochs,
        meta={"spec": spec.to_dict(), "overrides": dict(overrides)},
    )


def _resume_in_fresh_process(checkpoint: Path) -> dict:
    """Continue ``checkpoint`` via the CLI in a brand-new interpreter."""
    env = {**os.environ, "PYTHONPATH": SRC_DIR}
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "resume", str(checkpoint), "--json"],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


_CLEAN_CACHE: dict[str, dict] = {}


def _clean_first_point_summary(name: str) -> dict:
    """The uninterrupted summary of a scenario's first golden point (cached)."""
    if name not in _CLEAN_CACHE:
        from repro.experiments.engine import run_scenario

        _config, _base, points = golden_points(name)
        overrides, spec = points[0]
        _CLEAN_CACHE[name] = run_scenario(spec, overrides).summary()
    return _CLEAN_CACHE[name]


# A diverse slice of the fast tier: plain replay, a mid-run crash, both
# node-class adversaries, and the heterogeneous-straggler topology.
PROPERTY_SCENARIOS = (
    "trace-replay-wan",
    "mid-run-crash",
    "censor-victim",
    "equivocate-split",
    "straggler-hetero",
)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
@given(
    name=st.sampled_from(PROPERTY_SCENARIOS),
    fraction=st.floats(min_value=0.1, max_value=0.9),
)
def test_snapshot_restore_continue_is_byte_identical(name: str, fraction: float):
    _config, _base, points = golden_points(name)
    overrides, spec = points[0]
    state = _build_state(spec, overrides)
    state.sim.run(until=spec.duration * fraction)
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "mid.ckpt"
        save_checkpoint(checkpoint, state)
        resumed = _resume_in_fresh_process(checkpoint)
    clean = _clean_first_point_summary(name)
    assert json.dumps(resumed, sort_keys=True) == json.dumps(clean, sort_keys=True)
    assert resumed["events_processed"] == clean["events_processed"]


@pytest.mark.parametrize("name", _fast_sim_golden_names())
def test_fast_golden_scenarios_resume_to_pinned_snapshot(name: str, tmp_path):
    """Snapshot mid-run, restore in a fresh process, diff against the golden."""
    _config, _base, points = golden_points(name)
    overrides, spec = points[0]
    state = _build_state(spec, overrides)
    state.sim.run(until=spec.duration * 0.37)
    checkpoint = tmp_path / f"{name}.ckpt"
    save_checkpoint(checkpoint, state)
    resumed = _resume_in_fresh_process(checkpoint)
    pinned = json.loads((GOLDEN_DIR / f"{name}.json").read_text())["summaries"][0]
    assert json.dumps(resumed, sort_keys=True) == json.dumps(pinned, sort_keys=True)


def test_snapshot_point_lands_mid_epoch_mid_dispersal_mid_transfer():
    """Mid-run snapshot times inside the property range are genuinely mid-flight."""
    _config, _base, points = golden_points("trace-replay-wan")
    overrides, spec = points[0]
    state = _build_state(spec, overrides)
    state.sim.run(until=spec.duration * 0.5)
    # Mid-epoch: proposal frontier ahead of the delivery frontier.
    assert any(n.current_epoch > n.delivered_epoch for n in state.nodes)
    # Mid-dispersal: VID instances still outstanding.
    assert any(len(n._vid_instances) > 0 for n in state.nodes)
    # Mid-transfer: at least one egress pipe is actively draining bytes, and
    # further transfers are queued behind it.
    assert any(pipe._busy for pipe in state.network._egress)
    assert any(
        pipe._fifo or pipe._heap for pipe in state.network._egress
    )
    # And the event queue is non-trivial (slotted entries to snapshot).
    assert len(state.sim._queue) > 0
