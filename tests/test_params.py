"""Tests for the (N, f) protocol parameters."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.params import ProtocolParams


class TestValidation:
    def test_minimum_cluster(self):
        params = ProtocolParams(n=4, f=1)
        assert params.n == 4
        assert params.f == 1

    def test_f_zero_allowed(self):
        params = ProtocolParams(n=1, f=0)
        assert params.quorum == 1

    def test_rejects_too_many_faults(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(n=4, f=2)

    def test_rejects_n_equal_3f(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(n=6, f=2)

    def test_rejects_negative_f(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(n=4, f=-1)

    def test_rejects_non_positive_n(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(n=0, f=0)

    def test_frozen(self):
        params = ProtocolParams(n=4, f=1)
        with pytest.raises(Exception):
            params.n = 7  # type: ignore[misc]


class TestForN:
    @pytest.mark.parametrize(
        "n,expected_f",
        [(1, 0), (2, 0), (3, 0), (4, 1), (6, 1), (7, 2), (10, 3), (16, 5), (128, 42)],
    )
    def test_maximum_f(self, n, expected_f):
        assert ProtocolParams.for_n(n).f == expected_f

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams.for_n(0)

    def test_always_valid(self):
        for n in range(1, 200):
            params = ProtocolParams.for_n(n)
            assert params.n >= 3 * params.f + 1


class TestThresholds:
    def test_quorum_is_n_minus_f(self):
        params = ProtocolParams(n=16, f=5)
        assert params.quorum == 11

    def test_small_quorum_is_f_plus_one(self):
        params = ProtocolParams(n=16, f=5)
        assert params.small_quorum == 6

    def test_ready_threshold_is_2f_plus_one(self):
        params = ProtocolParams(n=16, f=5)
        assert params.ready_threshold == 11
        assert params.ready_amplify_threshold == 6

    def test_data_shards(self):
        params = ProtocolParams(n=16, f=5)
        assert params.data_shards == 6
        assert params.total_shards == 16

    def test_quorum_exceeds_ready_threshold_guarantee(self):
        # N - f >= 2f + 1 is what the AVID-M proofs rely on.
        for n in range(4, 100):
            params = ProtocolParams.for_n(n)
            assert params.quorum >= params.ready_threshold

    def test_node_indices(self):
        params = ProtocolParams(n=4, f=1)
        assert list(params.node_indices()) == [0, 1, 2, 3]
