"""Tests for the adversary toolkit itself."""

import pytest

from repro.adversary.censor import CensoringNode
from repro.adversary.crash import CrashAfterNode, CrashedNode
from repro.adversary.equivocator import EquivocatingDisperserNode, send_inconsistent_dispersal
from repro.adversary.filters import compose_filters, drop_messages_between, drop_messages_from
from repro.adversary.registry import AdversarySpec, get_adversary, rebuild_node
from repro.common.errors import ConfigurationError
from repro.common.ids import VIDInstanceId
from repro.common.params import ProtocolParams
from repro.core.node import DispersedLedgerNode
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork
from repro.sim.messages import Message
from tests.conftest import build_cluster


class TestCrashedNode:
    def test_ignores_everything(self):
        node = CrashedNode(0)
        node.start()
        node.on_message(1, Message())
        assert node.messages_ignored == 1


class TestCrashAfterNode:
    def test_forwards_before_crash_and_drops_after(self, params4):
        network, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=1)
        inner = nodes[0]
        wrapper = CrashAfterNode(inner, network, crash_time=5.0)
        assert not wrapper.crashed
        wrapper.on_message(1, Message())
        assert wrapper.messages_ignored == 0
        # Advance the router's clock past the crash time via a timer.
        network.schedule(10.0, lambda: None)
        network.run()
        assert wrapper.crashed
        wrapper.on_message(1, Message())
        assert wrapper.messages_ignored == 1

    def test_rejects_negative_crash_time(self):
        import pytest

        with pytest.raises(ValueError):
            CrashAfterNode(CrashedNode(0), InstantNetwork(1), crash_time=-1.0)


class TestFilters:
    def test_drop_messages_from(self):
        predicate = drop_messages_from({2, 3})
        assert predicate(0, 1, Message())
        assert not predicate(2, 1, Message())

    def test_drop_messages_between(self):
        predicate = drop_messages_between({0, 1}, {2, 3})
        assert not predicate(0, 2, Message())
        assert not predicate(3, 1, Message())
        assert predicate(0, 1, Message())
        assert predicate(2, 3, Message())

    def test_compose_filters(self):
        predicate = compose_filters(drop_messages_from({0}), drop_messages_from({1}))
        assert not predicate(0, 2, Message())
        assert not predicate(1, 2, Message())
        assert predicate(2, 3, Message())


class TestEquivocator:
    def test_inconsistent_dispersal_commits_to_one_root(self):
        params = ProtocolParams.for_n(4)
        network = InstantNetwork(4)
        received_roots = []

        class RootRecorder:
            def start(self):
                return

            def on_message(self, src, msg):
                received_roots.append(msg.root)

        for i in range(4):
            network.attach(i, RootRecorder())
        ctx = NodeContext(0, network, network)
        root = send_inconsistent_dispersal(
            params, ctx, VIDInstanceId(epoch=1, proposer=0), b"x" * 64, b"y" * 64
        )
        network.run()
        assert len(received_roots) == 4
        assert set(received_roots) == {root}

    def test_requires_equal_shard_sizes(self):
        params = ProtocolParams.for_n(4)
        network = InstantNetwork(4)
        ctx = NodeContext(0, network, network)
        with pytest.raises(ValueError):
            send_inconsistent_dispersal(
                params, ctx, VIDInstanceId(epoch=1, proposer=0), b"short", b"much longer payload" * 10
            )


class TestNodeClassFactories:
    """The registry factories that rebuild honest nodes as Byzantine classes."""

    def test_rebuild_node_preserves_identity_and_wiring(self, params4):
        _, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        honest = nodes[1]
        rebuilt = rebuild_node(CensoringNode, honest, victim=0)
        assert isinstance(rebuilt, CensoringNode)
        assert rebuilt.node_id == honest.node_id
        assert rebuilt.params is honest.params
        assert rebuilt.ctx is honest.ctx
        assert rebuilt.config is honest.config
        assert rebuilt.coin is honest.coin
        assert rebuilt.max_epochs == honest.max_epochs
        assert rebuilt.victim == 0

    def test_censor_factory_builds_censoring_node(self, params4):
        _, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        spec = AdversarySpec(kind="censor", count=1, victim=1)
        replacement = get_adversary("censor")(nodes[3], None, spec)
        assert isinstance(replacement, CensoringNode)
        assert replacement.victim == 1

    def test_censor_factory_rejects_bad_victims(self, params4):
        _, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        factory = get_adversary("censor")
        with pytest.raises(ConfigurationError):
            factory(nodes[3], None, AdversarySpec(kind="censor", count=1, victim=9))
        # the victim may not be one of the adversarial nodes themselves
        with pytest.raises(ConfigurationError):
            factory(nodes[3], None, AdversarySpec(kind="censor", count=1, victim=3))

    def test_equivocate_factory_builds_equivocator(self, params4):
        _, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        spec = AdversarySpec(kind="equivocate", count=1, split=2)
        replacement = get_adversary("equivocate")(nodes[3], None, spec)
        assert isinstance(replacement, EquivocatingDisperserNode)
        assert replacement.split == 2

    def test_equivocate_factory_rejects_out_of_range_split(self, params4):
        _, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        factory = get_adversary("equivocate")
        with pytest.raises(ConfigurationError):
            factory(nodes[3], None, AdversarySpec(kind="equivocate", count=1, split=4))

    def test_censoring_node_rejects_out_of_range_victim(self, params4):
        _, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        with pytest.raises(ConfigurationError):
            rebuild_node(CensoringNode, nodes[1], victim=7)

    def test_all_four_kinds_registered(self):
        for kind in ("crash", "crash-after", "censor", "equivocate"):
            assert callable(get_adversary(kind))
        with pytest.raises(ConfigurationError):
            get_adversary("gremlin")
