"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ba.coin import CommonCoin
from repro.common.params import ProtocolParams
from repro.core.config import NodeConfig
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/*.json snapshots from the current code "
        "instead of asserting against them",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should regenerate golden snapshots."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def params4() -> ProtocolParams:
    """The smallest Byzantine-tolerant cluster: N = 4, f = 1."""
    return ProtocolParams.for_n(4)


@pytest.fixture
def params7() -> ProtocolParams:
    """A cluster with f = 2 (N = 7)."""
    return ProtocolParams.for_n(7)


def build_cluster(
    node_class,
    params: ProtocolParams,
    seed: int | None = None,
    config: NodeConfig | None = None,
    max_epochs: int | None = 3,
    node_classes: dict[int, type] | None = None,
    **node_kwargs,
):
    """Build an instant-router cluster of ``node_class`` nodes.

    ``node_classes`` overrides the class of specific node ids (used to insert
    Byzantine nodes).  Returns ``(network, nodes)``.
    """
    network = InstantNetwork(params.n, seed=seed)
    coin = CommonCoin()
    config = config or NodeConfig(data_plane="real")
    nodes = []
    for node_id in range(params.n):
        cls = (node_classes or {}).get(node_id, node_class)
        ctx = NodeContext(node_id, network, network)
        node = cls(
            node_id,
            params,
            ctx,
            config=config,
            coin=coin,
            max_epochs=max_epochs,
            **node_kwargs,
        )
        network.attach(node_id, node)
        nodes.append(node)
    return network, nodes


def submit_texts(node, texts):
    """Submit a list of string payloads as transactions to ``node``."""
    return [node.submit_payload(text.encode()) for text in texts]
