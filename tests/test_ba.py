"""Tests for the signature-free asynchronous binary agreement protocol."""

import pytest

from repro.adversary.filters import drop_messages_from
from repro.ba.coin import CommonCoin
from repro.ba.mmr import BinaryAgreement
from repro.common.ids import BAInstanceId
from repro.common.params import ProtocolParams
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork


class BaHarness:
    """N nodes each running one BA instance for the same instance id."""

    def __init__(self, n: int, seed: int | None = None):
        self.params = ProtocolParams.for_n(n)
        self.network = InstantNetwork(n, seed=seed)
        self.instance_id = BAInstanceId(epoch=1, slot=0)
        coin = CommonCoin()
        self.outputs: dict[int, int] = {}
        self.instances: list[BinaryAgreement] = []
        for node_id in range(n):
            ctx = NodeContext(node_id, self.network, self.network)
            ba = BinaryAgreement(
                params=self.params,
                instance=self.instance_id,
                ctx=ctx,
                coin=coin,
                on_output=lambda _id, value, node_id=node_id: self.outputs.__setitem__(
                    node_id, value
                ),
            )
            self.network.attach(node_id, _Adapter(ba))
            self.instances.append(ba)

    def input_values(self, values: dict[int, int]):
        for node_id, value in values.items():
            self.instances[node_id].input(value)

    def run(self):
        self.network.run()


class _Adapter:
    def __init__(self, ba):
        self.ba = ba

    def start(self):
        return

    def on_message(self, src, msg):
        self.ba.handle(src, msg)


class TestUnanimousInputs:
    @pytest.mark.parametrize("value", [0, 1])
    @pytest.mark.parametrize("n", [4, 7])
    def test_unanimous_input_decides_that_value(self, n, value):
        harness = BaHarness(n)
        harness.input_values({i: value for i in range(n)})
        harness.run()
        assert harness.outputs == {i: value for i in range(n)}

    def test_unanimous_one_decides_in_first_round(self):
        harness = BaHarness(4)
        harness.input_values({i: 1 for i in range(4)})
        harness.run()
        assert all(ba.rounds_taken <= 1 for ba in harness.instances)

    def test_all_instances_halt(self):
        harness = BaHarness(4)
        harness.input_values({i: 1 for i in range(4)})
        harness.run()
        assert all(ba.halted for ba in harness.instances)


class TestMixedInputs:
    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_under_random_schedules(self, seed):
        harness = BaHarness(7, seed=seed)
        harness.input_values({i: i % 2 for i in range(7)})
        harness.run()
        assert len(harness.outputs) == 7
        assert len(set(harness.outputs.values())) == 1

    @pytest.mark.parametrize("num_ones", [1, 3, 6])
    def test_validity_output_was_somebodys_input(self, num_ones):
        harness = BaHarness(7)
        values = {i: 1 if i < num_ones else 0 for i in range(7)}
        harness.input_values(values)
        harness.run()
        decided = set(harness.outputs.values())
        assert len(decided) == 1
        assert decided.pop() in set(values.values())

    def test_agreement_with_f_silent_nodes(self):
        harness = BaHarness(7)
        harness.network.delivery_filter = drop_messages_from({5, 6})
        harness.input_values({i: 1 for i in range(5)})
        harness.run()
        correct_outputs = {i: v for i, v in harness.outputs.items() if i < 5}
        assert len(correct_outputs) == 5
        assert set(correct_outputs.values()) == {1}


class TestInterface:
    def test_rejects_non_binary_input(self):
        harness = BaHarness(4)
        with pytest.raises(ValueError):
            harness.instances[0].input(2)

    def test_input_is_idempotent(self):
        harness = BaHarness(4)
        harness.instances[0].input(1)
        harness.instances[0].input(0)  # ignored: input already provided
        for i in range(1, 4):
            harness.instances[i].input(1)
        harness.run()
        assert set(harness.outputs.values()) == {1}

    def test_has_input_flag(self):
        harness = BaHarness(4)
        assert not harness.instances[0].has_input
        harness.instances[0].input(0)
        assert harness.instances[0].has_input

    def test_messages_before_input_are_buffered(self):
        # A node that receives votes before providing its own input must not
        # lose them: once it inputs, it catches up and decides with the rest.
        harness = BaHarness(4)
        for i in range(1, 4):
            harness.instances[i].input(1)
        harness.run()
        assert 0 not in harness.outputs or harness.outputs[0] == 1
        harness.instances[0].input(1)
        harness.run()
        assert harness.outputs[0] == 1

    def test_output_callback_fires_exactly_once(self):
        calls = []
        harness = BaHarness(4)
        harness.instances[0].on_output = lambda _id, value: calls.append(value)
        harness.input_values({i: 1 for i in range(4)})
        harness.run()
        assert len(calls) == 1


class TestCoin:
    def test_biased_first_rounds(self):
        coin = CommonCoin()
        instance = BAInstanceId(epoch=9, slot=3)
        assert coin.flip(instance, 0) == 1
        assert coin.flip(instance, 1) == 0

    def test_later_rounds_deterministic_and_shared(self):
        a = CommonCoin(seed=b"s")
        b = CommonCoin(seed=b"s")
        instance = BAInstanceId(epoch=2, slot=5)
        assert [a.flip(instance, r) for r in range(2, 12)] == [
            b.flip(instance, r) for r in range(2, 12)
        ]

    def test_different_instances_differ_somewhere(self):
        coin = CommonCoin()
        flips_a = [coin.flip(BAInstanceId(epoch=1, slot=0), r) for r in range(2, 34)]
        flips_b = [coin.flip(BAInstanceId(epoch=1, slot=1), r) for r in range(2, 34)]
        assert flips_a != flips_b

    def test_values_are_binary(self):
        coin = CommonCoin()
        for r in range(2, 50):
            assert coin.flip(BAInstanceId(epoch=1, slot=0), r) in (0, 1)
