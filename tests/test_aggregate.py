"""The benchmark trajectory aggregator: normalisation, flattening, table."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_aggregate",
    Path(__file__).parent.parent / "benchmarks" / "aggregate.py",
)
aggregate_mod = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(aggregate_mod)


@pytest.fixture
def bench_dir(tmp_path):
    """A miniature benchmarks directory covering both on-disk shapes."""
    (tmp_path / "BENCH_alpha.json").write_text(
        json.dumps(
            [
                {"scenario": "a", "events_per_second": 1000.0, "seconds": 2.0},
                {"scenario": "a", "events_per_second": 1250.0, "seconds": 1.6},
            ]
        )
    )
    (tmp_path / "BENCH_beta.json").write_text(
        json.dumps(
            {
                "workload": {"n": 16},
                "operations": {"encode": {"speedup": 6.3, "ok": True}},
            }
        )
    )
    (tmp_path / "not_a_bench.json").write_text("[]")
    return tmp_path


class TestAggregate:
    def test_merges_lists_and_single_dicts_into_rows(self, bench_dir):
        rows = aggregate_mod.aggregate(bench_dir)
        assert [(r["report"], r["entry"]) for r in rows] == [
            ("alpha", 0),
            ("alpha", 1),
            ("beta", 0),
        ]

    def test_metrics_are_flattened_with_dotted_paths(self, bench_dir):
        rows = aggregate_mod.aggregate(bench_dir)
        beta = rows[-1]["metrics"]
        assert beta == {"workload.n": 16.0, "operations.encode.speedup": 6.3}

    def test_headline_prefers_speedup_over_raw_seconds(self):
        key, value = aggregate_mod.headline_metric(
            {"seconds": 9.0, "run.speedup": 1.8, "events_per_second": 100.0}
        )
        assert key == "run.speedup"
        assert value == 1.8

    def test_rejects_scalar_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("42")
        with pytest.raises(ValueError, match="neither"):
            aggregate_mod.load_entries(path)

    def test_main_renders_table_and_writes_json(self, bench_dir, capsys):
        out = bench_dir / "merged.json"
        code = aggregate_mod.main(["--dir", str(bench_dir), "--json", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "alpha" in captured and "beta" in captured
        assert json.loads(out.read_text()) == aggregate_mod.aggregate(bench_dir)

    def test_main_on_empty_directory_fails_cleanly(self, tmp_path, capsys):
        assert aggregate_mod.main(["--dir", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().out

    def test_main_on_absent_directory_fails_cleanly(self, tmp_path, capsys):
        """A directory that doesn't exist is the same user error as an empty
        one (nothing matched the BENCH_*.json glob), not a traceback."""
        assert aggregate_mod.main(["--dir", str(tmp_path / "never-written")]) == 1
        assert "no BENCH_" in capsys.readouterr().out

    def test_real_bench_files_all_aggregate(self):
        rows = aggregate_mod.aggregate(aggregate_mod.BENCH_DIR)
        reports = {row["report"] for row in rows}
        assert "windowed" in reports
        assert len(reports) >= 7
        assert all(row["metrics"] for row in rows)
