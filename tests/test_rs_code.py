"""Tests for the systematic Reed-Solomon erasure code."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure.rs_code import ReedSolomonCode


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(0, 4)
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(5, 4)
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(10, 256)

    def test_systematic_prefix(self):
        code = ReedSolomonCode(3, 6)
        block = bytes(range(60))
        shards = code.encode(block)
        # The first k shards concatenated are the length header + payload.
        prefix = b"".join(shards[:3])
        assert prefix[4 : 4 + len(block)] == block


class TestRoundtrip:
    @pytest.mark.parametrize("k,n", [(1, 4), (2, 4), (6, 16), (2, 7), (3, 10)])
    def test_decode_from_first_k(self, k, n):
        code = ReedSolomonCode(k, n)
        block = b"dispersed ledger" * 10
        shards = code.encode(block)
        assert len(shards) == n
        assert code.decode({i: shards[i] for i in range(k)}) == block

    def test_decode_from_parity_only(self):
        code = ReedSolomonCode(2, 6)
        block = b"parity path"
        shards = code.encode(block)
        assert code.decode({4: shards[4], 5: shards[5]}) == block

    def test_every_k_subset_decodes_identically(self):
        code = ReedSolomonCode(2, 5)
        block = b"any subset works"
        shards = code.encode(block)
        for subset in itertools.combinations(range(5), 2):
            assert code.decode({i: shards[i] for i in subset}) == block

    def test_empty_block(self):
        code = ReedSolomonCode(3, 7)
        shards = code.encode(b"")
        assert code.decode({i: shards[i] for i in (1, 4, 6)}) == b""

    def test_extra_shards_ignored(self):
        code = ReedSolomonCode(2, 4)
        block = b"extra"
        shards = code.encode(block)
        assert code.decode(dict(enumerate(shards))) == block

    def test_shard_sizes_equal(self):
        code = ReedSolomonCode(3, 9)
        shards = code.encode(b"x" * 100)
        assert len({len(s) for s in shards}) == 1
        assert len(shards[0]) == code.shard_size(100)


class TestDecodeErrors:
    def test_too_few_shards(self):
        code = ReedSolomonCode(3, 6)
        shards = code.encode(b"hello world")
        with pytest.raises(DecodingError):
            code.decode({0: shards[0], 1: shards[1]})

    def test_mismatched_lengths(self):
        code = ReedSolomonCode(2, 4)
        shards = code.encode(b"hello world")
        with pytest.raises(DecodingError):
            code.decode({0: shards[0], 1: shards[1] + b"\x00"})

    def test_out_of_range_index(self):
        code = ReedSolomonCode(2, 4)
        shards = code.encode(b"hello world")
        with pytest.raises(DecodingError):
            code.decode({0: shards[0], 9: shards[1]})

    def test_empty_shards(self):
        code = ReedSolomonCode(2, 4)
        with pytest.raises(DecodingError):
            code.decode({0: b"", 1: b""})

    def test_corrupted_length_header(self):
        code = ReedSolomonCode(2, 4)
        shards = code.encode(b"ab")
        bogus = b"\xff" * len(shards[0])
        with pytest.raises(DecodingError):
            code.decode({0: bogus, 1: shards[1]})


def _clear_decode_cache():
    from repro.erasure.rs_code import _decode_inverse

    _decode_inverse.cache_clear()


class TestSystematicSelection:
    """Decoding prefers the systematic shards so inversion can be skipped."""

    def test_all_systematic_hits_fast_path(self):
        _clear_decode_cache()
        code = ReedSolomonCode(3, 7)
        block = b"fast path please" * 3
        shards = code.encode(block)
        assert code.decode({i: shards[i] for i in range(3)}) == block
        # The fast path never touches the decode-matrix cache.
        assert code.decode_cache_info() == {"hits": 0, "misses": 0, "size": 0}

    def test_extra_parity_shards_still_hit_fast_path(self):
        code = ReedSolomonCode(3, 7)
        block = b"prefer systematic"
        shards = code.encode(block)
        supplied = {0: shards[0], 1: shards[1], 2: shards[2], 5: shards[5], 6: shards[6]}
        assert code.decode(supplied) == block
        assert code.decode_cache_info()["misses"] == 0

    def test_parity_selection_uses_inversion_branch(self):
        _clear_decode_cache()
        code = ReedSolomonCode(3, 7)
        block = b"inversion branch"
        shards = code.encode(block)
        supplied = {1: shards[1], 2: shards[2], 4: shards[4]}
        assert code.decode(supplied) == block
        assert code.decode_cache_info()["misses"] == 1

    def test_both_branches_agree(self):
        code = ReedSolomonCode(4, 10)
        block = bytes(range(256)) * 3
        shards = code.encode(block)
        fast = code.decode({i: shards[i] for i in range(4)})
        slow = code.decode({i: shards[i] for i in (1, 5, 7, 9)})
        assert fast == slow == block


class TestDecodeMatrixCache:
    def test_cache_hit_results_identical_to_miss(self):
        _clear_decode_cache()
        code = ReedSolomonCode(4, 10)
        block = b"cache me if you can" * 11
        shards = code.encode(block)
        subset = {i: shards[i] for i in (2, 5, 6, 9)}
        first = code.decode(subset)
        info_after_miss = code.decode_cache_info()
        second = code.decode(subset)
        info_after_hit = code.decode_cache_info()
        assert first == second == block
        assert info_after_miss["misses"] == 1 and info_after_miss["hits"] == 0
        assert info_after_hit["misses"] == 1 and info_after_hit["hits"] == 1

    def test_cache_keyed_by_index_tuple(self):
        _clear_decode_cache()
        code = ReedSolomonCode(2, 6)
        block = b"different subsets, different matrices"
        shards = code.encode(block)
        assert code.decode({2: shards[2], 3: shards[3]}) == block
        assert code.decode({4: shards[4], 5: shards[5]}) == block
        assert code.decode({2: shards[2], 3: shards[3]}) == block
        info = code.decode_cache_info()
        assert info["misses"] == 2 and info["hits"] == 1 and info["size"] == 2

    def test_shared_cache_is_bounded(self):
        from repro.erasure.rs_code import DECODE_CACHE_SIZE, _decode_inverse

        code = ReedSolomonCode(1, 200)
        shards = code.encode(b"tiny")
        for i in range(1, DECODE_CACHE_SIZE + 50):
            assert code.decode({i: shards[i]}) == b"tiny"
        info = _decode_inverse.cache_info()
        assert info.maxsize == DECODE_CACHE_SIZE
        assert info.currsize <= DECODE_CACHE_SIZE

    def test_sibling_instances_share_inversions(self):
        from repro.erasure.rs_code import _decode_inverse

        _clear_decode_cache()
        first = ReedSolomonCode(2, 6)
        second = ReedSolomonCode(2, 6)
        shards = first.encode(b"shared work")
        subset = {3: shards[3], 5: shards[5]}
        assert first.decode(subset) == b"shared work"
        assert second.decode(subset) == b"shared work"
        # One Gauss-Jordan serves both instances: the first triggers it, the
        # second's counters record a hit against the shared store.
        assert _decode_inverse.cache_info().misses == 1
        assert first.decode_cache_info()["misses"] == 1
        assert second.decode_cache_info() == {"hits": 1, "misses": 0, "size": 1}


class TestEncodeMany:
    def test_matches_individual_encodes(self):
        code = ReedSolomonCode(3, 8)
        blocks = [b"", b"a", b"hello world", bytes(range(256)) * 2, b"x" * 37]
        batched = code.encode_many(blocks)
        assert batched == [code.encode(block) for block in blocks]

    def test_empty_batch(self):
        assert ReedSolomonCode(2, 4).encode_many([]) == []

    def test_no_parity_code(self):
        code = ReedSolomonCode(3, 3)
        blocks = [b"abcdef", b"ghi"]
        assert code.encode_many(blocks) == [code.encode(block) for block in blocks]

    @given(blocks=st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_batched_shards_roundtrip(self, blocks):
        code = ReedSolomonCode(3, 9)
        for block, shards in zip(blocks, code.encode_many(blocks)):
            assert code.decode({i: shards[i] for i in (0, 4, 8)}) == block


class TestProperties:
    @given(
        block=st.binary(min_size=0, max_size=512),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_subset_roundtrip(self, block, data):
        code = ReedSolomonCode(4, 10)
        shards = code.encode(block)
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=9), min_size=4, max_size=10, unique=True)
        )
        assert code.decode({i: shards[i] for i in indices}) == block

    @given(block=st.binary(min_size=1, max_size=256))
    @settings(max_examples=40, deadline=None)
    def test_reencode_is_deterministic(self, block):
        code = ReedSolomonCode(3, 7)
        assert code.encode(block) == code.reencode(block)
