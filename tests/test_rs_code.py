"""Tests for the systematic Reed-Solomon erasure code."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure.rs_code import ReedSolomonCode


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(0, 4)
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(5, 4)
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(10, 256)

    def test_systematic_prefix(self):
        code = ReedSolomonCode(3, 6)
        block = bytes(range(60))
        shards = code.encode(block)
        # The first k shards concatenated are the length header + payload.
        prefix = b"".join(shards[:3])
        assert prefix[4 : 4 + len(block)] == block


class TestRoundtrip:
    @pytest.mark.parametrize("k,n", [(1, 4), (2, 4), (6, 16), (2, 7), (3, 10)])
    def test_decode_from_first_k(self, k, n):
        code = ReedSolomonCode(k, n)
        block = b"dispersed ledger" * 10
        shards = code.encode(block)
        assert len(shards) == n
        assert code.decode({i: shards[i] for i in range(k)}) == block

    def test_decode_from_parity_only(self):
        code = ReedSolomonCode(2, 6)
        block = b"parity path"
        shards = code.encode(block)
        assert code.decode({4: shards[4], 5: shards[5]}) == block

    def test_every_k_subset_decodes_identically(self):
        code = ReedSolomonCode(2, 5)
        block = b"any subset works"
        shards = code.encode(block)
        for subset in itertools.combinations(range(5), 2):
            assert code.decode({i: shards[i] for i in subset}) == block

    def test_empty_block(self):
        code = ReedSolomonCode(3, 7)
        shards = code.encode(b"")
        assert code.decode({i: shards[i] for i in (1, 4, 6)}) == b""

    def test_extra_shards_ignored(self):
        code = ReedSolomonCode(2, 4)
        block = b"extra"
        shards = code.encode(block)
        assert code.decode(dict(enumerate(shards))) == block

    def test_shard_sizes_equal(self):
        code = ReedSolomonCode(3, 9)
        shards = code.encode(b"x" * 100)
        assert len({len(s) for s in shards}) == 1
        assert len(shards[0]) == code.shard_size(100)


class TestDecodeErrors:
    def test_too_few_shards(self):
        code = ReedSolomonCode(3, 6)
        shards = code.encode(b"hello world")
        with pytest.raises(DecodingError):
            code.decode({0: shards[0], 1: shards[1]})

    def test_mismatched_lengths(self):
        code = ReedSolomonCode(2, 4)
        shards = code.encode(b"hello world")
        with pytest.raises(DecodingError):
            code.decode({0: shards[0], 1: shards[1] + b"\x00"})

    def test_out_of_range_index(self):
        code = ReedSolomonCode(2, 4)
        shards = code.encode(b"hello world")
        with pytest.raises(DecodingError):
            code.decode({0: shards[0], 9: shards[1]})

    def test_empty_shards(self):
        code = ReedSolomonCode(2, 4)
        with pytest.raises(DecodingError):
            code.decode({0: b"", 1: b""})

    def test_corrupted_length_header(self):
        code = ReedSolomonCode(2, 4)
        shards = code.encode(b"ab")
        bogus = b"\xff" * len(shards[0])
        with pytest.raises(DecodingError):
            code.decode({0: bogus, 1: shards[1]})


class TestProperties:
    @given(
        block=st.binary(min_size=0, max_size=512),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_subset_roundtrip(self, block, data):
        code = ReedSolomonCode(4, 10)
        shards = code.encode(block)
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=9), min_size=4, max_size=10, unique=True)
        )
        assert code.decode({i: shards[i] for i in indices}) == block

    @given(block=st.binary(min_size=1, max_size=256))
    @settings(max_examples=40, deadline=None)
    def test_reencode_is_deterministic(self, block):
        code = ReedSolomonCode(3, 7)
        assert code.encode(block) == code.reencode(block)
