"""The telemetry toolchain: ``trace plot``, ``trace diff``, ``trace import``.

Unit coverage for the three modules behind the new subcommands —
:mod:`repro.trace.plot` (frame building and the dependency-free PNG/SVG
renderers), :mod:`repro.trace.diff` (structured deltas, tolerances and
``repro-envelope-v1`` envelopes), :mod:`repro.trace.importers` (the
Mahimahi packet-delivery and cloud-probe importers) — plus the CLI
exit-status contracts: 0 ok, 1 out-of-tolerance (``diff`` only), 2 usage
error.
"""

from __future__ import annotations

import argparse
import json
import struct
import xml.etree.ElementTree as ET
import zlib

import pytest

from repro.common.errors import TraceError
from repro.trace.analysis import summarise_telemetry
from repro.trace.cli import add_trace_parser, run_trace_command
from repro.trace.diff import (
    DEFAULT_ABS_TOL,
    SeriesDelta,
    breaches,
    check_envelope,
    diff_telemetry,
    envelope_from_summary,
    is_envelope,
)
from repro.trace.importers import (
    import_cloudprobe,
    import_mahimahi,
    opportunities_to_rates,
    parse_cloudprobe,
    parse_mahimahi,
    samples_to_rates,
)
from repro.trace.io import load_trace
from repro.trace.plot import (
    build_frame,
    plot_telemetry,
    render_commit_overlay,
    write_png,
)


def sample(t, node=0, **overrides):
    row = {
        "kind": "sample",
        "t": t,
        "node": node,
        "egress_queue": 0,
        "ingress_queue": 0,
        "egress_util": 0.0,
        "ingress_util": 0.0,
    }
    row.update(overrides)
    return row


def recording(scale=1.0, nodes=(0, 1), ticks=(0.0, 1.0, 2.0, 3.0)):
    """A small two-node telemetry stream with per-node structure."""
    rows = [{"kind": "meta", "t": 0.0, "num_nodes": len(nodes), "interval": 1.0}]
    for node in nodes:
        for i, t in enumerate(ticks):
            rows.append(
                sample(
                    t,
                    node=node,
                    egress_queue=scale * (10_000 * (i + 1) + 5_000 * node),
                    ingress_queue=scale * 4_000 * i,
                    egress_util=min(1.0, 0.25 * scale * (i + 1)),
                    ingress_util=0.5,
                    delivered_epoch=i,
                    current_epoch=i + 1,
                )
            )
    rows.append({"kind": "commit", "t": 1.5, "node": nodes[0], "epoch": 1})
    return rows


def write_jsonl(path, rows):
    path.write_text("".join(json.dumps(row) + "\n" for row in rows), encoding="utf-8")


def run_cli(*argv):
    parser = argparse.ArgumentParser()
    add_trace_parser(parser.add_subparsers(dest="command", required=True))
    return run_trace_command(parser.parse_args(["trace", *argv]))


class TestPlotFrame:
    def test_frame_shape_and_forward_fill(self):
        frame = build_frame(recording())
        assert frame.nodes == (0, 1)
        assert len(frame.times) == 4
        assert frame.series["egress_queue"][1][0] == 15_000
        assert len(frame.commits) == 1

    def test_no_samples_rejected(self):
        with pytest.raises(TraceError, match="no sample rows"):
            build_frame([{"kind": "meta", "t": 0.0}])

    def test_png_is_well_formed(self, tmp_path):
        target = tmp_path / "tiny.png"
        write_png(target, [[(255, 0, 0), (0, 0, 255)], [(0, 255, 0), (0, 0, 0)]])
        data = target.read_bytes()
        assert data[:8] == b"\x89PNG\r\n\x1a\n"
        pos, kinds = 8, []
        while pos < len(data):
            length, kind = struct.unpack(">I4s", data[pos : pos + 8])
            body = data[pos + 8 : pos + 8 + length]
            (crc,) = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])
            assert crc == zlib.crc32(kind + body) & 0xFFFFFFFF
            kinds.append(kind)
            pos += 12 + length
        assert kinds == [b"IHDR", b"IDAT", b"IEND"]
        assert struct.unpack(">II", data[16:24]) == (2, 2)

    def test_plot_telemetry_writes_the_full_set(self, tmp_path):
        written = plot_telemetry(recording(), tmp_path, "demo")
        names = {path.name for path in written}
        assert names == {
            "demo-egress_queue-heatmap.png",
            "demo-ingress_queue-heatmap.png",
            "demo-utilisation.svg",
            "demo-queue.svg",
            "demo-progress.svg",
        }
        for path in written:
            if path.suffix == ".svg":
                ET.parse(path)  # well-formed XML
            else:
                assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"

    def test_progress_curve_skipped_without_epoch_frontier(self, tmp_path):
        rows = [sample(0.0), sample(1.0)]
        written = plot_telemetry(rows, tmp_path, "bare")
        assert not [path for path in written if "progress" in path.name]


def latency_recording(**kwargs):
    """A recording whose commit rows carry per-epoch latencies, as the
    recorder writes them (the bare ``recording()`` fixture omits them)."""
    rows = recording(**kwargs)
    rows[-1]["latency"] = 0.8
    rows.append(
        {"kind": "commit", "t": 2.7, "node": 1, "epoch": 2, "latency": 1.3}
    )
    return rows


class TestCommitOverlay:
    def test_build_frame_collects_commit_latencies(self):
        frame = build_frame(latency_recording())
        assert frame.commit_latencies == ((1.5, 0.8), (2.7, 1.3))
        # Latency-free commit rows still land in commits, just not here.
        assert len(build_frame(recording()).commit_latencies) == 0
        assert len(build_frame(recording()).commits) == 1

    def test_plot_telemetry_adds_the_overlay_when_latencies_present(self, tmp_path):
        written = plot_telemetry(latency_recording(), tmp_path, "lat")
        names = {path.name for path in written}
        assert "lat-commit-overlay.svg" in names
        overlay = tmp_path / "lat-commit-overlay.svg"
        root = ET.parse(overlay).getroot()
        dots = [el for el in root.iter() if el.tag.endswith("circle")]
        assert len(dots) == 2  # one per latency-bearing commit

    def test_overlay_skipped_without_latencies(self, tmp_path):
        written = plot_telemetry(recording(), tmp_path, "bare")
        assert not [path for path in written if "commit-overlay" in path.name]

    def test_latency_free_stream_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="no commit row carries a latency"):
            render_commit_overlay(build_frame(recording()), tmp_path / "x.svg")

    def test_missing_util_series_rejected(self, tmp_path):
        rows = [row for row in latency_recording() if row["kind"] != "sample"]
        rows.insert(1, {"kind": "sample", "t": 0.0, "node": 0, "egress_queue": 1})
        with pytest.raises(TraceError, match="no 'egress_util' series"):
            render_commit_overlay(build_frame(rows), tmp_path / "x.svg")


class TestPlotCli:
    def test_renders_and_reports_paths(self, tmp_path, capsys):
        source = tmp_path / "t.jsonl"
        write_jsonl(source, recording())
        assert run_cli("plot", str(source), "--out-dir", str(tmp_path / "plots")) == 0
        out = capsys.readouterr().out
        assert out.count("wrote ") == 5
        assert (tmp_path / "plots" / "t-egress_queue-heatmap.png").exists()

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert run_cli("plot", str(tmp_path / "nope.jsonl")) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_malformed_jsonl_is_exit_2(self, tmp_path, capsys):
        source = tmp_path / "bad.jsonl"
        source.write_text('{"kind": "sample", \n', encoding="utf-8")
        assert run_cli("plot", str(source)) == 2
        assert "malformed" in capsys.readouterr().err

    def test_unknown_series_is_exit_2(self, tmp_path, capsys):
        source = tmp_path / "t.jsonl"
        write_jsonl(source, recording())
        assert run_cli("plot", str(source), "--series", "latency") == 2
        assert "unknown heatmap series" in capsys.readouterr().err


class TestDiff:
    def test_identical_recordings_have_no_breaches(self):
        deltas = diff_telemetry(recording(), recording())
        assert deltas and not breaches(deltas)

    def test_perturbed_series_breaches(self):
        failed = breaches(diff_telemetry(recording(), recording(scale=1.5)))
        assert failed
        assert {delta.series for delta in failed} >= {"egress_queue"}

    def test_relative_tolerance_widens_the_band(self):
        assert not breaches(diff_telemetry(recording(), recording(scale=1.04)))
        assert breaches(diff_telemetry(recording(), recording(scale=1.2)))
        assert not breaches(
            diff_telemetry(recording(), recording(scale=1.2), rel_tol=0.5)
        )

    def test_absolute_floor_covers_near_zero_series(self):
        # ingress_queue maxes at 12 000 bytes; a +1 KB wiggle sits inside the
        # 2 KB floor even though it is far beyond 5% relative.
        base, nudged = recording(), recording()
        for row in nudged:
            if row["kind"] == "sample":
                row["ingress_queue"] += 1_000
        deltas = [d for d in diff_telemetry(base, nudged) if d.series == "ingress_queue"]
        assert deltas and not breaches(deltas)

    def test_mismatched_node_sets_rejected(self):
        with pytest.raises(TraceError, match="node sets differ"):
            diff_telemetry(recording(nodes=(0, 1)), recording(nodes=(0, 1, 2)))

    def test_negative_rel_tol_rejected(self):
        with pytest.raises(TraceError, match="non-negative"):
            diff_telemetry(recording(), recording(), rel_tol=-0.1)

    def test_delta_dict_shape(self):
        delta = SeriesDelta("cluster", "egress_queue", "mean", 100.0, 90.0, 5.0)
        payload = delta.as_dict()
        assert payload["delta"] == -10.0
        assert payload["breach"] is True


class TestEnvelope:
    def envelope(self, **kwargs):
        return envelope_from_summary(
            summarise_telemetry(recording()), scenario="demo", **kwargs
        )

    def test_round_trip_within_tolerance(self):
        assert not breaches(check_envelope(recording(), self.envelope()))

    def test_envelope_fields(self):
        envelope = self.envelope(run={"seed": 0})
        assert is_envelope(envelope)
        assert envelope["num_nodes"] == 2
        assert envelope["run"] == {"seed": 0}
        assert envelope["tolerances"]["abs"] == dict(DEFAULT_ABS_TOL)
        assert set(envelope["nodes"]) == {"0", "1"}

    def test_perturbed_recording_breaches(self):
        assert breaches(check_envelope(recording(scale=1.5), self.envelope()))

    def test_tightened_tolerance_turns_a_pass_into_a_breach(self):
        envelope = self.envelope()
        nudged = recording()
        for row in nudged:
            if row["kind"] == "sample":
                row["egress_queue"] = int(row["egress_queue"] * 1.03)
        assert not breaches(check_envelope(nudged, envelope))
        assert breaches(check_envelope(nudged, envelope, abs_tol=0.0, rel_tol=0.001))

    def test_envelope_declared_tolerances_are_used(self):
        wide = self.envelope(rel_tol=0.9)
        assert not breaches(check_envelope(recording(scale=1.5), wide))

    def test_non_envelope_payload_rejected(self):
        with pytest.raises(TraceError, match="repro-envelope-v1"):
            check_envelope(recording(), {"format": "something-else"})


class TestDiffCli:
    def test_two_recordings_within_tolerance_exit_0(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(a, recording())
        write_jsonl(b, recording())
        assert run_cli("diff", str(a), str(b)) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_breach_is_exit_1(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(a, recording())
        write_jsonl(b, recording(scale=2.0))
        assert run_cli("diff", str(a), str(b)) == 1
        captured = capsys.readouterr()
        assert "BREACH" in captured.out
        assert "out of tolerance" in captured.err

    def test_envelope_reference_and_json_output(self, tmp_path, capsys):
        envelope = tmp_path / "envelope.json"
        envelope.write_text(
            json.dumps(envelope_from_summary(summarise_telemetry(recording()))),
            encoding="utf-8",
        )
        observed = tmp_path / "o.jsonl"
        write_jsonl(observed, recording())
        assert run_cli("diff", str(envelope), str(observed), "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["breaches"] == 0
        assert all(not delta["breach"] for delta in payload["deltas"])

    def test_json_reference_that_is_not_an_envelope_is_exit_2(self, tmp_path, capsys):
        bogus = tmp_path / "ref.json"
        bogus.write_text('{"format": "repro-trace-v1"}', encoding="utf-8")
        observed = tmp_path / "o.jsonl"
        write_jsonl(observed, recording())
        assert run_cli("diff", str(bogus), str(observed)) == 2
        assert "not a repro-envelope-v1" in capsys.readouterr().err

    def test_mismatched_node_sets_are_exit_2(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(a, recording(nodes=(0,)))
        write_jsonl(b, recording(nodes=(0, 1)))
        assert run_cli("diff", str(a), str(b)) == 2
        assert "node sets differ" in capsys.readouterr().err

    def test_missing_reference_is_exit_2(self, tmp_path, capsys):
        observed = tmp_path / "o.jsonl"
        write_jsonl(observed, recording())
        assert run_cli("diff", str(tmp_path / "none.jsonl"), str(observed)) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_bad_abs_tol_argument_is_exit_2(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        write_jsonl(a, recording())
        assert run_cli("diff", str(a), str(a), "--abs-tol", "egress_queue=lots") == 2
        assert "not a number" in capsys.readouterr().err


class TestMahimahiImporter:
    def test_parse_skips_comments_and_validates(self):
        assert parse_mahimahi("# header\n0\n5\n5\n12\n") == (0, 5, 5, 12)
        with pytest.raises(TraceError, match="not an integer|expected an integer"):
            parse_mahimahi("0\nabc\n")
        with pytest.raises(TraceError, match="non-decreasing"):
            parse_mahimahi("10\n5\n")
        with pytest.raises(TraceError, match="negative"):
            parse_mahimahi("-3\n")
        with pytest.raises(TraceError, match="no delivery"):
            parse_mahimahi("# only a comment\n")

    def test_binning_counts_opportunities_per_window(self):
        # 2 opportunities in [0,1), none in [1,2), 1 in [2,3).
        points = opportunities_to_rates((100, 900, 2500), bin_seconds=1.0, mtu_bytes=1000)
        assert points == ((0.0, 2000.0), (1.0, 0.0), (2.0, 1000.0))

    def test_equal_rate_bins_coalesce(self):
        points = opportunities_to_rates((0, 1000, 2000), bin_seconds=1.0, mtu_bytes=1504)
        assert points == ((0.0, 1504.0),)

    def test_symmetric_import_mirrors_down_into_up(self, tmp_path):
        down = tmp_path / "link.down"
        down.write_text("0\n400\n1200\n")
        trace = import_mahimahi("sym", [down])
        assert trace.num_nodes == 1
        t, up, dn = trace.nodes[0].points[0]
        assert up == dn

    def test_uplink_files_give_asymmetric_links(self, tmp_path):
        down = tmp_path / "a.down"
        up = tmp_path / "a.up"
        down.write_text("0\n100\n200\n300\n")
        up.write_text("0\n")
        trace = import_mahimahi("asym", [down], up_files=[up])
        _, up_rate, down_rate = trace.nodes[0].points[0]
        assert down_rate == 4 * 1504
        assert up_rate == 1504

    def test_uplink_count_mismatch_rejected(self, tmp_path):
        down = tmp_path / "a.down"
        down.write_text("0\n")
        with pytest.raises(TraceError, match="must match"):
            import_mahimahi("bad", [down, down], up_files=[down])

    def test_bundled_recording_matches_committed_import(self):
        """The checked-in traces/cellular-lte.json is exactly what the
        bundled mahimahi recording imports to under default options."""
        imported = import_mahimahi("cellular-lte", ["traces/mahimahi-cellular.down"])
        assert imported == load_trace("traces/cellular-lte.json")


class TestCloudprobeImporter:
    def test_parse_skips_comments_and_validates(self):
        text = "# probe header\n0.0,1000\n1.5,2500\n\n3.0,0\n"
        assert parse_cloudprobe(text) == ((0.0, 1000.0), (1.5, 2500.0), (3.0, 0.0))
        with pytest.raises(TraceError, match="expected 'time,rate_bps'"):
            parse_cloudprobe("0.0,1000,extra\n")
        with pytest.raises(TraceError, match="expected two numbers"):
            parse_cloudprobe("0.0,fast\n")
        with pytest.raises(TraceError, match="strictly increasing"):
            parse_cloudprobe("1.0,100\n1.0,200\n")
        with pytest.raises(TraceError, match="bad rate"):
            parse_cloudprobe("0.0,-5\n")
        with pytest.raises(TraceError, match="bad sample time"):
            parse_cloudprobe("-1.0,100\n")
        with pytest.raises(TraceError, match="no samples"):
            parse_cloudprobe("# nothing but comments\n")

    def test_resample_is_time_weighted(self):
        # 1000 B/s holds over [0, 0.5), 3000 B/s from 0.5 on: the first bin
        # mixes them by overlap, the second sees only the later reading.
        points = samples_to_rates(((0.0, 1000.0), (0.5, 3000.0)), bin_seconds=1.0)
        assert points == ((0.0, 2000.0), (1.0, 3000.0))

    def test_first_sample_backfills_to_time_zero(self):
        # A probe whose first reading lands mid-bin still covers t = 0.
        points = samples_to_rates(((0.25, 2000.0),), bin_seconds=1.0)
        assert points == ((0.0, 2000.0),)

    def test_equal_rate_bins_coalesce(self):
        points = samples_to_rates(((0.0, 500.0), (2.5, 500.0)), bin_seconds=1.0)
        assert points == ((0.0, 500.0),)

    def test_mtu_is_ignored_for_probe_logs(self, tmp_path):
        probe = tmp_path / "a.probe"
        probe.write_text("0.0,8000\n2.0,4000\n")
        assert import_cloudprobe("p", [probe], mtu_bytes=1) == import_cloudprobe(
            "p", [probe], mtu_bytes=9000
        )

    def test_symmetric_import_mirrors_down_into_up(self, tmp_path):
        probe = tmp_path / "a.probe"
        probe.write_text("0.0,6000\n1.0,9000\n")
        trace = import_cloudprobe("sym", [probe])
        assert trace.num_nodes == 1
        for _, up, down in trace.nodes[0].points:
            assert up == down

    def test_bundled_recording_matches_committed_import(self):
        """The checked-in traces/cloudprobe-wan.json is exactly what the
        bundled probe log imports to under default options."""
        imported = import_cloudprobe("cloudprobe-wan", ["traces/cloudprobe-wan.probe"])
        assert imported == load_trace("traces/cloudprobe-wan.json")


class TestImportCli:
    def test_import_writes_a_loadable_trace(self, tmp_path, capsys):
        source = tmp_path / "node0.down"
        source.write_text("0\n250\n600\n1700\n")
        out = tmp_path / "imported.json"
        assert run_cli("import", str(source), "--out", str(out)) == 0
        assert "imported 1 mahimahi recording(s)" in capsys.readouterr().out
        trace = load_trace(out)
        assert trace.name == "imported"
        assert trace.num_nodes == 1

    def test_cloudprobe_format_selects_the_probe_importer(self, tmp_path, capsys):
        source = tmp_path / "probe.log"
        source.write_text("0.0,4000\n1.0,8000\n")
        out = tmp_path / "probe.json"
        code = run_cli(
            "import", str(source), "--format", "cloudprobe", "--out", str(out)
        )
        assert code == 0
        assert "imported 1 cloudprobe recording(s)" in capsys.readouterr().out
        trace = load_trace(out)
        assert trace.nodes[0].points[0] == (0.0, 4000.0, 4000.0)

    def test_missing_source_is_exit_2(self, tmp_path, capsys):
        out = tmp_path / "x.json"
        assert run_cli("import", str(tmp_path / "gone.down"), "--out", str(out)) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unknown_format_is_exit_2(self, tmp_path, capsys):
        source = tmp_path / "a.down"
        source.write_text("0\n")
        code = run_cli(
            "import", str(source), "--format", "pcap", "--out", str(tmp_path / "x.json")
        )
        assert code == 2
        assert "unknown import format" in capsys.readouterr().err

    def test_malformed_recording_is_exit_2(self, tmp_path, capsys):
        source = tmp_path / "a.down"
        source.write_text("0\nnot-a-number\n")
        assert run_cli("import", str(source), "--out", str(tmp_path / "x.json")) == 2
        assert "expected an integer" in capsys.readouterr().err
