"""Tests for the metrics collector and statistics helpers."""

import pytest

from repro.core.block import Block, Transaction
from repro.core.ledger import DeliveredBlock
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import percentile, summarise


def delivered(node_time, proposer=1, origins=(0, 1), created=0.0, epoch=1):
    txs = tuple(
        Transaction(tx_id=i, origin=origin, created_at=created, size=100)
        for i, origin in enumerate(origins)
    )
    block = Block(proposer=proposer, epoch=epoch, transactions=txs)
    return DeliveredBlock(
        epoch=epoch, proposer=proposer, block=block, delivered_at=node_time, delivered_in_epoch=epoch
    )


class TestStats:
    def test_percentile_interpolation(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 0) == 10
        assert percentile(values, 100) == 40
        assert percentile(values, 50) == pytest.approx(25.0)

    def test_percentile_single_value(self):
        assert percentile([7], 99) == 7

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_summarise(self):
        summary = summarise(list(range(1, 101)))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p99 > summary.p95 > summary.p50

    def test_summarise_empty(self):
        with pytest.raises(ValueError):
            summarise([])


class TestMetricsCollector:
    def test_delivery_accounting(self):
        collector = MetricsCollector(2)
        collector.record_delivery(0, delivered(node_time=2.0, origins=(0, 1, 1)))
        metrics = collector.per_node[0]
        assert metrics.blocks_delivered == 1
        assert metrics.confirmed_transactions == 3
        assert metrics.confirmed_bytes == 300
        assert metrics.timeline == [(2.0, 300)]

    def test_latency_local_vs_all(self):
        collector = MetricsCollector(2)
        collector.record_delivery(0, delivered(node_time=3.0, origins=(0, 1), created=1.0))
        metrics = collector.per_node[0]
        assert metrics.latencies_all == [2.0, 2.0]
        assert metrics.latencies_local == [2.0]
        collector.record_delivery(1, delivered(node_time=5.0, origins=(0,), created=1.0))
        assert collector.per_node[1].latencies_local == []

    def test_throughput(self):
        collector = MetricsCollector(1)
        collector.record_delivery(0, delivered(node_time=1.0))
        collector.record_delivery(0, delivered(node_time=2.0, epoch=2))
        assert collector.per_node[0].throughput(10.0) == pytest.approx(40.0)
        assert collector.throughputs(10.0) == [pytest.approx(40.0)]
        assert collector.mean_throughput(10.0) == pytest.approx(40.0)

    def test_throughput_requires_positive_duration(self):
        collector = MetricsCollector(1)
        with pytest.raises(ValueError):
            collector.per_node[0].throughput(0.0)

    def test_proposal_accounting(self):
        collector = MetricsCollector(1)
        block = Block(
            proposer=0,
            epoch=1,
            transactions=(Transaction(tx_id=1, origin=0, created_at=0.0, size=500),),
        )
        collector.record_proposal(0, block, now=0.5)
        metrics = collector.per_node[0]
        assert metrics.blocks_proposed == 1
        assert metrics.bytes_proposed == 500
        assert metrics.proposed_block_sizes == [block.size]

    def test_linked_blocks_counted(self):
        collector = MetricsCollector(1)
        entry = delivered(node_time=1.0)
        linked = DeliveredBlock(
            epoch=entry.epoch,
            proposer=5,
            block=entry.block,
            delivered_at=2.0,
            via_linking=True,
            delivered_in_epoch=2,
        )
        collector.record_delivery(0, linked)
        assert collector.per_node[0].blocks_linked == 1

    def test_latency_summary_none_without_samples(self):
        collector = MetricsCollector(1)
        assert collector.per_node[0].latency_summary() is None
        assert collector.latency_summaries() == [None]

    def test_total_confirmed_bytes(self):
        collector = MetricsCollector(2)
        collector.record_delivery(0, delivered(node_time=1.0))
        collector.record_delivery(1, delivered(node_time=1.0))
        assert collector.total_confirmed_bytes() == 400
