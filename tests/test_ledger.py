"""Tests for the delivered-block ledger."""

import pytest

from repro.core.block import Block, Transaction
from repro.core.ledger import DeliveredBlock, Ledger


def entry(epoch, proposer, num_txs=1, via_linking=False, at=1.0):
    txs = tuple(
        Transaction(tx_id=epoch * 100 + i, origin=proposer, created_at=0.0, size=10)
        for i in range(num_txs)
    )
    block = Block(proposer=proposer, epoch=epoch, transactions=txs)
    return DeliveredBlock(
        epoch=epoch,
        proposer=proposer,
        block=block,
        delivered_at=at,
        via_linking=via_linking,
        delivered_in_epoch=epoch,
    )


class TestLedger:
    def test_append_and_totals(self):
        ledger = Ledger()
        ledger.append(entry(1, 0, num_txs=2))
        ledger.append(entry(1, 1, num_txs=3))
        assert ledger.num_blocks == 2
        assert ledger.num_transactions == 5
        assert ledger.total_payload_bytes == 50

    def test_duplicate_slot_rejected(self):
        ledger = Ledger()
        ledger.append(entry(1, 0))
        with pytest.raises(ValueError):
            ledger.append(entry(1, 0))

    def test_has_delivered(self):
        ledger = Ledger()
        ledger.append(entry(2, 3))
        assert ledger.has_delivered(2, 3)
        assert not ledger.has_delivered(2, 4)
        assert not ledger.has_delivered(3, 3)

    def test_sequence_preserves_order(self):
        ledger = Ledger()
        ledger.append(entry(1, 1))
        ledger.append(entry(1, 0, via_linking=True))
        ledger.append(entry(2, 2))
        assert ledger.sequence() == [(1, 1), (1, 0), (2, 2)]

    def test_digest_sequence_matches_blocks(self):
        ledger = Ledger()
        first = entry(1, 0)
        ledger.append(first)
        assert ledger.digest_sequence() == [first.block.digest()]

    def test_transactions_flattened_in_order(self):
        ledger = Ledger()
        ledger.append(entry(1, 0, num_txs=2))
        ledger.append(entry(1, 1, num_txs=1))
        ids = [tx.tx_id for tx in ledger.transactions()]
        assert ids == [100, 101, 100]


class TestDeliveredBlock:
    def test_payload_accessors(self):
        item = entry(1, 0, num_txs=4)
        assert item.payload_bytes == 40
        assert item.num_transactions == 4

    def test_via_linking_flag(self):
        assert entry(1, 0, via_linking=True).via_linking
        assert not entry(1, 0).via_linking
