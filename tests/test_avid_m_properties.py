"""Property-based tests for AVID-M: correctness under arbitrary schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.test_avid_m import VidHarness


@given(
    payload=st.binary(min_size=0, max_size=400),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_all_retrievals_return_the_dispersed_payload(payload, seed):
    """Any payload, any delivery order: every correct client gets the payload back."""
    harness = VidHarness(4, seed=seed)
    harness.disperse(payload)
    harness.run()
    assert len(harness.completed) == 4
    results = harness.retrieve_all()
    assert all(result.ok and result.payload == payload for result in results.values())


@given(
    payload_a=st.binary(min_size=64, max_size=64),
    payload_b=st.binary(min_size=64, max_size=64),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=20, deadline=None)
def test_retrievals_agree_even_for_inconsistent_dispersals(payload_a, payload_b, seed):
    """The Correctness property: all correct clients return the *same* block,
    whether that is the dispersed payload or the BAD_UPLOADER marker."""
    from repro.adversary.equivocator import send_inconsistent_dispersal
    from repro.sim.context import NodeContext

    harness = VidHarness(4, seed=seed)
    ctx = NodeContext(0, harness.network, harness.network)
    send_inconsistent_dispersal(harness.params, ctx, harness.instance_id, payload_a, payload_b)
    harness.run()
    results = harness.retrieve_all()
    payloads = {id(r.payload): r.payload for r in results.values()}
    assert len({bytes(p) if isinstance(p, bytes) else p for p in payloads.values()}) == 1
