"""Windowed execution is invisible: byte-identical summaries and telemetry.

Three layers of evidence, mirroring the snapshot property suite:

* a hypothesis property — arbitrary fast-tier catalog scenarios at
  arbitrary window counts must produce summaries byte-identical to their
  monolithic run (the hand-off and monolithic runs share nothing but the
  spec);
* a deterministic sweep over every fast-tier golden ``sim`` scenario's
  *full pinned grid*, windowed, diffed against the golden snapshot on disk
  — so windowed runs answer to exactly the same regression net as the
  monolithic engine;
* a fork-point property — a warmup-only grid, which shares one window-0
  execution across all points, plus stitched telemetry, compared byte for
  byte against per-point monolithic runs.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.catalog import get_scenario
from repro.experiments.engine import run_scenario, sweep
from repro.experiments.golden import (
    GOLDEN_CONFIGS,
    SLOW_GOLDEN,
    GoldenConfig,
    golden_names,
    golden_points,
)
from repro.experiments.options import ExecutionOptions
from repro.experiments.scenario import expand_grid
from repro.experiments.windowed import plan_windowed_points, run_windowed_sweep
from repro.trace.recorder import TelemetrySpec

GOLDEN_DIR = Path(__file__).parent / "golden"


def _fast_sim_golden_names() -> list[str]:
    names = []
    for name in golden_names():
        if name in SLOW_GOLDEN:
            continue
        _config, base, _points = golden_points(name)
        if base.kind == "sim":
            names.append(name)
    return names


def _pinned_grid(name: str) -> dict:
    """The same grid :func:`golden_points` expands for the scenario."""
    entry = get_scenario(name)
    config = GOLDEN_CONFIGS.get(name, GoldenConfig())
    return dict(entry.grid or {}) if config.grid is None else dict(config.grid)


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


_MONO_CACHE: dict[str, dict] = {}


def _monolithic_first_point_summary(name: str) -> dict:
    if name not in _MONO_CACHE:
        _config, _base, points = golden_points(name)
        _overrides, spec = points[0]
        # No overrides either side: both runs carry the label "base", so the
        # summaries can be compared byte for byte.
        _MONO_CACHE[name] = run_scenario(spec).summary()
    return _MONO_CACHE[name]


# The same diverse fast-tier slice the snapshot properties use: plain
# replay, a mid-run crash, both node-class adversaries, heterogeneous
# stragglers.
PROPERTY_SCENARIOS = (
    "trace-replay-wan",
    "mid-run-crash",
    "censor-victim",
    "equivocate-split",
    "straggler-hetero",
)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
@given(
    name=st.sampled_from(PROPERTY_SCENARIOS),
    windows=st.integers(min_value=2, max_value=5),
)
def test_windowed_summary_is_byte_identical(name: str, windows: int):
    _config, _base, points = golden_points(name)
    overrides, spec = points[0]
    result = sweep(
        spec, None, options=ExecutionOptions(parallel=False, windows=windows)
    )
    assert result.windows == windows
    windowed = result.points[0].summary()
    mono = _monolithic_first_point_summary(name)
    assert _canon(windowed) == _canon(mono)


@pytest.mark.parametrize("name", _fast_sim_golden_names())
def test_fast_golden_grids_run_windowed_to_pinned_snapshot(name: str):
    """Every fast golden scenario's full pinned grid, windowed, vs its snapshot."""
    _config, base, _points = golden_points(name)
    result = run_windowed_sweep(
        base, _pinned_grid(name), ExecutionOptions(parallel=False, windows=3)
    )
    pinned = json.loads((GOLDEN_DIR / f"{name}.json").read_text())["summaries"]
    assert [_canon(point.summary()) for point in result.points] == [
        _canon(summary) for summary in pinned
    ]


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
@given(
    name=st.sampled_from(("trace-replay-wan", "straggler-hetero")),
    windows=st.integers(min_value=2, max_value=4),
)
def test_forked_prefix_with_telemetry_is_byte_identical(
    name: str, windows: int, tmp_path_factory
):
    """A warmup-only grid forks one window-0 checkpoint; everything still matches."""
    _config, _base, points = golden_points(name)
    _overrides, spec = points[0]
    grid = {"warmup": (0.0, spec.duration / 4, spec.duration / 2)}
    plans = plan_windowed_points(expand_grid(spec, grid), windows)
    assert [plan.leader for plan in plans] == [None, 0, 0]

    tmp = tmp_path_factory.mktemp("telemetry")
    mono_spec = replace(
        spec,
        telemetry=TelemetrySpec(enabled=True, interval=0.25, out_dir=str(tmp / "mono")),
    )
    win_spec = replace(
        spec,
        telemetry=TelemetrySpec(enabled=True, interval=0.25, out_dir=str(tmp / "win")),
    )
    mono = sweep(mono_spec, grid, options=ExecutionOptions(parallel=False))
    windowed = sweep(
        win_spec, grid, options=ExecutionOptions(parallel=False, windows=windows)
    )
    assert windowed.summaries() == mono.summaries()
    for mono_point, win_point in zip(mono.points, windowed.points):
        mono_bytes = Path(mono_point.telemetry_path).read_bytes()
        win_bytes = Path(win_point.telemetry_path).read_bytes()
        assert mono_bytes == win_bytes
        assert len(mono_bytes) > 0
