"""Property tests for adversary placement and equivocation consistency.

Two invariants carry the scenario engine's Byzantine support:

* :meth:`AdversarySpec.placement` is the single source of truth for *which*
  nodes misbehave — count-based placement must stay at the top node ids,
  explicit placement must be honoured exactly, and every invalid request
  (overlap, out-of-range ids, too many adversaries) must raise
  :class:`ConfigurationError` rather than silently mis-placing.
* An equivocating dispersal must be *universally* inconsistent: whatever
  ``N``/``K`` the cluster runs and wherever the split point lands, every
  decodable chunk subset must fail AVID-M's re-encode check, so all correct
  nodes agree on ``BAD_UPLOADER`` (Lemma B.8).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.registry import AdversarySpec
from repro.common.errors import ConfigurationError
from repro.common.ids import VIDInstanceId
from repro.common.params import ProtocolParams
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork
from repro.vid.codec import BAD_UPLOADER, RealCodec

#: Cluster sizes spanning f = 1..5 (and therefore K = N - 2f = 2..6).
CLUSTER_SIZES = (4, 7, 10, 13, 16)


class TestPlacementProperties:
    @given(
        n=st.integers(min_value=1, max_value=64),
        count=st.integers(min_value=0, max_value=64),
    )
    def test_count_placement_occupies_highest_ids(self, n: int, count: int):
        spec = AdversarySpec(kind="crash", count=count)
        if count > n:
            with pytest.raises(ConfigurationError):
                spec.placement(n)
            return
        placed = spec.placement(n)
        assert placed == tuple(range(n - count, n))
        assert len(placed) == count
        # node 0 (the proposer the figures highlight) stays honest whenever
        # the cluster can afford it
        if count < n:
            assert 0 not in placed

    @given(
        n=st.integers(min_value=2, max_value=64),
        data=st.data(),
    )
    def test_explicit_nodes_override_count(self, n: int, data):
        nodes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=n,
                unique=True,
            )
        )
        spec = AdversarySpec(kind="crash", count=n, nodes=tuple(nodes))
        assert spec.placement(n) == tuple(nodes)

    @given(n=st.integers(min_value=1, max_value=32), offset=st.integers(min_value=0, max_value=8))
    def test_out_of_range_ids_raise(self, n: int, offset: int):
        spec = AdversarySpec(kind="crash", nodes=(n + offset,))
        with pytest.raises(ConfigurationError):
            spec.placement(n)
        with pytest.raises(ConfigurationError):
            AdversarySpec(kind="crash", nodes=(-1,)).placement(n)

    def test_overlapping_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversarySpec(kind="crash", nodes=(1, 2, 1))

    def test_none_kind_places_nobody(self):
        assert AdversarySpec().placement(8) == ()
        # even when count/nodes are set, "none" means no placement
        assert AdversarySpec(kind="none", count=3).placement(8) == ()

    def test_invalid_behaviour_params_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversarySpec(kind="censor", victim=-1)
        with pytest.raises(ConfigurationError):
            AdversarySpec(kind="equivocate", split=0)
        with pytest.raises(ConfigurationError):
            AdversarySpec(kind="crash", count=-1)


def _mixed_dispersal(params: ProtocolParams, split: int):
    """Send an inconsistent dispersal and capture every chunk message."""
    from repro.adversary.equivocator import send_inconsistent_dispersal

    received = {}

    class Recorder:
        def __init__(self, node_id: int):
            self.node_id = node_id

        def start(self):
            return

        def on_message(self, src, msg):
            received[self.node_id] = msg

    network = InstantNetwork(params.n)
    for i in range(params.n):
        network.attach(i, Recorder(i))
    ctx = NodeContext(0, network, network)
    payload_a = bytes(range(256)) * 4
    payload_b = payload_a[::-1]
    root = send_inconsistent_dispersal(
        params, ctx, VIDInstanceId(epoch=1, proposer=0), payload_a, payload_b, split=split
    )
    network.run()
    return root, received


class TestEquivocationConsistency:
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_every_decodable_subset_is_bad_uploader(self, data):
        """Across N/K grids and split points, no chunk subset decodes cleanly."""
        n = data.draw(st.sampled_from(CLUSTER_SIZES))
        params = ProtocolParams.for_n(n)
        split = data.draw(st.integers(min_value=1, max_value=n - 1))
        root, received = _mixed_dispersal(params, split)

        assert len(received) == n
        assert {msg.root for msg in received.values()} == {root}
        codec = RealCodec(params)
        for node_id, msg in received.items():
            assert msg.chunk.index == node_id
            assert codec.verify_chunk(root, msg.chunk)

        k = params.data_shards
        # every contiguous window of K chunks, plus the systematic prefix
        subsets = [tuple(range(start, start + k)) for start in range(n - k + 1)]
        # and a handful of non-contiguous draws
        subsets.append(tuple(sorted(data.draw(
            st.lists(st.integers(min_value=0, max_value=n - 1),
                     min_size=k, max_size=k, unique=True)
        ))))
        for subset in subsets:
            chunks = {i: received[i].chunk for i in subset}
            assert codec.decode(root, chunks) == BAD_UPLOADER, (
                f"n={n} split={split} subset={subset} decoded cleanly"
            )

    @pytest.mark.parametrize("n", CLUSTER_SIZES)
    def test_default_split_is_systematic_boundary(self, n: int):
        """``split=None`` keeps the historic N - 2f behaviour on every grid."""
        params = ProtocolParams.for_n(n)
        root_default, received_default = _mixed_dispersal(params, params.data_shards)
        codec = RealCodec(params)
        # the systematic prefix alone decodes payload_a but fails re-encode
        k = params.data_shards
        chunks = {i: received_default[i].chunk for i in range(k)}
        assert codec.decode(root_default, chunks) == BAD_UPLOADER

    def test_split_bounds_enforced(self):
        from repro.adversary.equivocator import send_inconsistent_dispersal

        params = ProtocolParams.for_n(4)
        network = InstantNetwork(4)
        ctx = NodeContext(0, network, network)
        for bad in (0, 4, -1):
            with pytest.raises(ValueError):
                send_inconsistent_dispersal(
                    params, ctx, VIDInstanceId(epoch=1, proposer=0),
                    b"a" * 64, b"b" * 64, split=bad,
                )

    @pytest.mark.parametrize("n", CLUSTER_SIZES)
    def test_all_splits_consistent_across_grid(self, n: int):
        """Exhaustive over split (deterministic companion to the fuzz test)."""
        params = ProtocolParams.for_n(n)
        codec = RealCodec(params)
        k = params.data_shards
        for split in range(1, n):
            root, received = _mixed_dispersal(params, split)
            for start in (0, n - k):
                chunks = {i: received[i].chunk for i in range(start, start + k)}
                assert codec.decode(root, chunks) == BAD_UPLOADER

    def test_sampled_subsets_exhaustive_small_cluster(self):
        """For N = 4 every K-subset (all 6) must fail the re-encode check."""
        params = ProtocolParams.for_n(4)
        codec = RealCodec(params)
        for split in (1, 2, 3):
            root, received = _mixed_dispersal(params, split)
            for subset in itertools.combinations(range(4), params.data_shards):
                chunks = {i: received[i].chunk for i in subset}
                assert codec.decode(root, chunks) == BAD_UPLOADER
