"""The unified :class:`ExecutionOptions` surface and its deprecated-kwarg shims.

Covers the three contracts of :mod:`repro.experiments.options`:

* construction-time validation (frozen dataclass, invalid combinations
  raise :class:`ConfigurationError` immediately, not mid-sweep);
* the deprecated keyword shims on ``run_experiment`` / ``run_scenario`` /
  ``run_points`` / ``sweep`` / ``resume_experiment`` — each emits exactly
  one :class:`DeprecationWarning` naming the caller and the keywords as
  spelled, folds them into an equivalent options object, and refuses to
  mix them with an explicit ``options=``;
* behavioural equivalence: a run driven by a deprecated keyword is
  byte-identical to the same run driven by the options object.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import NodeConfig
from repro.experiments.engine import run_points, run_scenario, sweep
from repro.experiments.options import (
    UNSET,
    ExecutionOptions,
    merge_deprecated_kwargs,
)
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import (
    BandwidthSpec,
    ScenarioSpec,
    TopologySpec,
    expand_grid,
)

MB = 1_000_000.0


def tiny_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="tiny",
        topology=TopologySpec(kind="uniform", num_nodes=4, delay=0.05),
        bandwidth=BandwidthSpec(kind="constant", rate=2 * MB),
        workload=WorkloadSpec(kind="saturating", target_pending_bytes=500_000),
        node=NodeConfig(max_block_size=100_000),
        duration=4.0,
        warmup_fraction=0.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestValidation:
    def test_defaults_are_all_none_except_parallel(self):
        options = ExecutionOptions()
        for f in dataclasses.fields(ExecutionOptions):
            if f.name == "parallel":
                assert options.parallel is True
            else:
                assert getattr(options, f.name) is None, f.name

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionOptions().parallel = False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_every": 0.0},
            {"checkpoint_every": -1.0},
            {"workers": 0},
            {"windows": 0},
            {"windows": 2, "resume_dir": "/tmp/journal"},
            {"windows": 2, "resume_from": "/tmp/x.ckpt"},
        ],
    )
    def test_invalid_combinations_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExecutionOptions(**kwargs)

    def test_with_updates_revalidates(self):
        options = ExecutionOptions(windows=3)
        assert options.with_updates(windows=None).windows is None
        with pytest.raises(ConfigurationError):
            options.with_updates(resume_dir="/tmp/journal")


class TestMerge:
    def test_no_legacy_returns_options_or_defaults(self):
        options = ExecutionOptions(workers=2)
        assert merge_deprecated_kwargs(options, "f") is options
        assert merge_deprecated_kwargs(None, "f") == ExecutionOptions()

    def test_legacy_kwarg_warns_and_translates(self):
        with pytest.warns(DeprecationWarning, match=r"run_points.*max_workers"):
            merged = merge_deprecated_kwargs(
                None,
                "run_points",
                aliases={"max_workers": "workers"},
                parallel=UNSET,
                max_workers=3,
            )
        assert merged == ExecutionOptions(workers=3)

    def test_options_plus_legacy_is_type_error(self):
        with pytest.raises(TypeError, match="not both"):
            merge_deprecated_kwargs(ExecutionOptions(), "sweep", parallel=False)

    def test_unknown_legacy_name_is_type_error(self):
        with pytest.raises(TypeError, match="unknown execution option"):
            merge_deprecated_kwargs(None, "sweep", turbo=True)


class TestDeprecatedShims:
    def test_sweep_legacy_parallel_warns_and_matches_options_form(self):
        base = tiny_spec()
        grid = {"seed": (0, 1)}
        with pytest.warns(DeprecationWarning, match=r"sweep.*parallel"):
            legacy = sweep(base, grid, parallel=False)
        clean = sweep(base, grid, options=ExecutionOptions(parallel=False))
        assert legacy.summaries() == clean.summaries()

    def test_run_points_legacy_max_workers_warns(self):
        points = expand_grid(tiny_spec(), {"seed": (0,)})
        with pytest.warns(DeprecationWarning, match=r"run_points.*max_workers"):
            run_points(points, parallel=False, max_workers=1)

    def test_run_scenario_legacy_checkpoint_path_warns(self, tmp_path):
        path = tmp_path / "point.ckpt"
        spec = tiny_spec(checkpoint_every=1.0)
        with pytest.warns(DeprecationWarning, match=r"run_scenario.*checkpoint_path"):
            legacy = run_scenario(spec, checkpoint_path=path)
        assert path.exists()
        clean = run_scenario(spec, options=ExecutionOptions(checkpoint_path=path))
        assert legacy.summary() == clean.summary()

    def test_options_form_is_warning_free(self):
        base = tiny_spec()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sweep(base, {"seed": (0,)}, options=ExecutionOptions(parallel=False))

    def test_sweep_rejects_options_plus_legacy(self):
        with pytest.raises(TypeError, match="not both"):
            sweep(
                tiny_spec(),
                {"seed": (0,)},
                parallel=False,
                options=ExecutionOptions(),
            )

    def test_run_scenario_rejects_windows(self):
        with pytest.raises(ConfigurationError, match="sweep-level"):
            run_scenario(tiny_spec(), options=ExecutionOptions(windows=2))
