"""Tests for the node configuration object."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import REAL_PLANE, VIRTUAL_PLANE, NodeConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = NodeConfig()
        assert config.nagle_delay == pytest.approx(0.1)
        assert config.nagle_size == 150_000
        assert config.linking is True
        assert config.coupled is False
        assert config.data_plane == VIRTUAL_PLANE

    def test_real_plane(self):
        assert NodeConfig(data_plane=REAL_PLANE).data_plane == "real"


class TestValidation:
    def test_unknown_data_plane(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(data_plane="quantum")

    def test_negative_nagle_delay(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(nagle_delay=-0.1)

    def test_negative_nagle_size(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(nagle_size=-1)

    def test_non_positive_block_size(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(max_block_size=0)

    def test_coupled_lag_minimum(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(coupled_lag=0)

    def test_parallel_retrievals_minimum(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(max_parallel_retrievals=0)

    def test_frozen(self):
        config = NodeConfig()
        with pytest.raises(Exception):
            config.linking = False  # type: ignore[misc]
