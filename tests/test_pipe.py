"""Tests for the bandwidth-limited priority pipe."""

import pytest

from repro.sim.bandwidth import ConstantBandwidth, PiecewiseConstantBandwidth
from repro.sim.events import Simulator
from repro.sim.messages import Priority
from repro.sim.pipe import Pipe


def make_pipe(rate=100.0):
    sim = Simulator()
    return sim, Pipe(sim, ConstantBandwidth(rate))


class TestServiceOrder:
    def test_transfer_duration(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        pipe.submit(50, Priority.DISPERSAL, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_fifo_within_priority(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append("a"))
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append("b"))
        sim.run()
        assert done == ["a", "b"]

    def test_dispersal_preempts_queued_retrieval(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        # One transfer is in flight; then a retrieval and a dispersal arrive.
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("first"))
        pipe.submit(100, Priority.RETRIEVAL, lambda: done.append("retrieval"))
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append("dispersal"))
        sim.run()
        assert done == ["first", "dispersal", "retrieval"]

    def test_rank_orders_within_priority(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("head"))
        pipe.submit(10, Priority.RETRIEVAL, lambda: done.append("epoch3"), rank=3.0)
        pipe.submit(10, Priority.RETRIEVAL, lambda: done.append("epoch1"), rank=1.0)
        pipe.submit(10, Priority.RETRIEVAL, lambda: done.append("epoch2"), rank=2.0)
        sim.run()
        assert done == ["head", "epoch1", "epoch2", "epoch3"]

    def test_time_varying_rate(self):
        sim = Simulator()
        pipe = Pipe(sim, PiecewiseConstantBandwidth([(0.0, 10.0), (1.0, 90.0)]))
        done = []
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append(sim.now))
        sim.run()
        # 10 bytes in the first second, remaining 90 bytes at 90 B/s.
        assert done == [pytest.approx(2.0)]


class TestAbort:
    def test_aborted_transfer_consumes_no_time(self):
        sim, pipe = make_pipe(rate=10.0)
        done = []
        cancelled = {"flag": False}
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append("first"))
        pipe.submit(
            1000,
            Priority.DISPERSAL,
            lambda: done.append("aborted"),
            abort=lambda: cancelled["flag"],
        )
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("last"))
        cancelled["flag"] = True
        sim.run()
        assert done == ["first", "last"]
        assert sim.now == pytest.approx(11.0)
        assert pipe.bytes_aborted == 1000

    def test_abort_false_still_transfers(self):
        sim, pipe = make_pipe(rate=10.0)
        done = []
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("kept"), abort=lambda: False)
        sim.run()
        assert done == ["kept"]


class TestAccounting:
    def test_bytes_and_busy_time(self):
        sim, pipe = make_pipe(rate=100.0)
        pipe.submit(50, Priority.DISPERSAL, lambda: None)
        pipe.submit(150, Priority.RETRIEVAL, lambda: None)
        sim.run()
        assert pipe.bytes_transferred == 200
        assert pipe.busy_time == pytest.approx(2.0)

    def test_queued_bytes(self):
        sim, pipe = make_pipe(rate=1.0)
        pipe.submit(10, Priority.DISPERSAL, lambda: None)
        pipe.submit(20, Priority.RETRIEVAL, lambda: None)
        assert pipe.queued_bytes == 20  # the first transfer is in flight

    def test_negative_size_rejected(self):
        _, pipe = make_pipe()
        with pytest.raises(ValueError):
            pipe.submit(-1, Priority.DISPERSAL, lambda: None)
