"""Tests for the bandwidth-limited priority pipe."""

import pytest

from repro.sim.bandwidth import ConstantBandwidth, PiecewiseConstantBandwidth
from repro.sim.events import Simulator
from repro.sim.messages import Priority
from repro.sim.pipe import Pipe


def make_pipe(rate=100.0):
    sim = Simulator()
    return sim, Pipe(sim, ConstantBandwidth(rate))


class TestServiceOrder:
    def test_transfer_duration(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        pipe.submit(50, Priority.DISPERSAL, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_fifo_within_priority(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append("a"))
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append("b"))
        sim.run()
        assert done == ["a", "b"]

    def test_dispersal_preempts_queued_retrieval(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        # One transfer is in flight; then a retrieval and a dispersal arrive.
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("first"))
        pipe.submit(100, Priority.RETRIEVAL, lambda: done.append("retrieval"))
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append("dispersal"))
        sim.run()
        assert done == ["first", "dispersal", "retrieval"]

    def test_rank_orders_within_priority(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("head"))
        pipe.submit(10, Priority.RETRIEVAL, lambda: done.append("epoch3"), rank=3.0)
        pipe.submit(10, Priority.RETRIEVAL, lambda: done.append("epoch1"), rank=1.0)
        pipe.submit(10, Priority.RETRIEVAL, lambda: done.append("epoch2"), rank=2.0)
        sim.run()
        assert done == ["head", "epoch1", "epoch2", "epoch3"]

    def test_time_varying_rate(self):
        sim = Simulator()
        pipe = Pipe(sim, PiecewiseConstantBandwidth([(0.0, 10.0), (1.0, 90.0)]))
        done = []
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append(sim.now))
        sim.run()
        # 10 bytes in the first second, remaining 90 bytes at 90 B/s.
        assert done == [pytest.approx(2.0)]


class TestAbort:
    def test_aborted_transfer_consumes_no_time(self):
        sim, pipe = make_pipe(rate=10.0)
        done = []
        cancelled = {"flag": False}
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append("first"))
        pipe.submit(
            1000,
            Priority.DISPERSAL,
            lambda: done.append("aborted"),
            abort=lambda: cancelled["flag"],
        )
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("last"))
        cancelled["flag"] = True
        sim.run()
        assert done == ["first", "last"]
        assert sim.now == pytest.approx(11.0)
        assert pipe.bytes_aborted == 1000

    def test_abort_false_still_transfers(self):
        sim, pipe = make_pipe(rate=10.0)
        done = []
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("kept"), abort=lambda: False)
        sim.run()
        assert done == ["kept"]


class TestReentrantSubmission:
    def test_submit_from_on_done_serves_in_order(self):
        # A transfer submitted from inside another transfer's ``on_done`` must
        # not observe a half-updated pipe: it queues normally and is served
        # under the usual priority/FIFO order.
        sim, pipe = make_pipe(rate=100.0)
        done = []

        def first_done():
            done.append(("first", sim.now))
            pipe.submit(100, Priority.DISPERSAL, lambda: done.append(("nested", sim.now)))

        pipe.submit(100, Priority.DISPERSAL, first_done)
        pipe.submit(100, Priority.DISPERSAL, lambda: done.append(("second", sim.now)))
        sim.run()
        assert [label for label, _ in done] == ["first", "second", "nested"]
        assert done[0][1] == pytest.approx(1.0)
        assert done[1][1] == pytest.approx(2.0)
        assert done[2][1] == pytest.approx(3.0)
        assert pipe.bytes_transferred == 300

    def test_submit_to_idle_pipe_from_on_done(self):
        # Resubmitting into a pipe that is about to go idle (from the last
        # transfer's on_done) must restart service exactly once.
        sim, pipe = make_pipe(rate=100.0)
        done = []

        def resubmit():
            done.append("first")
            pipe.submit(50, Priority.DISPERSAL, lambda: done.append("again"))

        pipe.submit(100, Priority.DISPERSAL, resubmit)
        sim.run()
        assert done == ["first", "again"]
        assert sim.now == pytest.approx(1.5)

    def test_submit_starts_via_simulator_not_caller_frame(self):
        sim, pipe = make_pipe(rate=100.0)
        served = []
        pipe.submit(100, Priority.DISPERSAL, lambda: served.append(sim.now))
        # Nothing is served synchronously inside the submitting frame.
        assert served == []
        assert pipe.queued_bytes == 100
        sim.run()
        assert served == [pytest.approx(1.0)]

    def test_same_instant_higher_priority_queues_behind_idle_head(self):
        # The transfer that found the pipe idle starts first (exactly as a
        # synchronous start would have); a same-instant dispersal preempts
        # only the queue, not the head.
        sim, pipe = make_pipe(rate=100.0)
        done = []
        pipe.submit(10, Priority.RETRIEVAL, lambda: done.append("head"), rank=5.0)
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("dispersal"))
        sim.run()
        assert done == ["head", "dispersal"]


class TestBatchedDrain:
    def test_unlimited_pipe_drains_backlog_in_one_event(self):
        sim = Simulator()
        pipe = Pipe(sim, ConstantBandwidth(None))
        done = []
        for label in ("a", "b", "c"):
            pipe.submit(1_000, Priority.DISPERSAL, lambda label=label: done.append(label))
        sim.run()
        assert done == ["a", "b", "c"]
        assert pipe.bytes_transferred == 3_000
        # The batched drain still counts one semantic event per transfer.
        assert sim.processed_events == 3

    def test_zero_size_transfers_complete_at_current_instant(self):
        sim, pipe = make_pipe(rate=100.0)
        done = []
        pipe.submit(0, Priority.DISPERSAL, lambda: done.append(sim.now))
        pipe.submit(0, Priority.DISPERSAL, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0, 0.0]

    def test_abort_accounting_under_batched_drain(self):
        # ``bytes_aborted`` must cover entries dropped from both the FIFO and
        # the ranked queues, including consecutive drops inside one drain.
        sim, pipe = make_pipe(rate=100.0)
        done = []
        cancelled = {"flag": False}

        def abort():
            return cancelled["flag"]
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("head"))
        pipe.submit(20, Priority.DISPERSAL, lambda: done.append("x"), abort=abort)
        pipe.submit(30, Priority.DISPERSAL, lambda: done.append("y"), abort=abort)
        pipe.submit(40, Priority.RETRIEVAL, lambda: done.append("z"), rank=2.0, abort=abort)
        pipe.submit(50, Priority.RETRIEVAL, lambda: done.append("kept"), rank=3.0)
        cancelled["flag"] = True
        sim.run()
        assert done == ["head", "kept"]
        assert pipe.bytes_aborted == 20 + 30 + 40
        assert pipe.bytes_transferred == 10 + 50

    def test_aborted_idle_head_does_not_block_queue(self):
        # The idle-head transfer itself can be aborted before the kick runs;
        # the rest of the backlog must still be served.
        sim, pipe = make_pipe(rate=100.0)
        done = []
        cancelled = {"flag": True}
        pipe.submit(
            100, Priority.DISPERSAL, lambda: done.append("head"),
            abort=lambda: cancelled["flag"],
        )
        pipe.submit(10, Priority.DISPERSAL, lambda: done.append("next"))
        sim.run()
        assert done == ["next"]
        assert pipe.bytes_aborted == 100
        assert sim.now == pytest.approx(0.1)


class TestAccounting:
    def test_bytes_and_busy_time(self):
        sim, pipe = make_pipe(rate=100.0)
        pipe.submit(50, Priority.DISPERSAL, lambda: None)
        pipe.submit(150, Priority.RETRIEVAL, lambda: None)
        sim.run()
        assert pipe.bytes_transferred == 200
        assert pipe.busy_time == pytest.approx(2.0)

    def test_queued_bytes(self):
        sim, pipe = make_pipe(rate=1.0)
        pipe.submit(10, Priority.DISPERSAL, lambda: None)
        pipe.submit(20, Priority.RETRIEVAL, lambda: None)
        # Serving starts via the simulator, not in the submitting frame: both
        # transfers are queued until the scheduler runs the pipe.
        assert pipe.queued_bytes == 30
        sim.run(until=0.0)
        assert pipe.queued_bytes == 20  # the first transfer is now in flight

    def test_negative_size_rejected(self):
        _, pipe = make_pipe()
        with pytest.raises(ValueError):
            pipe.submit(-1, Priority.DISPERSAL, lambda: None)
