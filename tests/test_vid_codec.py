"""Tests for the AVID-M codecs (real erasure-coded bytes and virtual sizes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import ProtocolParams
from repro.crypto.merkle import MerkleTree
from repro.vid.codec import (
    BAD_UPLOADER,
    Chunk,
    RealCodec,
    VirtualCodec,
    VirtualPayload,
)


@pytest.fixture
def codec():
    return RealCodec(ProtocolParams.for_n(4))


class TestRealCodec:
    def test_encode_many_matches_individual_encodes(self, codec):
        payloads = [b"", b"first", b"second payload" * 5, bytes(range(200))]
        bundles = codec.encode_many(payloads)
        for payload, bundle in zip(payloads, bundles):
            single = codec.encode(payload)
            assert bundle.root == single.root
            assert bundle.payload_size == single.payload_size
            assert bundle.chunks == single.chunks

    def test_encode_many_empty(self, codec):
        assert codec.encode_many([]) == []

    def test_encode_produces_n_chunks_with_valid_proofs(self, codec):
        bundle = codec.encode(b"payload bytes")
        assert len(bundle.chunks) == 4
        for chunk in bundle.chunks:
            assert codec.verify_chunk(bundle.root, chunk)

    def test_verify_rejects_wrong_root(self, codec):
        bundle_a = codec.encode(b"payload a")
        bundle_b = codec.encode(b"payload b")
        assert not codec.verify_chunk(bundle_b.root, bundle_a.chunks[0])

    def test_verify_rejects_index_mismatch(self, codec):
        bundle = codec.encode(b"payload")
        chunk = bundle.chunks[1]
        forged = Chunk(index=2, size=chunk.size, data=chunk.data, proof=chunk.proof)
        assert not codec.verify_chunk(bundle.root, forged)

    def test_decode_roundtrip_from_any_quorum(self, codec):
        payload = b"dispersed ledger codec roundtrip" * 3
        bundle = codec.encode(payload)
        chunks = {c.index: c for c in bundle.chunks[:2]}
        assert codec.decode(bundle.root, chunks) == payload
        chunks = {c.index: c for c in bundle.chunks[2:]}
        assert codec.decode(bundle.root, chunks) == payload

    def test_decode_detects_inconsistent_encoding(self, codec):
        # Mix chunks from two different payloads under a fresh Merkle root:
        # the re-encode check must flag the dispersal as inconsistent.
        bundle_a = codec.encode(b"a" * 50)
        bundle_b = codec.encode(b"b" * 50)
        mixed = [
            bundle_a.chunks[0].data,
            bundle_a.chunks[1].data,
            bundle_b.chunks[2].data,
            bundle_b.chunks[3].data,
        ]
        tree = MerkleTree(mixed)
        chunks = {
            i: Chunk(index=i, size=len(mixed[i]), data=mixed[i], proof=tree.proof(i))
            for i in (1, 2)
        }
        assert codec.decode(tree.root, chunks) == BAD_UPLOADER

    def test_chunk_sizes_match_declared(self, codec):
        payload = b"x" * 1000
        bundle = codec.encode(payload)
        expected = codec.chunk_payload_size(len(payload))
        for chunk in bundle.chunks:
            assert chunk.size == expected
            assert len(chunk.data) == expected

    def test_chunk_wire_size_includes_proof(self, codec):
        assert codec.chunk_wire_size(1000) > codec.chunk_payload_size(1000)

    @given(payload=st.binary(min_size=0, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, payload):
        codec = RealCodec(ProtocolParams.for_n(7))
        bundle = codec.encode(payload)
        chunks = {c.index: c for c in bundle.chunks if c.index % 2 == 0}
        assert len(chunks) >= codec.params.data_shards
        assert codec.decode(bundle.root, chunks) == payload


class TestVirtualCodec:
    def test_payload_roundtrip(self):
        codec = VirtualCodec(ProtocolParams.for_n(4))
        payload = VirtualPayload.create(size=10_000, label="block")
        bundle = codec.encode(payload)
        assert bundle.payload_size == 10_000
        decoded = codec.decode(bundle.root, {c.index: c for c in bundle.chunks[:2]})
        assert decoded is payload

    def test_chunk_sizes_match_real_codec(self):
        params = ProtocolParams.for_n(16)
        real, virtual = RealCodec(params), VirtualCodec(params)
        for size in (1, 100, 150_000, 1_000_000):
            assert virtual.chunk_payload_size(size) == real.chunk_payload_size(size)
            assert virtual.chunk_wire_size(size) == real.chunk_wire_size(size)

    def test_distinct_payloads_distinct_roots(self):
        codec = VirtualCodec(ProtocolParams.for_n(4))
        a = codec.encode(VirtualPayload.create(size=100))
        b = codec.encode(VirtualPayload.create(size=100))
        assert a.root != b.root

    def test_payload_size_helper(self):
        codec = VirtualCodec(ProtocolParams.for_n(4))
        assert codec.payload_size(VirtualPayload.create(size=42)) == 42
        assert codec.payload_size(b"abc") == 3
