"""Span recording is execution-shape-blind: byte-identical span trees.

The :class:`~repro.trace.spans.SpanRecorder` promises that the causal span
tree is a function of the run, not of how the run was executed.  Two
hypothesis properties pin that down over the fast-tier catalog slice:

* the span JSONL from a windowed run (``--windows W`` hand-off) must be
  byte-identical to the monolithic run's — segments stitched across
  windows can leave no seam;
* the span JSONL from a run that checkpoints mid-flight, and from a run
  *resumed* off that checkpoint, must both be byte-identical to the
  monolithic file — open spans and FIFO transfer queues survive the
  ``repro-ckpt-v1`` round trip exactly.

Summaries ride along in every comparison so behaviour-neutrality is
re-asserted at the same time.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.engine import run_scenario, sweep
from repro.experiments.golden import golden_points
from repro.experiments.options import ExecutionOptions
from repro.trace.spans import SpanSpec

# The same diverse fast-tier slice the windowed properties use: plain
# replay, a node-class adversary, heterogeneous stragglers.
PROPERTY_SCENARIOS = (
    "trace-replay-wan",
    "censor-victim",
    "straggler-hetero",
)


def _span_spec(name: str, out_dir: Path):
    """The scenario's first golden point with span recording switched on."""
    _config, _base, points = golden_points(name)
    _overrides, spec = points[0]
    return replace(spec, spans=SpanSpec(enabled=True, out_dir=str(out_dir)))


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


# One monolithic reference run per scenario, shared across examples (the
# recorder is deterministic, so recording once is both honest and fast).
_MONO_CACHE: dict[str, tuple[str, bytes]] = {}


def _monolithic(name: str, tmp_path_factory) -> tuple[str, bytes]:
    if name not in _MONO_CACHE:
        out = tmp_path_factory.mktemp(f"mono-{name}")
        result = run_scenario(_span_spec(name, out))
        _MONO_CACHE[name] = (
            _canon(result.summary()),
            Path(result.span_path).read_bytes(),
        )
    return _MONO_CACHE[name]


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
@given(
    name=st.sampled_from(PROPERTY_SCENARIOS),
    windows=st.integers(min_value=2, max_value=4),
)
def test_windowed_span_tree_is_byte_identical(name, windows, tmp_path_factory):
    spec = _span_spec(name, tmp_path_factory.mktemp("windowed"))
    result = sweep(
        spec, None, options=ExecutionOptions(parallel=False, windows=windows)
    )
    mono_summary, mono_bytes = _monolithic(name, tmp_path_factory)
    point = result.points[0]
    assert Path(point.span_path).read_bytes() == mono_bytes
    assert len(mono_bytes) > 0
    assert _canon(point.summary()) == mono_summary


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
@given(
    name=st.sampled_from(PROPERTY_SCENARIOS),
    fraction=st.sampled_from((0.25, 0.5)),
)
def test_span_tree_survives_checkpoint_resume(name, fraction, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("ckpt")
    spec = _span_spec(name, tmp)
    ckpt_spec = replace(spec, checkpoint_every=spec.duration * fraction)
    ckpt = tmp / "point.ckpt"

    mono_summary, mono_bytes = _monolithic(name, tmp_path_factory)

    # Checkpointing with spans on is itself invisible...
    full = run_scenario(ckpt_spec, options=ExecutionOptions(checkpoint_path=ckpt))
    full_bytes = Path(full.span_path).read_bytes()
    assert full_bytes == mono_bytes
    assert _canon(full.summary()) == mono_summary

    # ...and the run resumed off the mid-flight checkpoint re-emits the
    # exact same file: restored open spans close identically.
    resumed = run_scenario(
        ckpt_spec,
        options=ExecutionOptions(checkpoint_path=ckpt, resume_from=ckpt),
    )
    assert Path(resumed.span_path).read_bytes() == mono_bytes
    assert _canon(resumed.summary()) == mono_summary
