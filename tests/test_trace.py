"""Measured-bandwidth trace model and file formats (repro.trace)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceError
from repro.trace import (
    MeasuredTrace,
    NodeTrace,
    load_trace,
    load_trace_cached,
    parse_csv,
    parse_json,
    resolve_trace_path,
    save_trace,
    to_csv_text,
    to_json_text,
)
from repro.trace.io import REPO_ROOT

MB = 1_000_000


def two_node_trace() -> MeasuredTrace:
    return MeasuredTrace.from_node_rates(
        "two",
        {
            0: [(0.0, 1 * MB, 2 * MB), (5.0, 2 * MB, 4 * MB), (10.0, 1 * MB, 3 * MB)],
            1: [(0.0, 3 * MB, 6 * MB), (4.0, 1 * MB, 1 * MB)],
        },
    )


class TestModelValidation:
    def test_node_ids_must_be_contiguous(self):
        with pytest.raises(TraceError, match="contiguous"):
            MeasuredTrace.from_node_rates("gap", {0: [(0, 1, 1)], 2: [(0, 1, 1)]})

    def test_unknown_high_node_id_named_in_error(self):
        with pytest.raises(TraceError, match=r"unknown ids \[7\]"):
            MeasuredTrace.from_node_rates("bad", {0: [(0, 1, 1)], 7: [(0, 1, 1)]})

    def test_negative_node_id_rejected(self):
        with pytest.raises(TraceError, match="non-negative"):
            NodeTrace(node=-1, points=((0.0, 1.0, 1.0),))

    def test_non_monotonic_timestamps_rejected(self):
        with pytest.raises(TraceError, match="strictly increasing"):
            MeasuredTrace.from_node_rates("t", {0: [(0, 1, 1), (2, 1, 1), (1, 1, 1)]})

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(TraceError, match="strictly increasing"):
            MeasuredTrace.from_node_rates("t", {0: [(0, 1, 1), (0, 2, 2)]})

    def test_negative_time_and_rate_rejected(self):
        with pytest.raises(TraceError, match="negative time"):
            MeasuredTrace.from_node_rates("t", {0: [(-1, 1, 1)]})
        with pytest.raises(TraceError, match="negative rate"):
            MeasuredTrace.from_node_rates("t", {0: [(0, -5, 1)]})

    def test_non_finite_values_rejected(self):
        with pytest.raises(TraceError, match="non-finite"):
            MeasuredTrace.from_node_rates("t", {0: [(0, math.inf, 1)]})

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError, match="no nodes"):
            MeasuredTrace(name="empty", nodes=())
        with pytest.raises(TraceError, match="no breakpoints"):
            MeasuredTrace.from_node_rates("empty", {0: []})


class TestModelShape:
    def test_shape_properties(self):
        trace = two_node_trace()
        assert trace.num_nodes == 2
        assert trace.duration == 10.0
        assert trace.num_points == 5

    def test_rates_at_clamps_to_the_ends(self):
        trace = two_node_trace()
        assert trace.rates_at(0, -1.0) == (1 * MB, 2 * MB)  # before the first point
        assert trace.rates_at(0, 7.5) == (2 * MB, 4 * MB)
        assert trace.rates_at(0, 99.0) == (1 * MB, 3 * MB)  # last rate holds forever

    def test_stats_are_time_weighted(self):
        trace = MeasuredTrace.from_node_rates(
            "w", {0: [(0.0, 0.0, 4 * MB), (8.0, 0.0, 2 * MB), (10.0, 0.0, 2 * MB)]}
        )
        stats = trace.stats()[0]
        # 8 s at 4 MB/s + 2 s at 2 MB/s over the 10 s duration = 3.6 MB/s.
        assert stats["down_mean"] == pytest.approx(3.6 * MB)
        assert stats["down_min"] == 2 * MB
        assert stats["down_max"] == 4 * MB


class TestTransforms:
    def test_scaled_multiplies_every_rate(self):
        trace = two_node_trace().scaled(2.0)
        assert trace.rates_at(0, 0.0) == (2 * MB, 4 * MB)
        assert trace.rates_at(1, 6.0) == (2 * MB, 2 * MB)
        with pytest.raises(TraceError):
            trace.scaled(0.0)

    def test_clipped_rebases_and_preserves_rates(self):
        trace = two_node_trace().clipped(4.0, 9.0)
        # The window starts mid-segment: the rate at the old t=4 becomes t=0.
        assert trace.rates_at(0, 0.0) == (1 * MB, 2 * MB)
        assert trace.rates_at(0, 1.0) == (2 * MB, 4 * MB)  # old t=5 breakpoint
        assert trace.rates_at(1, 0.5) == (1 * MB, 1 * MB)
        assert trace.duration < 9.0 - 4.0 + 1e-9
        with pytest.raises(TraceError):
            trace.clipped(3.0, 3.0)

    def test_clipped_window_past_the_duration_is_rejected(self):
        """Regression: a window starting at/past the last breakpoint used to
        silently return a constant extrapolation of the final rates."""
        trace = two_node_trace()  # duration 10 s
        with pytest.raises(TraceError, match="past the trace's last breakpoint"):
            trace.clipped(10.0, 20.0)
        with pytest.raises(TraceError, match="nothing measured remains"):
            trace.clipped(0.0, 1e9).clipped(1e8, 1e9)

    def test_clipped_end_past_the_duration_holds_the_tail(self):
        """`end > duration` is legal: the final rates hold forever, so the
        clip keeps every breakpoint and duration stays at the last one."""
        trace = two_node_trace().clipped(4.0, 1e9)
        assert trace.duration == 10.0 - 4.0
        assert trace.rates_at(0, 1e6) == (1 * MB, 3 * MB)  # tail-hold

    def test_resampled_covers_the_duration(self):
        trace = two_node_trace().resampled(2.5)
        assert [t for t, _, _ in trace.nodes[0].points] == [0.0, 2.5, 5.0, 7.5, 10.0]
        with pytest.raises(TraceError):
            trace.resampled(-1.0)

    def test_resampled_never_extends_the_trace(self):
        """Regression: a 5 s trace resampled at 2 s used to gain a breakpoint
        at 6 s, growing `duration` to 6.0."""
        trace = MeasuredTrace.from_node_rates(
            "five", {0: [(0.0, 1 * MB, 1 * MB), (5.0, 2 * MB, 2 * MB)]}
        )
        resampled = trace.resampled(2.0)
        assert [t for t, _, _ in resampled.nodes[0].points] == [0.0, 2.0, 4.0, 5.0]
        assert resampled.duration == trace.duration == 5.0
        # The carried final tick holds the final measured rates.
        assert resampled.rates_at(0, 5.0) == (2 * MB, 2 * MB)

    def test_resampled_single_breakpoint_trace_stays_degenerate(self):
        trace = MeasuredTrace.from_node_rates("one", {0: [(0.0, 1 * MB, 1 * MB)]})
        resampled = trace.resampled(2.0)
        assert resampled.duration == 0.0
        assert resampled.nodes[0].points == ((0.0, 1 * MB, 1 * MB),)

    @settings(max_examples=60, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.01, max_value=8.0, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        step=st.floats(min_value=0.05, max_value=7.0, allow_nan=False),
    )
    def test_resampled_duration_is_invariant(self, times, step):
        """resampled(step).duration == duration for arbitrary grids/steps."""
        breakpoints = [(0.0, 1.0, 1.0)]
        t = 0.0
        for gap in times:
            t += float(gap)
            breakpoints.append((t, 1.0, 1.0))
        trace = MeasuredTrace.from_node_rates("prop", {0: breakpoints})
        assert trace.resampled(float(step)).duration == trace.duration

    @settings(max_examples=40, deadline=None)
    @given(
        rates=st.lists(
            st.integers(min_value=0, max_value=10 * MB), min_size=2, max_size=24
        ),
        factor=st.sampled_from([1, 2, 4]),
    )
    def test_resampling_round_trip_is_lossless_on_grid(self, rates, factor):
        """Breakpoints on a 1 s grid survive finer resampling and return exactly."""
        trace = MeasuredTrace.from_node_rates(
            "prop", {0: [(float(i), float(r), float(r)) for i, r in enumerate(rates)]}
        )
        fine = trace.resampled(1.0 / factor)
        back = fine.resampled(1.0)
        assert [p for p in back.nodes[0].points] == [
            (float(i), float(r), float(r)) for i, r in enumerate(rates)
        ]
        # The fine grid never changes the rate function anywhere.
        for t in [i / (2 * factor) for i in range(2 * factor * len(rates))]:
            assert fine.rates_at(0, t) == trace.rates_at(0, t)


class TestBandwidthBridge:
    def test_ingress_is_down_egress_is_up(self):
        ingress, egress = two_node_trace().bandwidth_traces(2)
        assert ingress[0].rate_at(0.0) == 2 * MB
        assert egress[0].rate_at(0.0) == 1 * MB

    def test_larger_cluster_cycles_through_trace_nodes(self):
        ingress, _ = two_node_trace().bandwidth_traces(5)
        assert len(ingress) == 5
        assert ingress[2].rate_at(0.0) == ingress[0].rate_at(0.0)
        assert ingress[3].rate_at(0.0) == ingress[1].rate_at(0.0)

    def test_scale_headroom_and_floor(self):
        trace = MeasuredTrace.from_node_rates("z", {0: [(0.0, 0.0, 0.0), (1.0, 4.0, 8.0)]})
        ingress, egress = trace.bandwidth_traces(1, scale=2.0, egress_headroom=3.0)
        # Measured zeros are floored so transfers stall instead of hanging forever.
        assert ingress[0].rate_at(0.0) == 1.0
        assert egress[0].rate_at(0.0) == 1.0
        assert ingress[0].rate_at(1.5) == 16.0
        assert egress[0].rate_at(1.5) == 24.0

    def test_bad_replay_arguments(self):
        with pytest.raises(TraceError):
            two_node_trace().bandwidth_traces(0)
        with pytest.raises(TraceError):
            two_node_trace().bandwidth_traces(2, scale=0.0)


class TestCsvFormat:
    def test_round_trip(self):
        trace = two_node_trace()
        assert parse_csv(to_csv_text(trace), name="two") == trace

    def test_interleaved_rows_group_by_node(self):
        text = "time,node,up_bps,down_bps\n0,0,1,2\n0,1,3,4\n1,0,5,6\n1,1,7,8\n"
        trace = parse_csv(text)
        assert trace.num_nodes == 2
        assert trace.rates_at(0, 1.5) == (5.0, 6.0)

    @pytest.mark.parametrize(
        "text, match",
        [
            ("", "empty"),
            ("time,node,up,down\n", "header"),
            ("time,node,up_bps,down_bps\n0,0,1\n", "expected 4 columns"),
            ("time,node,up_bps,down_bps\n0,zero,1,2\n", "not an integer"),
            ("time,node,up_bps,down_bps\n0,0.5,1,2\n", "not an integer"),
            ("time,node,up_bps,down_bps\nx,0,1,2\n", "line 2"),
            ("time,node,up_bps,down_bps\n0,0,1,2\n0,0,3,4\n", "strictly increasing"),
            ("time,node,up_bps,down_bps\n0,1,1,2\n", "missing ids"),
        ],
    )
    def test_malformed_csv_raises_trace_error(self, text, match):
        with pytest.raises(TraceError, match=match):
            parse_csv(text)


class TestJsonFormat:
    def test_round_trip(self):
        trace = two_node_trace()
        assert parse_json(to_json_text(trace)) == trace

    @pytest.mark.parametrize(
        "text, match",
        [
            ("{ not json", "invalid JSON"),
            ("[1, 2]", "'nodes' mapping"),
            ('{"nodes": {"zero": []}}', "not an integer"),
            ('{"nodes": {"0": [[0, 1]]}}', "must be"),
            ('{"nodes": {"0": [[0, 1, "x"]]}}', "non-numeric"),
            ('{"format": "v999", "nodes": {"0": [[0, 1, 1]]}}', "unsupported format"),
            ('{"nodes": {"0": [[1, 1, 1], [0, 1, 1]]}}', "strictly increasing"),
        ],
    )
    def test_malformed_json_raises_trace_error(self, text, match):
        with pytest.raises(TraceError, match=match):
            parse_json(text)


class TestFiles:
    def test_save_and_load_both_formats(self, tmp_path):
        trace = two_node_trace()
        for suffix in (".csv", ".json"):
            path = tmp_path / f"t{suffix}"
            save_trace(trace, path)
            loaded = load_trace(path)
            assert loaded.nodes == trace.nodes, suffix

    def test_unsupported_extension(self, tmp_path):
        with pytest.raises(TraceError, match="unsupported extension"):
            save_trace(two_node_trace(), tmp_path / "t.yaml")

    def test_unwritable_target_is_a_trace_error(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where a directory is needed")
        with pytest.raises(TraceError, match="cannot write"):
            save_trace(two_node_trace(), blocker / "out.csv")

    def test_missing_file_is_a_trace_error(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace(tmp_path / "absent.csv")

    def test_relative_paths_resolve_against_repo_root(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        resolved = resolve_trace_path("traces/wan-measured.csv")
        assert resolved == REPO_ROOT / "traces" / "wan-measured.csv"
        assert load_trace("traces/wan-measured.csv").num_nodes == 8

    def test_cached_loader_shares_the_parsed_object(self):
        first = load_trace_cached("traces/wan-measured.csv")
        second = load_trace_cached("traces/wan-measured.csv")
        assert first is second

    @pytest.mark.parametrize(
        "name", ["wan-measured.csv", "lte-handover.json", "flash-crowd.csv"]
    )
    def test_bundled_traces_are_valid(self, name):
        trace = load_trace(REPO_ROOT / "traces" / name)
        assert trace.num_nodes >= 4
        assert trace.duration >= 30.0
        stats = trace.stats()
        assert all(row["down_mean"] > 0 and row["up_mean"] > 0 for row in stats)
