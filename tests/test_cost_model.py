"""Tests for the analytical per-epoch cost model behind Fig. 12 / Fig. 13."""

import pytest

from repro.common.params import ProtocolParams
from repro.experiments.cost_model import (
    chunk_wire_bytes,
    dispersal_download_bytes,
    epoch_cost,
    estimate_throughput,
    merkle_proof_bytes,
    retrieval_download_bytes,
)
from repro.workload.traces import MB


class TestByteFormulas:
    def test_merkle_proof_depth(self):
        assert merkle_proof_bytes(16) == 4 + 32 * 4
        assert merkle_proof_bytes(17) == 4 + 32 * 5
        assert merkle_proof_bytes(2) == 4 + 32

    def test_chunk_wire_bytes_matches_real_codec(self):
        from repro.vid.codec import RealCodec

        params = ProtocolParams.for_n(16)
        codec = RealCodec(params)
        block = 500_000
        modelled = chunk_wire_bytes(params, block)
        real = 24 + 32 + codec.chunk_wire_size(block)
        assert modelled == pytest.approx(real, rel=0.01)

    def test_dispersal_download_scales_quadratically_in_votes(self):
        small = dispersal_download_bytes(ProtocolParams.for_n(16), 0)
        large = dispersal_download_bytes(ProtocolParams.for_n(64), 0)
        assert large > 12 * small

    def test_retrieval_scales_with_blocks(self):
        params = ProtocolParams.for_n(16)
        one = retrieval_download_bytes(params, 500_000, 1)
        ten = retrieval_download_bytes(params, 500_000, 10)
        assert ten == pytest.approx(10 * one)


class TestEpochCost:
    def test_dispersal_fraction_falls_with_n(self):
        # Fig. 13: bigger clusters spend a smaller fraction on dispersal
        # (each node's chunk is a 1/(N-2f) slice).  At very large N the
        # quadratic vote traffic starts pushing back, so we require the trend
        # over the paper's range and a clear endpoint-to-endpoint drop rather
        # than strict monotonicity.
        fractions = {
            n: epoch_cost(ProtocolParams.for_n(n), 500_000).dispersal_fraction
            for n in (16, 32, 64, 128)
        }
        assert fractions[32] < fractions[16]
        assert fractions[64] < fractions[32]
        assert fractions[128] < 0.66 * fractions[16]

    def test_dispersal_fraction_falls_with_block_size(self):
        params = ProtocolParams.for_n(32)
        small = epoch_cost(params, 500_000).dispersal_fraction
        large = epoch_cost(params, 1_000_000).dispersal_fraction
        assert large < small

    def test_committed_payload_defaults_to_all_blocks(self):
        params = ProtocolParams.for_n(16)
        cost = epoch_cost(params, 500_000)
        assert cost.committed_payload == pytest.approx(16 * 500_000)


class TestThroughputEstimates:
    def test_dl_beats_hb_at_every_scale(self):
        for n in (16, 32, 64, 128):
            params = ProtocolParams.for_n(n)
            dl = estimate_throughput(params, 500_000, 10 * MB, protocol="dl")
            hb = estimate_throughput(params, 500_000, 10 * MB, protocol="hb")
            assert dl.throughput > hb.throughput

    def test_throughput_declines_slowly_with_n(self):
        # Fig. 12: growing the cluster 8x costs only a modest throughput drop.
        params16 = ProtocolParams.for_n(16)
        params128 = ProtocolParams.for_n(128)
        t16 = estimate_throughput(params16, 1_000_000, 10 * MB, protocol="dl").throughput
        t128 = estimate_throughput(params128, 1_000_000, 10 * MB, protocol="dl").throughput
        assert t128 < t16
        assert t128 > 0.5 * t16

    def test_larger_blocks_help(self):
        params = ProtocolParams.for_n(64)
        small = estimate_throughput(params, 500_000, 10 * MB, protocol="dl").throughput
        large = estimate_throughput(params, 1_000_000, 10 * MB, protocol="dl").throughput
        assert large >= small

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            estimate_throughput(ProtocolParams.for_n(16), 500_000, 10 * MB, protocol="pbft")

    def test_throughput_bounded_by_bandwidth(self):
        params = ProtocolParams.for_n(16)
        estimate = estimate_throughput(params, 1_000_000, 10 * MB, protocol="dl")
        assert estimate.throughput <= 10 * MB
