"""Integration tests for the HoneyBadger and HB-Link baselines."""

import pytest

from repro.core.config import NodeConfig
from repro.honeybadger.node import HoneyBadgerLinkNode, HoneyBadgerNode
from tests.conftest import build_cluster, submit_texts
from tests.test_dl_node import _crashed_factory, assert_identical_ledgers


class TestHoneyBadger:
    def test_agreement_and_total_order(self, params4):
        network, nodes = build_cluster(HoneyBadgerNode, params4, max_epochs=3)
        for i, node in enumerate(nodes):
            submit_texts(node, [f"hb-{i}-{k}" for k in range(3)])
        network.start()
        network.run()
        assert_identical_ledgers(nodes)
        assert all(node.delivered_epoch == 3 for node in nodes)

    def test_linking_disabled_by_class(self, params4):
        _, nodes = build_cluster(HoneyBadgerNode, params4, max_epochs=1)
        assert all(not node.config.linking for node in nodes)
        _, link_nodes = build_cluster(HoneyBadgerLinkNode, params4, max_epochs=1)
        assert all(node.config.linking for node in link_nodes)

    def test_all_transactions_delivered_with_all_correct_nodes(self, params4):
        network, nodes = build_cluster(HoneyBadgerNode, params4, max_epochs=4)
        submitted = []
        for i, node in enumerate(nodes):
            submitted += [tx.tx_id for tx in submit_texts(node, [f"t-{i}-{k}" for k in range(2)])]
        network.start()
        network.run()
        delivered = {tx.tx_id for tx in nodes[0].ledger.transactions()}
        assert set(submitted) <= delivered

    def test_lockstep_epochs_never_run_ahead_of_delivery(self, params4):
        network, nodes = build_cluster(HoneyBadgerNode, params4, max_epochs=3)
        network.start()
        network.run()
        for node in nodes:
            # HoneyBadger proposes epoch e+1 only after delivering epoch e, so
            # the dispersal frontier can lead the delivery frontier by at most 1.
            assert node.current_epoch - node.delivered_epoch <= 1

    def test_progress_with_crashed_node(self, params4):
        network, nodes = build_cluster(
            HoneyBadgerNode, params4, max_epochs=3, node_classes={3: _crashed_factory()}
        )
        for i in range(3):
            submit_texts(nodes[i], [f"hbcrash-{i}"])
        network.start()
        network.run()
        correct = [0, 1, 2]
        assert_identical_ledgers(nodes, correct)
        assert all(nodes[i].delivered_epoch == 3 for i in correct)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_agreement_under_random_delivery_order(self, params7, seed):
        network, nodes = build_cluster(HoneyBadgerNode, params7, seed=seed, max_epochs=2)
        for i, node in enumerate(nodes):
            submit_texts(node, [f"r-{i}"])
        network.start()
        network.run()
        assert_identical_ledgers(nodes)


class TestHoneyBadgerLink:
    def test_agreement_with_linking(self, params4):
        network, nodes = build_cluster(HoneyBadgerLinkNode, params4, max_epochs=3)
        for i, node in enumerate(nodes):
            submit_texts(node, [f"hbl-{i}-{k}" for k in range(2)])
        network.start()
        network.run()
        assert_identical_ledgers(nodes)

    def test_link_blocks_carry_v_arrays(self, params4):
        network, nodes = build_cluster(HoneyBadgerLinkNode, params4, max_epochs=2)
        network.start()
        network.run()
        late_blocks = [e.block for e in nodes[0].ledger.entries if e.epoch == 2]
        assert late_blocks and all(len(b.v_array) == 4 for b in late_blocks)

    def test_progress_with_crashed_node(self, params4):
        network, nodes = build_cluster(
            HoneyBadgerLinkNode, params4, max_epochs=2, node_classes={0: _crashed_factory()}
        )
        submit_texts(nodes[1], ["survives"])
        network.start()
        network.run()
        assert_identical_ledgers(nodes, [1, 2, 3])
        delivered = {tx.data for tx in nodes[1].ledger.transactions()}
        assert b"survives" in delivered


class TestCrossProtocolEquivalence:
    def test_dl_and_hb_deliver_same_transaction_set(self, params4):
        """Both protocol families must deliver the same transactions (though
        possibly in different orders), given identical submissions."""
        from repro.core.node import DispersedLedgerNode

        outcomes = {}
        for name, cls in (("dl", DispersedLedgerNode), ("hb", HoneyBadgerNode)):
            network, nodes = build_cluster(cls, params4, max_epochs=3)
            for i, node in enumerate(nodes):
                node.submit_payload(f"shared-{i}".encode())
            network.start()
            network.run()
            outcomes[name] = {tx.data for tx in nodes[0].ledger.transactions()}
        assert outcomes["dl"] == outcomes["hb"]

    def test_config_override_is_respected(self, params4):
        config = NodeConfig(data_plane="real", linking=True)
        _, nodes = build_cluster(HoneyBadgerNode, params4, config=config, max_epochs=1)
        # The HoneyBadger class forces linking off regardless of the supplied config.
        assert all(not node.config.linking for node in nodes)
