"""Tests for the bandwidth-accurate simulated network."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.events import Simulator
from repro.sim.messages import Message, Priority
from repro.sim.network import LOOPBACK_DELAY, Network, NetworkConfig


class Recorder:
    """A process that records (time, src, msg) for every delivery."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def start(self):
        return

    def on_message(self, src, msg):
        self.received.append((self.sim.now, src, msg))


class DecliningRecorder(Recorder):
    """A recorder that declines every transfer above a size threshold."""

    def declines_transfer(self, msg):
        return msg.wire_size > 500


def build(num_nodes=2, delay=0.1, rate=1000.0, recorder_class=Recorder):
    sim = Simulator()
    config = NetworkConfig(
        num_nodes=num_nodes,
        propagation_delay=delay,
        egress_traces=[ConstantBandwidth(rate)] * num_nodes,
        ingress_traces=[ConstantBandwidth(rate)] * num_nodes,
    )
    network = Network(sim, config)
    recorders = []
    for node in range(num_nodes):
        recorder = recorder_class(sim)
        network.attach(node, recorder)
        recorders.append(recorder)
    return sim, network, recorders


class TestDelivery:
    def test_end_to_end_time(self):
        sim, network, recorders = build(rate=1000.0, delay=0.1)
        network.send(0, 1, Message(wire_size=100))
        sim.run()
        # 0.1 s egress + 0.1 s propagation + 0.1 s ingress.
        assert recorders[1].received[0][0] == pytest.approx(0.3)

    def test_loopback_is_cheap(self):
        sim, network, recorders = build()
        network.send(0, 0, Message(wire_size=10_000))
        sim.run()
        assert recorders[0].received[0][0] == pytest.approx(LOOPBACK_DELAY)

    def test_invalid_destination(self):
        _, network, _ = build()
        with pytest.raises(ConfigurationError):
            network.send(0, 5, Message())

    def test_matrix_delays(self):
        sim = Simulator()
        config = NetworkConfig(
            num_nodes=2, propagation_delay=[[0.0, 0.25], [0.25, 0.0]]
        )
        network = Network(sim, config)
        recorder = Recorder(sim)
        network.attach(1, recorder)
        network.send(0, 1, Message(wire_size=0))
        sim.run()
        assert recorder.received[0][0] == pytest.approx(0.25)

    def test_egress_serialisation(self):
        sim, network, recorders = build(rate=100.0, delay=0.0)
        network.send(0, 1, Message(wire_size=100))
        network.send(0, 1, Message(wire_size=100))
        sim.run()
        times = [t for t, _, _ in recorders[1].received]
        # Second message waits for the first at the shared egress, then both
        # also serialise through the ingress pipe.
        assert times[0] == pytest.approx(2.0)
        assert times[1] == pytest.approx(3.0)

    def test_trace_length_validation(self):
        sim = Simulator()
        config = NetworkConfig(num_nodes=3, egress_traces=[None, None])
        with pytest.raises(ConfigurationError):
            Network(sim, config)


class TestStatsAndPriorities:
    def test_traffic_stats_split_by_priority(self):
        sim, network, _ = build(rate=None if False else 1000.0)
        network.send(0, 1, Message(wire_size=100, priority=Priority.DISPERSAL))
        network.send(0, 1, Message(wire_size=300, priority=Priority.RETRIEVAL))
        sim.run()
        assert network.stats[0].sent[Priority.DISPERSAL] == 100
        assert network.stats[0].sent[Priority.RETRIEVAL] == 300
        assert network.stats[1].received[Priority.DISPERSAL] == 100
        assert network.stats[1].received[Priority.RETRIEVAL] == 300
        assert network.stats[1].dispersal_fraction == pytest.approx(0.25)

    def test_dispersal_fraction_empty(self):
        _, network, _ = build()
        assert network.stats[0].dispersal_fraction == 0.0

    def test_dispersal_priority_wins_shared_egress(self):
        sim, network, recorders = build(rate=100.0, delay=0.0)
        order = []
        recorders[1].on_message = lambda src, msg: order.append(msg.priority)
        # attach() snapshots the handler's bound on_message; re-attach so the
        # replacement above is the method the network delivers to.
        network.attach(1, recorders[1])
        # Something already in flight, then a retrieval and a dispersal queue up.
        network.send(0, 1, Message(wire_size=10, priority=Priority.DISPERSAL))
        network.send(0, 1, Message(wire_size=500, priority=Priority.RETRIEVAL))
        network.send(0, 1, Message(wire_size=500, priority=Priority.DISPERSAL))
        sim.run()
        assert order[1] == Priority.DISPERSAL
        assert order[2] == Priority.RETRIEVAL


class TestReceiverSideCancellation:
    def test_declined_transfer_not_delivered_or_charged(self):
        sim, network, recorders = build(rate=100.0, recorder_class=DecliningRecorder)
        network.send(0, 1, Message(wire_size=1000))
        network.send(0, 1, Message(wire_size=100))
        sim.run()
        sizes = [msg.wire_size for _, _, msg in recorders[1].received]
        assert sizes == [100]
        # The declined kilobyte was dropped at the ingress, so only the small
        # message was charged against the receiver.
        assert network.stats[1].total_received == 100

    def test_abort_callable_from_sender(self):
        sim, network, recorders = build(rate=10.0)
        cancelled = {"flag": False}
        network.send(0, 1, Message(wire_size=100), abort=lambda: cancelled["flag"])
        network.send(0, 1, Message(wire_size=10))
        cancelled["flag"] = True
        sim.run()
        assert [msg.wire_size for _, _, msg in recorders[1].received] == [10]
