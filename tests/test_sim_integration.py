"""End-to-end runs on the bandwidth-accurate simulator.

These are the closest tests to the paper's deployment: nodes connected by a
WAN with propagation delay and per-node bandwidth caps, with Poisson or
backlogged client load, checked for the BFT properties and for the
qualitative performance behaviours the protocol is designed to have.
"""

import pytest

from repro.ba.coin import CommonCoin
from repro.common.params import ProtocolParams
from repro.core.config import NodeConfig
from repro.core.node import DispersedLedgerNode
from repro.honeybadger.node import HoneyBadgerNode
from repro.metrics.collector import MetricsCollector
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.context import NodeContext
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.workload.txgen import PoissonTransactionGenerator


def run_cluster(
    node_class,
    n=4,
    duration=25.0,
    rate=500_000.0,
    bandwidth=2_000_000.0,
    delay=0.1,
    data_plane="real",
    config=None,
    load_rate=100_000.0,
):
    params = ProtocolParams.for_n(n)
    sim = Simulator()
    network_config = NetworkConfig(
        num_nodes=n,
        propagation_delay=delay,
        egress_traces=[ConstantBandwidth(bandwidth)] * n,
        ingress_traces=[ConstantBandwidth(bandwidth)] * n,
    )
    network = Network(sim, network_config)
    collector = MetricsCollector(n)
    coin = CommonCoin()
    config = config or NodeConfig(data_plane=data_plane, max_block_size=200_000)
    nodes = []
    for node_id in range(n):
        ctx = NodeContext(node_id, network, sim)
        node = node_class(
            node_id,
            params,
            ctx,
            config=config,
            coin=coin,
            on_deliver=collector.record_delivery,
            on_propose=collector.record_proposal,
        )
        network.attach(node_id, node)
        nodes.append(node)
    generators = [
        PoissonTransactionGenerator(sim, node, rate_bytes_per_second=load_rate, seed=node.node_id)
        for node in nodes
    ]
    for generator in generators:
        sim.schedule(0.0, generator.start)
    network.start()
    sim.run(until=duration)
    return nodes, collector, network, sim


class TestDispersedLedgerOnSimulatedWan:
    def test_ledgers_agree_and_make_progress(self):
        nodes, collector, _, _ = run_cluster(DispersedLedgerNode)
        prefixes = [tuple(node.ledger.digest_sequence()) for node in nodes]
        shortest = min(len(p) for p in prefixes)
        assert shortest > 0
        assert len({p[:shortest] for p in prefixes}) == 1
        assert all(node.delivered_epoch >= 3 for node in nodes)

    def test_transactions_confirm_with_reasonable_latency(self):
        _, collector, _, _ = run_cluster(DispersedLedgerNode)
        summary = collector.per_node[0].latency_summary(local_only=True)
        assert summary is not None
        # With 100 ms one-way delays the paper reports ~0.8 s; allow slack for
        # the small simulated bandwidth used here.
        assert summary.p50 < 5.0

    def test_dispersal_traffic_is_a_small_fraction(self):
        _, _, network, _ = run_cluster(DispersedLedgerNode, load_rate=300_000.0)
        fractions = [stats.dispersal_fraction for stats in network.stats]
        assert all(0.0 < fraction < 0.8 for fraction in fractions)

    def test_virtual_data_plane_matches_real_accounting(self):
        real_nodes, real_collector, _, _ = run_cluster(
            DispersedLedgerNode, data_plane="real", duration=15.0
        )
        virtual_nodes, virtual_collector, _, _ = run_cluster(
            DispersedLedgerNode, data_plane="virtual", duration=15.0
        )
        real_bytes = real_collector.total_confirmed_bytes()
        virtual_bytes = virtual_collector.total_confirmed_bytes()
        assert real_bytes > 0 and virtual_bytes > 0
        assert virtual_bytes == pytest.approx(real_bytes, rel=0.35)


class TestHoneyBadgerOnSimulatedWan:
    def test_ledgers_agree_and_make_progress(self):
        nodes, _, _, _ = run_cluster(HoneyBadgerNode)
        prefixes = [tuple(node.ledger.digest_sequence()) for node in nodes]
        shortest = min(len(p) for p in prefixes)
        assert shortest > 0
        assert len({p[:shortest] for p in prefixes}) == 1

    def test_lockstep_keeps_nodes_together(self):
        nodes, _, _, _ = run_cluster(HoneyBadgerNode)
        frontiers = [node.delivered_epoch for node in nodes]
        assert max(frontiers) - min(frontiers) <= 2


class TestDecoupling:
    def test_dl_slow_node_does_not_gate_fast_nodes(self):
        """The core claim (Fig. 1): with one slow node, DispersedLedger's fast
        nodes keep confirming at their own pace while HoneyBadger's all slow
        down to roughly the straggler's pace."""
        n = 4
        slow, fast = 400_000.0, 4_000_000.0

        def run(node_class):
            params = ProtocolParams.for_n(n)
            sim = Simulator()
            traces = [ConstantBandwidth(fast)] * (n - 1) + [ConstantBandwidth(slow)]
            network = Network(
                sim,
                NetworkConfig(
                    num_nodes=n,
                    propagation_delay=0.05,
                    egress_traces=list(traces),
                    ingress_traces=list(traces),
                ),
            )
            collector = MetricsCollector(n)
            coin = CommonCoin()
            config = NodeConfig(data_plane="virtual", max_block_size=300_000)
            nodes = []
            for node_id in range(n):
                ctx = NodeContext(node_id, network, sim)
                node = node_class(
                    node_id, params, ctx, config=config, coin=coin,
                    on_deliver=collector.record_delivery,
                )
                network.attach(node_id, node)
                nodes.append(node)
            from repro.workload.txgen import SaturatingTransactionGenerator

            for node in nodes:
                generator = SaturatingTransactionGenerator(
                    sim, node, target_pending_bytes=2_000_000
                )
                sim.schedule(0.0, generator.start)
            network.start()
            sim.run(until=40.0)
            return collector.throughputs(40.0)

        dl = run(DispersedLedgerNode)
        hb = run(HoneyBadgerNode)
        # DL: the fast nodes outrun the slow node by a wide margin.
        assert max(dl[:3]) > 2.0 * dl[3]
        # DL fast nodes beat HB fast nodes, which are held back by the straggler.
        assert max(dl[:3]) > 1.3 * max(hb[:3])
