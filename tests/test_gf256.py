"""Tests for GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.gf256 import GF256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestScalarArithmetic:
    def test_addition_is_xor(self):
        assert GF256.add(0b1010, 0b0110) == 0b1100
        assert GF256.sub(0b1010, 0b0110) == 0b1100

    def test_multiplication_identity_and_zero(self):
        for a in range(256):
            assert GF256.mul(a, 1) == a
            assert GF256.mul(a, 0) == 0

    def test_known_product(self):
        # 0x57 * 0x83 = 0xC1 in the AES field (FIPS-197 example).
        assert GF256.mul(0x57, 0x83) == 0xC1

    def test_inverse(self):
        for a in range(1, 256):
            assert GF256.mul(a, GF256.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_division(self):
        assert GF256.div(GF256.mul(17, 99), 99) == 17
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)
        assert GF256.div(0, 7) == 0

    def test_pow(self):
        assert GF256.pow(2, 0) == 1
        assert GF256.pow(0, 5) == 0
        assert GF256.pow(3, 2) == GF256.mul(3, 3)

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=100, deadline=None)
    def test_multiplication_distributes_over_addition(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(a=elements, b=elements)
    @settings(max_examples=100, deadline=None)
    def test_multiplication_commutes(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(a=nonzero, b=nonzero)
    @settings(max_examples=100, deadline=None)
    def test_division_inverts_multiplication(self, a, b):
        assert GF256.div(GF256.mul(a, b), b) == a


class TestMatrixOperations:
    def test_mat_inv_roundtrip(self):
        matrix = GF256.vandermonde(4, 4)
        inverse = GF256.mat_inv(matrix)
        identity = GF256.mat_mul(matrix, inverse)
        assert np.array_equal(identity, np.eye(4, dtype=np.uint8))

    def test_mat_inv_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(ValueError):
            GF256.mat_inv(singular)

    def test_mat_inv_requires_square(self):
        with pytest.raises(ValueError):
            GF256.mat_inv(np.zeros((2, 3), dtype=np.uint8))

    def test_mat_vec_rows_matches_scalar_math(self):
        matrix = GF256.vandermonde(3, 2)
        data = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.uint8)
        result = GF256.mat_vec_rows(matrix, data)
        for i in range(3):
            for col in range(3):
                expected = 0
                for k in range(2):
                    expected ^= GF256.mul(int(matrix[i, k]), int(data[k, col]))
                assert result[i, col] == expected

    def test_mat_vec_rows_shape_mismatch(self):
        with pytest.raises(ValueError):
            GF256.mat_vec_rows(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8))

    def test_vandermonde_submatrices_invertible(self):
        # The MDS property: any k rows of the Vandermonde matrix form an
        # invertible k x k matrix.
        vander = GF256.vandermonde(8, 4)
        import itertools

        for rows in itertools.combinations(range(8), 4):
            GF256.mat_inv(vander[list(rows), :])  # must not raise

    def test_vandermonde_row_limit(self):
        with pytest.raises(ValueError):
            GF256.vandermonde(257, 4)


def _scalar_mat_vec(matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Reference implementation: triple loop of scalar GF(256) operations."""
    m, k = matrix.shape
    width = data.shape[1]
    out = np.zeros((m, width), dtype=np.uint8)
    for row in range(m):
        for col in range(width):
            acc = 0
            for inner in range(k):
                acc ^= GF256.mul(int(matrix[row, inner]), int(data[inner, col]))
            out[row, col] = acc
    return out


class TestVectorizedKernelVsScalarReference:
    """The vectorised kernel must agree with plain scalar field arithmetic."""

    @given(
        m=st.integers(min_value=1, max_value=6),
        k=st.integers(min_value=1, max_value=6),
        width=st.integers(min_value=1, max_value=35),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_matrices(self, m, k, width, data):
        matrix = np.array(
            data.draw(
                st.lists(
                    st.lists(elements, min_size=k, max_size=k),
                    min_size=m,
                    max_size=m,
                )
            ),
            dtype=np.uint8,
        )
        payload = np.array(
            data.draw(
                st.lists(
                    st.lists(elements, min_size=width, max_size=width),
                    min_size=k,
                    max_size=k,
                )
            ),
            dtype=np.uint8,
        )
        assert np.array_equal(
            GF256.mat_vec_rows(matrix, payload), _scalar_mat_vec(matrix, payload)
        )

    def test_zero_rows_and_identity_coefficients(self):
        # A matrix mixing all special-cased coefficients: a fully zero row
        # (skipped entirely), coefficient 1 (XOR without table lookup), and a
        # generic coefficient (pair-table gather).
        matrix = np.array([[0, 0, 0], [1, 0, 1], [2, 7, 255]], dtype=np.uint8)
        data = np.arange(3 * 9, dtype=np.uint8).reshape(3, 9)
        result = GF256.mat_vec_rows(matrix, data)
        assert np.array_equal(result, _scalar_mat_vec(matrix, data))
        assert not result[0].any()

    def test_width_one(self):
        matrix = np.array([[3, 5], [1, 0]], dtype=np.uint8)
        data = np.array([[200], [47]], dtype=np.uint8)
        assert np.array_equal(
            GF256.mat_vec_rows(matrix, data), _scalar_mat_vec(matrix, data)
        )

    @pytest.mark.parametrize("width", [1, 2, 3, 8, 41, 100])
    def test_odd_and_even_widths(self, width):
        rng = np.random.default_rng(width)
        matrix = rng.integers(0, 256, size=(4, 3), dtype=np.uint8)
        data = rng.integers(0, 256, size=(3, width), dtype=np.uint8)
        assert np.array_equal(
            GF256.mat_vec_rows(matrix, data), _scalar_mat_vec(matrix, data)
        )

    def test_non_contiguous_data(self):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 256, size=(3, 2), dtype=np.uint8)
        wide = rng.integers(0, 256, size=(2, 20), dtype=np.uint8)
        strided = wide[:, ::2]
        assert np.array_equal(
            GF256.mat_vec_rows(matrix, strided),
            _scalar_mat_vec(matrix, np.ascontiguousarray(strided)),
        )

    def test_mat_vec_bytes_matches_array_kernel(self):
        rng = np.random.default_rng(13)
        matrix = rng.integers(0, 256, size=(4, 3), dtype=np.uint8)
        data = rng.integers(0, 256, size=(3, 17), dtype=np.uint8)
        rows = [data[i].tobytes() for i in range(3)]
        expected = GF256.mat_vec_rows(matrix, data)
        result = GF256.mat_vec_bytes(matrix, rows)
        assert result == [expected[i].tobytes() for i in range(4)]

    def test_mat_vec_bytes_rejects_ragged_rows(self):
        matrix = np.ones((2, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            GF256.mat_vec_bytes(matrix, [b"abc", b"ab"])
        with pytest.raises(ValueError):
            GF256.mat_vec_bytes(matrix, [b"abc"])

    def test_mat_vec_bytes_zero_matrix_row(self):
        matrix = np.array([[0, 0]], dtype=np.uint8)
        assert GF256.mat_vec_bytes(matrix, [b"xy", b"zw"]) == [b"\x00\x00"]

    def test_mat_mul_matches_scalar_reference(self):
        rng = np.random.default_rng(11)
        a = rng.integers(0, 256, size=(5, 4), dtype=np.uint8)
        b = rng.integers(0, 256, size=(4, 7), dtype=np.uint8)
        assert np.array_equal(GF256.mat_mul(a, b), _scalar_mat_vec(a, b))
