"""Tests for GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.gf256 import GF256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestScalarArithmetic:
    def test_addition_is_xor(self):
        assert GF256.add(0b1010, 0b0110) == 0b1100
        assert GF256.sub(0b1010, 0b0110) == 0b1100

    def test_multiplication_identity_and_zero(self):
        for a in range(256):
            assert GF256.mul(a, 1) == a
            assert GF256.mul(a, 0) == 0

    def test_known_product(self):
        # 0x57 * 0x83 = 0xC1 in the AES field (FIPS-197 example).
        assert GF256.mul(0x57, 0x83) == 0xC1

    def test_inverse(self):
        for a in range(1, 256):
            assert GF256.mul(a, GF256.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_division(self):
        assert GF256.div(GF256.mul(17, 99), 99) == 17
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)
        assert GF256.div(0, 7) == 0

    def test_pow(self):
        assert GF256.pow(2, 0) == 1
        assert GF256.pow(0, 5) == 0
        assert GF256.pow(3, 2) == GF256.mul(3, 3)

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=100, deadline=None)
    def test_multiplication_distributes_over_addition(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(a=elements, b=elements)
    @settings(max_examples=100, deadline=None)
    def test_multiplication_commutes(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(a=nonzero, b=nonzero)
    @settings(max_examples=100, deadline=None)
    def test_division_inverts_multiplication(self, a, b):
        assert GF256.div(GF256.mul(a, b), b) == a


class TestMatrixOperations:
    def test_mat_inv_roundtrip(self):
        matrix = GF256.vandermonde(4, 4)
        inverse = GF256.mat_inv(matrix)
        identity = GF256.mat_mul(matrix, inverse)
        assert np.array_equal(identity, np.eye(4, dtype=np.uint8))

    def test_mat_inv_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(ValueError):
            GF256.mat_inv(singular)

    def test_mat_inv_requires_square(self):
        with pytest.raises(ValueError):
            GF256.mat_inv(np.zeros((2, 3), dtype=np.uint8))

    def test_mat_vec_rows_matches_scalar_math(self):
        matrix = GF256.vandermonde(3, 2)
        data = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.uint8)
        result = GF256.mat_vec_rows(matrix, data)
        for i in range(3):
            for col in range(3):
                expected = 0
                for k in range(2):
                    expected ^= GF256.mul(int(matrix[i, k]), int(data[k, col]))
                assert result[i, col] == expected

    def test_mat_vec_rows_shape_mismatch(self):
        with pytest.raises(ValueError):
            GF256.mat_vec_rows(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8))

    def test_vandermonde_submatrices_invertible(self):
        # The MDS property: any k rows of the Vandermonde matrix form an
        # invertible k x k matrix.
        vander = GF256.vandermonde(8, 4)
        import itertools

        for rows in itertools.combinations(range(8), 4):
            GF256.mat_inv(vander[list(rows), :])  # must not raise

    def test_vandermonde_row_limit(self):
        with pytest.raises(ValueError):
            GF256.vandermonde(257, 4)
